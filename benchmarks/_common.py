"""Shared infrastructure for the figure/table benchmarks.

Every ``bench_*`` module reproduces one table or figure from the paper: it
runs the simulated clusters with the paper's parameters (scaled down in
virtual duration so the whole suite finishes in minutes), prints a
paper-vs-measured table, and writes the same table under
``benchmarks/results/`` so it survives pytest's output capturing.

Set ``REPRO_BENCH_SCALE`` (default 1.0) to lengthen or shorten every run,
e.g. ``REPRO_BENCH_SCALE=3 pytest benchmarks/ --benchmark-only`` for longer,
lower-variance runs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

from repro.bench.plots import ascii_chart, format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale factor applied to run durations (and the Figure 13 timeline).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Base virtual duration of a single benchmark point, in simulated seconds.
BASE_DURATION = 0.5 * SCALE
BASE_WARMUP = 0.15 * SCALE

#: Client-count sweeps reused across figures (closed-loop clients).
LATENCY_SWEEP_CLIENTS: Sequence[int] = (2, 10, 40, 150, 300)
SMALL_CLUSTER_SWEEP_CLIENTS: Sequence[int] = (2, 10, 40, 120, 240)
MAX_THROUGHPUT_CLIENTS: Sequence[int] = (60, 180)
WAN_SWEEP_CLIENTS: Sequence[int] = (20, 100, 300, 600)

#: Seed used by every benchmark so results are reproducible run to run.
SEED = 42


def duration() -> float:
    return BASE_DURATION


def warmup() -> float:
    return BASE_WARMUP


def report(name: str, title: str, lines: Iterable[str]) -> str:
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    body = "\n".join([f"# {title}", *lines, ""])
    (RESULTS_DIR / f"{name}.txt").write_text(body, encoding="utf-8")
    print(body)
    return body


def comparison_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    return format_table(headers, rows).splitlines()


def chart(series: Dict[str, Sequence], x_label: str, y_label: str) -> List[str]:
    return ascii_chart(series, x_label=x_label, y_label=y_label).splitlines()
