"""Ablation benchmarks for the PigPaxos design choices called out in DESIGN.md.

* Random relay rotation vs fixed relays (the paper argues rotation prevents
  relay hotspots).
* Relay timeout sensitivity (the tight timeout bounds the damage of a slow
  follower).
* Partial (threshold) response collection vs waiting for the whole group
  (Section 4.2) under a sluggish follower.
"""

from __future__ import annotations

import pytest

from _common import SEED, comparison_table, duration, report, warmup
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.cluster.faults import FaultSchedule
from repro.core.config import PigPaxosConfig

NINE_NODE_CLIENTS = 120


def _run(config_kwargs, **experiment_kwargs):
    protocol_config = PigPaxosConfig(**config_kwargs)
    config = ExperimentConfig(
        protocol="pigpaxos",
        num_nodes=9,
        num_clients=NINE_NODE_CLIENTS,
        duration=duration(),
        warmup=warmup(),
        seed=SEED,
        protocol_config=protocol_config,
        **experiment_kwargs,
    )
    return run_experiment(config)


@pytest.mark.benchmark(group="ablations")
def test_ablation_relay_rotation_vs_fixed_relays(benchmark):
    def _measure():
        rotating = _run({"num_relay_groups": 2, "fixed_relays": False})
        fixed = _run({"num_relay_groups": 2, "fixed_relays": True})
        return rotating, fixed

    rotating, fixed = benchmark.pedantic(_measure, rounds=1, iterations=1)
    report(
        "ablation_fixed_relays",
        "Ablation -- random relay rotation vs fixed relays (9 nodes, 2 groups)",
        comparison_table(
            ["variant", "req/s", "mean lat ms", "p99 lat ms"],
            [["rotating relays", round(rotating.throughput), round(rotating.latency_mean_ms, 2),
              round(rotating.latency_p99_ms, 2)],
             ["fixed relays", round(fixed.throughput), round(fixed.latency_mean_ms, 2),
              round(fixed.latency_p99_ms, 2)]],
        ),
    )
    # Fixed relays turn two followers into permanent hotspots: throughput drops
    # and/or tail latency grows relative to random rotation.
    assert rotating.throughput >= 0.95 * fixed.throughput
    assert rotating.latency_p99 <= fixed.latency_p99 * 1.05 or rotating.throughput > fixed.throughput


@pytest.mark.benchmark(group="ablations")
def test_ablation_relay_timeout_with_sluggish_follower(benchmark):
    def _measure():
        schedule = FaultSchedule().sluggish(8, at=0.0, factor=50.0)
        tight = _run({"num_relay_groups": 2, "relay_timeout": 0.01, "leader_retry_timeout": 0.1},
                     fault_schedule=schedule)
        loose = _run({"num_relay_groups": 2, "relay_timeout": 0.2, "leader_retry_timeout": 0.5},
                     fault_schedule=schedule)
        return tight, loose

    tight, loose = benchmark.pedantic(_measure, rounds=1, iterations=1)
    report(
        "ablation_relay_timeout",
        "Ablation -- relay timeout under one sluggish follower (9 nodes)",
        comparison_table(
            ["relay timeout", "req/s", "mean lat ms", "p99 lat ms"],
            [["10 ms (tight)", round(tight.throughput), round(tight.latency_mean_ms, 2),
              round(tight.latency_p99_ms, 2)],
             ["200 ms (loose)", round(loose.throughput), round(loose.latency_mean_ms, 2),
              round(loose.latency_p99_ms, 2)]],
        ),
    )
    # Progress must continue in both cases (the leader only needs a majority).
    assert tight.throughput > 0 and loose.throughput > 0


@pytest.mark.benchmark(group="ablations")
def test_ablation_partial_response_collection(benchmark):
    def _measure():
        schedule = FaultSchedule().sluggish(8, at=0.0, factor=50.0)
        wait_all = _run({"num_relay_groups": 2}, fault_schedule=schedule)
        threshold = _run({"num_relay_groups": 2, "group_response_threshold": 0.75},
                         fault_schedule=schedule)
        return wait_all, threshold

    wait_all, threshold = benchmark.pedantic(_measure, rounds=1, iterations=1)
    report(
        "ablation_partial_responses",
        "Ablation -- partial response collection with a sluggish group member (9 nodes)",
        comparison_table(
            ["variant", "req/s", "mean lat ms", "p99 lat ms"],
            [["wait for whole group", round(wait_all.throughput), round(wait_all.latency_mean_ms, 2),
              round(wait_all.latency_p99_ms, 2)],
             ["threshold 75%", round(threshold.throughput), round(threshold.latency_mean_ms, 2),
              round(threshold.latency_p99_ms, 2)]],
        ),
    )
    # Threshold collection should not hurt, and typically trims tail latency
    # because the relay stops waiting for the sluggish member.
    assert threshold.throughput > 0.8 * wait_all.throughput
