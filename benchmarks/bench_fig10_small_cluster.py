"""Figure 10: latency vs throughput on a 5-node cluster (2 relay groups).

Paper result: even at the smallest sensible cluster size PigPaxos scales to
higher throughput than Paxos (the leader talks to 2 relays instead of 4
followers), Paxos keeps a latency edge for longer, and EPaxos suffers from
conflicts on the 1000-key workload.
"""

from __future__ import annotations

import pytest

from _common import SEED, SMALL_CLUSTER_SWEEP_CLIENTS, chart, comparison_table, duration, report, warmup
from repro.bench.runner import ExperimentConfig
from repro.bench.sweeps import latency_throughput_sweep

PAPER_SATURATION = {"epaxos": 2800, "paxos": 7000, "pigpaxos": 9500}


def _measure():
    sweeps = {}
    for protocol in ("paxos", "epaxos", "pigpaxos"):
        config = ExperimentConfig(
            protocol=protocol,
            num_nodes=5,
            relay_groups=2 if protocol == "pigpaxos" else None,
            duration=duration(),
            warmup=warmup(),
            seed=SEED,
        )
        sweeps[protocol] = latency_throughput_sweep(config, client_counts=SMALL_CLUSTER_SWEEP_CLIENTS)
    return sweeps


@pytest.mark.benchmark(group="fig10")
def test_fig10_five_node_cluster(benchmark):
    sweeps = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        [protocol, PAPER_SATURATION[protocol], round(sweep.max_throughput()),
         round(sweep.runs[0].latency_mean_ms, 2)]
        for protocol, sweep in sweeps.items()
    ]
    lines = comparison_table(["protocol", "paper max req/s", "measured max req/s", "low-load lat ms"], rows)
    lines += [""] + chart(
        {p: s.latency_throughput_series() for p, s in sweeps.items()},
        x_label="throughput (req/s)", y_label="mean latency (ms)",
    )
    report("fig10_small_cluster", "Figure 10 -- 5-node latency vs throughput", lines)

    assert sweeps["pigpaxos"].max_throughput() > sweeps["paxos"].max_throughput()
    assert sweeps["epaxos"].max_throughput() < sweeps["paxos"].max_throughput()
    # Paxos keeps the latency edge at low load in small clusters.
    assert sweeps["paxos"].runs[0].latency_mean < sweeps["pigpaxos"].runs[0].latency_mean
