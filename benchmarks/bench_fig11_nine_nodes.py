"""Figure 11: latency vs throughput on a 9-node cluster, PigPaxos with 2 and 3
relay groups vs Paxos.

Paper result: both PigPaxos configurations beat Paxos (the paper quotes up to
a 57% throughput improvement), 2 relay groups beats 3, and Paxos' latency
advantage at low load shrinks compared to the 5-node cluster.
"""

from __future__ import annotations

import pytest

from _common import SEED, SMALL_CLUSTER_SWEEP_CLIENTS, chart, comparison_table, duration, report, warmup
from repro.bench.runner import ExperimentConfig
from repro.bench.sweeps import latency_throughput_sweep

PAPER_SATURATION = {"paxos": 4500, "pigpaxos r=2": 7500, "pigpaxos r=3": 6500}


def _measure():
    sweeps = {}
    configs = [("paxos", None), ("pigpaxos r=2", 2), ("pigpaxos r=3", 3)]
    for label, groups in configs:
        config = ExperimentConfig(
            protocol="paxos" if groups is None else "pigpaxos",
            num_nodes=9,
            relay_groups=groups,
            duration=duration(),
            warmup=warmup(),
            seed=SEED,
        )
        sweeps[label] = latency_throughput_sweep(config, client_counts=SMALL_CLUSTER_SWEEP_CLIENTS, label=label)
    return sweeps


@pytest.mark.benchmark(group="fig11")
def test_fig11_nine_node_cluster(benchmark):
    sweeps = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        [label, PAPER_SATURATION[label], round(sweep.max_throughput()),
         round(sweep.runs[0].latency_mean_ms, 2)]
        for label, sweep in sweeps.items()
    ]
    lines = comparison_table(["configuration", "paper max req/s", "measured max req/s", "low-load lat ms"], rows)
    lines += [""] + chart(
        {label: sweep.latency_throughput_series() for label, sweep in sweeps.items()},
        x_label="throughput (req/s)", y_label="mean latency (ms)",
    )
    report("fig11_nine_nodes", "Figure 11 -- 9-node latency vs throughput", lines)

    paxos_max = sweeps["paxos"].max_throughput()
    # Paper: PigPaxos improves throughput over Paxos by >= ~50% in both configs.
    assert sweeps["pigpaxos r=2"].max_throughput() > 1.5 * paxos_max
    assert sweeps["pigpaxos r=3"].max_throughput() > 1.3 * paxos_max
    assert sweeps["pigpaxos r=2"].max_throughput() >= sweeps["pigpaxos r=3"].max_throughput()
