"""Figure 12: maximum throughput vs payload size (8-1280 bytes), 25 nodes,
write-only workload, PigPaxos with 3 relay groups vs Paxos.

Paper result (12a/12b): PigPaxos' absolute throughput stays several times
Paxos' at every payload size; normalized to each protocol's own maximum,
both degrade similarly and neither drops below ~0.9 of its peak.
"""

from __future__ import annotations

import pytest

from _common import SEED, comparison_table, duration, report, warmup
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.workload.spec import WorkloadSpec

PAYLOAD_SIZES = (8, 128, 512, 1024, 1280)
SATURATING_CLIENTS = 150


def _measure():
    results = {"paxos": {}, "pigpaxos": {}}
    for protocol in results:
        for size in PAYLOAD_SIZES:
            config = ExperimentConfig(
                protocol=protocol,
                num_nodes=25,
                relay_groups=3 if protocol == "pigpaxos" else None,
                num_clients=SATURATING_CLIENTS,
                workload=WorkloadSpec.payload(size),
                duration=duration(),
                warmup=warmup(),
                seed=SEED,
            )
            results[protocol][size] = run_experiment(config).throughput
    return results


@pytest.mark.benchmark(group="fig12")
def test_fig12_payload_size_sweep(benchmark):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for size in PAYLOAD_SIZES:
        paxos = measured["paxos"][size]
        pig = measured["pigpaxos"][size]
        rows.append([
            size,
            round(paxos), round(pig),
            round(paxos / max(measured["paxos"].values()), 3),
            round(pig / max(measured["pigpaxos"].values()), 3),
        ])
    report(
        "fig12_payload",
        "Figure 12 -- max throughput vs payload size (25 nodes, write-only)",
        comparison_table(
            ["payload B", "paxos req/s", "pigpaxos req/s", "paxos normalized", "pigpaxos normalized"], rows
        ),
    )

    # 12a: PigPaxos stays well above Paxos at every payload size.
    for size in PAYLOAD_SIZES:
        assert measured["pigpaxos"][size] > 2.0 * measured["paxos"][size]
    # 12b: normalized throughput degrades gently for both protocols (the paper
    # reports neither dips below 0.9 of its peak; our calibrated per-byte cost
    # lands Paxos around 0.83 at 1,280 B, so the assertion allows 0.8).
    for protocol in ("paxos", "pigpaxos"):
        peak = max(measured[protocol].values())
        assert min(measured[protocol].values()) > 0.80 * peak
