"""Figure 13: throughput over time under a single-node failure (25 nodes,
3 relay groups, 50 ms relay timeout).

Paper result: crashing one node in one relay group costs only ~3% of maximum
throughput while the fault lasts, because the two healthy relay groups plus
the leader still form a majority and answer quickly; throughput returns to
normal when the node recovers.
"""

from __future__ import annotations

import pytest

from _common import SCALE, SEED, comparison_table, report, warmup
from repro.bench.runner import ExperimentConfig
from repro.bench.timeseries import throughput_timeseries
from repro.cluster.faults import FaultSchedule
from repro.core.config import PigPaxosConfig

RUN_DURATION = 3.0 * SCALE
FAIL_START = 1.0 * SCALE
FAIL_END = 2.0 * SCALE
SAMPLE_INTERVAL = 0.25 * SCALE
SATURATING_CLIENTS = 150
PAPER_DEGRADATION_PCT = 3.0


def _measure():
    # Node 24 sits in the last relay group of the round-robin partition.
    schedule = FaultSchedule().crash_window(24, start=FAIL_START, end=FAIL_END)
    config = ExperimentConfig(
        protocol="pigpaxos",
        num_nodes=25,
        relay_groups=3,
        num_clients=SATURATING_CLIENTS,
        duration=RUN_DURATION,
        warmup=warmup(),
        seed=SEED,
        fault_schedule=schedule,
        protocol_config=PigPaxosConfig(num_relay_groups=3, relay_timeout=0.05),
    )
    series, _cluster = throughput_timeseries(config, interval=SAMPLE_INTERVAL)
    return series


def _window_mean(series, start, end):
    rates = [rate for t, rate in series if start <= t < end]
    return sum(rates) / len(rates) if rates else 0.0


@pytest.mark.benchmark(group="fig13")
def test_fig13_single_node_failure_timeline(benchmark):
    series = benchmark.pedantic(_measure, rounds=1, iterations=1)

    before = _window_mean(series, 0.25 * SCALE, FAIL_START)
    during = _window_mean(series, FAIL_START + SAMPLE_INTERVAL, FAIL_END)
    after = _window_mean(series, FAIL_END + SAMPLE_INTERVAL, RUN_DURATION)
    degradation_pct = 100.0 * (1.0 - during / before) if before else 100.0

    lines = comparison_table(
        ["window", "measured req/s"],
        [["before failure", round(before)], ["during failure", round(during)], ["after recovery", round(after)]],
    )
    lines += [
        "",
        f"throughput degradation during failure: {degradation_pct:.1f}% (paper: ~{PAPER_DEGRADATION_PCT}%)",
        "",
        "timeline (window start -> req/s):",
    ] + [f"  t={t:5.2f}s  {rate:8.0f}" for t, rate in series]
    report("fig13_fault_tolerance", "Figure 13 -- throughput under a single-node failure", lines)

    # Shape: the failure causes at most a modest dip (paper: ~3%); we allow up
    # to 15% to absorb simulator noise at short durations, and require recovery.
    assert during > 0.85 * before
    assert after > 0.9 * before
