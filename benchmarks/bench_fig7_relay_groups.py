"""Figure 7: maximum throughput vs number of relay groups (25-node PigPaxos).

Paper result: throughput *decreases* as the number of relay groups grows;
2 relay groups is best (~8-10k req/s on the authors' testbed) and the
"obvious" sqrt(N)=5 grouping performs markedly worse.
"""

from __future__ import annotations

import pytest

from _common import MAX_THROUGHPUT_CLIENTS, SEED, comparison_table, duration, report, warmup
from repro.bench.runner import ExperimentConfig
from repro.bench.sweeps import max_throughput

RELAY_GROUP_COUNTS = (2, 3, 4, 5, 6)
PAPER_MAX_THROUGHPUT = {2: 9000, 3: 7000, 4: 6000, 5: 5500, 6: 5000}  # approximate req/s read off Fig. 7


def _measure() -> dict:
    results = {}
    for groups in RELAY_GROUP_COUNTS:
        config = ExperimentConfig(
            protocol="pigpaxos",
            num_nodes=25,
            relay_groups=groups,
            duration=duration(),
            warmup=warmup(),
            seed=SEED,
        )
        best, _ = max_throughput(config, client_counts=MAX_THROUGHPUT_CLIENTS)
        results[groups] = best.throughput
    return results


@pytest.mark.benchmark(group="fig7")
def test_fig7_max_throughput_vs_relay_groups(benchmark):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        [groups, PAPER_MAX_THROUGHPUT[groups], round(measured[groups]),
         round(measured[groups] / measured[RELAY_GROUP_COUNTS[0]], 2)]
        for groups in RELAY_GROUP_COUNTS
    ]
    report(
        "fig7_relay_groups",
        "Figure 7 -- 25-node PigPaxos max throughput vs relay groups",
        comparison_table(
            ["relay groups", "paper req/s (approx)", "measured req/s", "vs 2 groups"], rows
        ),
    )

    # Shape assertions from the paper: 2 groups is the best configuration and
    # throughput declines monotonically (within noise) as groups are added.
    assert measured[2] == max(measured.values())
    assert measured[2] > 1.5 * measured[6]
    assert measured[3] > measured[5]
