"""Figure 8: latency vs throughput for Paxos, EPaxos and PigPaxos on 25 nodes.

Paper result: EPaxos saturates around 1,000 req/s, Paxos around 2,000 req/s,
PigPaxos (3 relay groups) reaches ~7,000 req/s; PigPaxos pays ~30% higher
latency than Paxos at low load but keeps latency low far beyond Paxos'
saturation point.
"""

from __future__ import annotations

import pytest

from _common import LATENCY_SWEEP_CLIENTS, SEED, chart, comparison_table, duration, report, warmup
from repro.bench.runner import ExperimentConfig
from repro.bench.sweeps import latency_throughput_sweep

PAPER_SATURATION = {"epaxos": 1000, "paxos": 2000, "pigpaxos": 7000}


def _sweep_protocol(protocol: str):
    config = ExperimentConfig(
        protocol=protocol,
        num_nodes=25,
        relay_groups=3 if protocol == "pigpaxos" else None,
        duration=duration(),
        warmup=warmup(),
        seed=SEED,
    )
    return latency_throughput_sweep(config, client_counts=LATENCY_SWEEP_CLIENTS)


def _measure():
    return {protocol: _sweep_protocol(protocol) for protocol in ("paxos", "epaxos", "pigpaxos")}


@pytest.mark.benchmark(group="fig8")
def test_fig8_latency_throughput_25_nodes(benchmark):
    sweeps = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for protocol, sweep in sweeps.items():
        best = sweep.best_run()
        low_load = sweep.runs[0]
        rows.append([
            protocol,
            PAPER_SATURATION[protocol],
            round(best.throughput),
            round(low_load.latency_mean_ms, 2),
            round(best.latency_mean_ms, 2),
        ])
    lines = comparison_table(
        ["protocol", "paper max req/s", "measured max req/s", "low-load lat ms", "lat at max ms"], rows
    )
    lines += [""] + chart(
        {p: s.latency_throughput_series() for p, s in sweeps.items()},
        x_label="throughput (req/s)",
        y_label="mean latency (ms)",
    )
    report("fig8_latency_throughput_25", "Figure 8 -- 25-node latency vs throughput", lines)

    paxos_max = sweeps["paxos"].max_throughput()
    pig_max = sweeps["pigpaxos"].max_throughput()
    epaxos_max = sweeps["epaxos"].max_throughput()
    # Paper shape: PigPaxos > 3x Paxos; EPaxos below Paxos.
    assert pig_max > 3.0 * paxos_max
    assert epaxos_max < paxos_max
    # PigPaxos pays a modest latency premium at low load (extra relay hop).
    assert sweeps["pigpaxos"].runs[0].latency_mean > sweeps["paxos"].runs[0].latency_mean
    assert sweeps["pigpaxos"].runs[0].latency_mean < 3.0 * sweeps["paxos"].runs[0].latency_mean
