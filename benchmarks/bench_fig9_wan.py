"""Figure 9: latency vs throughput on a 15-node WAN cluster (Virginia,
California, Oregon), Paxos vs PigPaxos with region-aligned relay groups.

Paper result: at low load the cross-region round trip dominates and the two
protocols are indistinguishable (~60-70 ms); at high load PigPaxos sustains
much higher throughput while keeping latency near the WAN floor.
"""

from __future__ import annotations

import pytest

from _common import SEED, WAN_SWEEP_CLIENTS, chart, comparison_table, duration, report, warmup
from repro.bench.runner import ExperimentConfig
from repro.bench.sweeps import latency_throughput_sweep
from repro.cluster.topologies import wan_topology

PAPER_SATURATION = {"paxos": 2000, "pigpaxos": 5500}


def _measure():
    sweeps = {}
    for protocol in ("paxos", "pigpaxos"):
        config = ExperimentConfig(
            protocol=protocol,
            num_nodes=15,
            topology=wan_topology(num_nodes=15),
            use_region_groups=(protocol == "pigpaxos"),
            duration=max(duration(), 1.0),
            warmup=warmup(),
            seed=SEED,
        )
        sweeps[protocol] = latency_throughput_sweep(config, client_counts=WAN_SWEEP_CLIENTS)
    return sweeps


@pytest.mark.benchmark(group="fig9")
def test_fig9_wan_latency_throughput(benchmark):
    sweeps = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for protocol, sweep in sweeps.items():
        rows.append([
            protocol,
            PAPER_SATURATION[protocol],
            round(sweep.max_throughput()),
            round(sweep.runs[0].latency_mean_ms, 1),
            round(sweep.best_run().latency_mean_ms, 1),
        ])
    lines = comparison_table(
        ["protocol", "paper max req/s", "measured max req/s", "low-load lat ms", "lat at max ms"], rows
    )
    lines += [""] + chart(
        {p: s.latency_throughput_series() for p, s in sweeps.items()},
        x_label="throughput (req/s)", y_label="mean latency (ms)",
    )
    report("fig9_wan", "Figure 9 -- 15-node WAN latency vs throughput", lines)

    paxos, pig = sweeps["paxos"], sweeps["pigpaxos"]
    # Low load: cross-region RTT dominates; latencies within ~25% of each other.
    assert abs(pig.runs[0].latency_mean - paxos.runs[0].latency_mean) < 0.25 * paxos.runs[0].latency_mean
    # High load: PigPaxos sustains clearly higher throughput.
    assert pig.max_throughput() > 1.3 * paxos.max_throughput()
