#!/usr/bin/env python
"""Wall-clock throughput of the simulation harness itself.

Every experiment in this repo runs on the discrete-event core; this bench
makes its speed a first-class, tracked number -- the same way PigPaxos
treats the leader's per-message cost.  It runs the canned scenario sweep
(`repro.scenarios.library`, the same workload `tests/test_scenarios.py`
gates on) and reports, per scenario and in aggregate:

* **wall seconds** -- build + simulate + safety checkers,
* **events/sec**   -- simulator events executed per wall second,
* **ops/sec**      -- completed client operations per wall second.

The recorded *pre-optimization baseline* (commit e5b611d, the tree just
before the hot-path overhaul, measured on the same workload with the same
harness) is embedded below, so every run reports the speedup relative to
the first point of the repo's perf trajectory.  Fingerprints double as the
semantic guarantee: the bench asserts each scenario still reproduces the
baseline tree's `ScenarioResult.fingerprint()` -- the optimization changed
wall-clock only, not simulation results.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py             # full sweep
    PYTHONPATH=src python benchmarks/bench_perf.py --quick     # smoke subset
    PYTHONPATH=src python benchmarks/bench_perf.py --json out.json

Writes ``benchmarks/results/BENCH_perf.json`` by default.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios.library import SMOKE_SCENARIOS, all_scenarios  # noqa: E402
from repro.scenarios.runner import ScenarioRunner  # noqa: E402
from repro.scenarios.sweep import default_workers, sweep  # noqa: E402

#: Commit of the tree the baseline numbers were measured on (pre-overhaul).
BASELINE_COMMIT = "e5b611d"

#: Pre-optimization measurements: same scenarios, same harness, same
#: single-core host, GC policy of that tree (enabled), one process.
#: ``fingerprint`` is the determinism contract -- identical on both trees.
#: Two deliberate re-anchors since, both from the fuzzing PR.  (1) Enabling
#: recovery_timeout by default moved the five EPaxos scenarios in which an
#: instance blocks long enough for recovery to fire (drop-storm,
#: partition-heal, relay-reshuffle-storm, thrifty-crash,
#: thrifty-severed-links).  (2) The fuzz-found protocol fixes moved four
#: more: the recovery disproof fix (latest-per-origin deps coverage)
#: re-routes recovery outcomes in drop-storm / relay-reshuffle-storm /
#: thrifty-crash -- markedly *more* completed ops, since fewer recoveries
#: discard the fast path -- and the orphaned-proposal reply suppression
#: moves pig-partition-leader-minority slightly.  Wall-clock baselines are
#: untouched -- neither change touches a hot path.
BASELINE = {
    "pig-baseline-5": {"wall_seconds": 1.703, "events": 97244, "completed": 3457, "fingerprint": "4d7622561909e222d6c953db6204cccc85bb6bd033a2057685458e708b26b40e"},
    "paxos-baseline-5": {"wall_seconds": 1.85, "events": 140303, "completed": 4995, "fingerprint": "1fb9abcdd8059ffbfb833fdc9c4667e5f8a09dfaf84dceed0f73a6ff91280bf1"},
    "pig-relay-sweep-25": {"wall_seconds": 4.426, "events": 339034, "completed": 2281, "fingerprint": "effbe7f973560be18c98e82992e5791fd4e1ed4977cacfd2651110d3293908fb"},
    "pig-wan-9": {"wall_seconds": 0.169, "events": 13285, "completed": 228, "fingerprint": "189865e85d7041be4ae3b60eec234420b17b809ebb5b501743b5a7741a3ed1ae"},
    "pig-crash-follower": {"wall_seconds": 2.566, "events": 165040, "completed": 4434, "fingerprint": "fe899352ccef005e1f0cdf005d70a95e4eac02fc41bd1410f5e8aa6faf51682a"},
    "pig-crash-leader-during-round": {"wall_seconds": 2.41, "events": 134318, "completed": 5086, "fingerprint": "5541bf3845f1db83e776ab451227a763ac5230f705d0239361e176602c5e5a9e"},
    "pig-partition-minority": {"wall_seconds": 1.207, "events": 74377, "completed": 2604, "fingerprint": "7efc96426520695098f9849be3f14b05a8d7a204378705b4c2cd38ca70509eef"},
    "pig-partition-leader-minority": {"wall_seconds": 1.463, "events": 94801, "completed": 3320, "fingerprint": "5aee42ae0677264493c26ca0c72c54846c7bbcb9b07d2a2e017996fe70d07af6"},
    "pig-relay-timeout-storm": {"wall_seconds": 1.402, "events": 101114, "completed": 1920, "fingerprint": "1b3c0986c7ff3366eff2491f71d52a2f28cc93e0c2014911545d0d7fbed68b8d"},
    "pig-relay-churn": {"wall_seconds": 3.105, "events": 206011, "completed": 3943, "fingerprint": "f4a7820c00098fbf135f5a427d66933ebc785438ecb0151f18920b9920ac2b36"},
    "pig-lossy-background": {"wall_seconds": 0.063, "events": 4501, "completed": 87, "fingerprint": "f89965cb56b9e8835b551a4d2d3631867ec6d57d96c17700cc26d7c3bba65333"},
    "epaxos-baseline-5": {"wall_seconds": 1.094, "events": 76362, "completed": 1852, "fingerprint": "81002a74403f56d167e2ac6ad6af9bd534c54d9c723510caad4314bf5a50182e"},
    "epaxos-hot-key-storm": {"wall_seconds": 1.599, "events": 100460, "completed": 1984, "fingerprint": "f3a443d734dd95121c2ffe43890016652301ba1922f5bc432ae265f4ee1d361a"},
    "epaxos-drop-storm": {"wall_seconds": 0.263, "events": 37315, "completed": 877, "fingerprint": "eeef237e394edaa0418d875319c4a3397eb21eb3ee9d88dd61266d9d381d138b"},
    "epaxos-crash-degraded": {"wall_seconds": 0.344, "events": 26074, "completed": 639, "fingerprint": "78e9da8a8ec6c6a2f7416d877ad1de9df8b3c813258673a6db3aebb01a833b4a"},
    "epaxos-partition-heal": {"wall_seconds": 0.333, "events": 25048, "completed": 593, "fingerprint": "d37eba13c3497778ff34356c7ea75369c9f8fd58acbcfd080072b570944d67fc"},
    "epaxos-relay-wan-9": {"wall_seconds": 0.471, "events": 27988, "completed": 351, "fingerprint": "733cb905f5b355bd6e92c5369cc04254a3acfb34b2db75210e16c1a76f1b4ba5"},
    "epaxos-relay-reshuffle-storm": {"wall_seconds": 0.499, "events": 45815, "completed": 504, "fingerprint": "2e021fd3beff3577fa18b1abf3306fd6f5b62e0bd0f43aa660a20b1b4e6f6f91"},
    "epaxos-thrifty-crash": {"wall_seconds": 0.332, "events": 19156, "completed": 649, "fingerprint": "c0f9eb9af006c53d776ef0604f04c2b07e918c19d76813021d29e4e610d033b4"},
    "epaxos-thrifty-severed-links": {"wall_seconds": 0.066, "events": 4570, "completed": 120, "fingerprint": "7aaee036c757a033f545b18140c544d1b55b0fff5d4eafa6f21f4f3ce5c4b8fe"},
    "epaxos-duplicate-torture": {"wall_seconds": 1.667, "events": 123525, "completed": 1716, "fingerprint": "35b164448a71c318befcd162779819ed02b942bc694f930eeda7f7bb1abf527e"},
    "paxos-throughput-25": {"wall_seconds": 4.393, "events": 331682, "completed": 2225, "fingerprint": "a31b239a31e6cefa06d77b2cf62c7058adf0c4f68cae3f83220e41f8734ff9b2"},
    "epaxos-relay-wan-25": {"wall_seconds": 0.861, "events": 59173, "completed": 248, "fingerprint": "33c1e9444b5bc5788c0dbfef50bb2992abe57af9fb4f85593bec48411a29b472"},
    "pig-fault-tolerance-long": {"wall_seconds": 89.002, "events": 3115446, "completed": 86016, "fingerprint": "907cda0bfc88e0e29db959635eed3bf56303dc4f1f00e71920e2f8795d262857"},
}

DEFAULT_OUT = Path(__file__).resolve().parent / "results" / "BENCH_perf.json"


def run_sweep(names):
    """Run the scenarios; return (per-scenario dict, divergent-fingerprint list)."""
    scenarios = all_scenarios()
    results = {}
    divergent = []
    for name in names:
        scenario = scenarios[name]
        gc.collect()
        start = time.perf_counter()
        result = ScenarioRunner(scenario).run()
        wall = time.perf_counter() - start
        fingerprint = result.fingerprint()
        baseline = BASELINE.get(name)
        if baseline is not None and baseline["fingerprint"] != fingerprint:
            divergent.append(name)
        results[name] = {
            "wall_seconds": round(wall, 3),
            "events": result.events_processed,
            "completed": result.completed_requests,
            "events_per_sec": round(result.events_processed / wall),
            "ops_per_sec": round(result.completed_requests / wall, 1),
            "ok": result.ok,
            "fingerprint": fingerprint,
        }
        speed = ""
        if baseline is not None:
            speed = f"  ({baseline['wall_seconds'] / wall:4.2f}x vs baseline)"
        print(
            f"{name:32s} {wall:7.2f}s {results[name]['events_per_sec']:8,d} ev/s "
            f"{results[name]['ops_per_sec']:8,.0f} ops/s{speed}"
        )
        del result
    return results, divergent


def parallel_sweep_bench(names):
    """Serial vs multiprocessing sweep over the same scenarios.

    The determinism contract crosses the process boundary: the parallel
    sweep must reproduce the serial per-scenario fingerprints exactly.
    The wall-clock target (>= 2x with >= 4 cores) is recorded, not
    asserted, because this bench also runs on single-core hosts where a
    worker pool can only add overhead; ``cores`` in the report says which
    regime the numbers came from.
    """
    scenarios = [all_scenarios()[name] for name in names]
    cores = default_workers()
    workers = max(2, cores)

    gc.collect()
    start = time.perf_counter()
    serial = sweep(scenarios)
    serial_wall = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    parallel = sweep(scenarios, parallel=workers)
    parallel_wall = time.perf_counter() - start

    identical = [o.fingerprint for o in serial] == [o.fingerprint for o in parallel]
    speedup = round(serial_wall / parallel_wall, 2) if parallel_wall else None
    print(
        f"\nparallel sweep: {len(scenarios)} scenarios, {workers} workers on "
        f"{cores} core(s): serial {serial_wall:.2f}s, parallel {parallel_wall:.2f}s "
        f"({speedup}x), fingerprints {'identical' if identical else 'DIVERGED'}"
    )
    return {
        "scenarios": len(scenarios),
        "cores": cores,
        "workers": workers,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "speedup": speedup,
        "fingerprints_identical": identical,
        # The >=2x acceptance target only applies with >=4 cores; None
        # means "not measurable on this host", not "missed".
        "meets_2x_target": (speedup is not None and speedup >= 2.0)
        if cores >= 4 else None,
    }, identical


def summarise(per_scenario):
    wall = sum(v["wall_seconds"] for v in per_scenario.values())
    events = sum(v["events"] for v in per_scenario.values())
    completed = sum(v["completed"] for v in per_scenario.values())
    return {
        "total_wall_seconds": round(wall, 3),
        "total_events": events,
        "total_completed_ops": completed,
        "events_per_sec": round(events / wall) if wall else 0,
        "ops_per_sec": round(completed / wall, 1) if wall else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run only the smoke subset (for CI runners)")
    parser.add_argument("--json", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default: {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    names = list(SMOKE_SCENARIOS) if args.quick else sorted(all_scenarios())
    print(f"bench_perf: {len(names)} scenarios ({'quick' if args.quick else 'full sweep'})\n")
    current, divergent = run_sweep(names)
    parallel_report, parallel_identical = parallel_sweep_bench(
        list(SMOKE_SCENARIOS) if args.quick else names
    )

    baseline_subset = {k: v for k, v in BASELINE.items() if k in current}
    baseline_summary = summarise(baseline_subset)
    current_summary = summarise(current)
    speedup = (
        round(baseline_summary["total_wall_seconds"] / current_summary["total_wall_seconds"], 2)
        if current_summary["total_wall_seconds"]
        else None
    )

    print(
        f"\nTOTAL   baseline {baseline_summary['total_wall_seconds']:8.2f}s"
        f" ({baseline_summary['events_per_sec']:,} ev/s)"
        f"   current {current_summary['total_wall_seconds']:8.2f}s"
        f" ({current_summary['events_per_sec']:,} ev/s)"
        f"   speedup {speedup}x"
    )
    if divergent:
        print(f"\nFINGERPRINT DIVERGENCE in: {', '.join(divergent)}", file=sys.stderr)

    report = {
        "workload": "canned scenario sweep (repro.scenarios.library)",
        "mode": "quick" if args.quick else "full",
        "baseline_commit": BASELINE_COMMIT,
        "baseline": {"scenarios": baseline_subset, "summary": baseline_summary},
        "current": {"scenarios": current, "summary": current_summary},
        "speedup_wall_clock": speedup,
        "fingerprints_match_baseline": not divergent,
        "parallel_sweep": parallel_report,
    }
    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.json}")
    return 1 if (divergent or not parallel_identical) else 0


if __name__ == "__main__":
    raise SystemExit(main())
