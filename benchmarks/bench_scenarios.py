"""Adversarial scenario sweep + protocol x overlay communication-cost table.

Two benchmark-shaped views of the scenario/checker stack:

* ``test_scenario_library_safety_sweep`` runs the whole canned scenario
  library from ``repro.scenarios`` -- leader crashes, partitions, drop
  storms, relay churn, overlay faults -- and reports, per scenario, client
  throughput, a *post-crash-recovery* throughput column (ops/s over the
  window after the scenario's last crash event; the number the EPaxos
  explicit-prepare recovery path exists to keep from collapsing), fault
  counters and the checkers' verdict.  Any future scale/speed PR can
  eyeball this table to see whether an optimization traded away
  correctness under adversity.

* ``test_communication_cost_matrix`` reproduces the paper's headline
  comparison on a fault-free 9-node WAN deployment, extended to the
  leaderless protocol: for each protocol x fan-out overlay cell it measures
  messages and bytes at the *bottleneck node* (the busiest node -- the
  leader for the Paxos family, the busiest opportunistic leader for EPaxos)
  and asserts that relay and thrifty EPaxos beat direct all-to-all
  broadcast, with every safety checker still green.

Both tests merge their results into ``benchmarks/results/BENCH_scenarios.json``
(per-scenario throughput plus message/byte accounting) so the performance
trajectory is machine-trackable across PRs.
"""

from __future__ import annotations

import json

import pytest

from _common import RESULTS_DIR, comparison_table, report
from repro.scenarios import all_scenarios, run_scenario
from repro.scenarios.library import EPAXOS_CHECK_NAMES
from repro.scenarios.spec import Scenario
from repro.sim.metrics import bottleneck_node, sent_by_kind, shard_summary
from repro.workload.spec import WorkloadSpec

BENCH_JSON = RESULTS_DIR / "BENCH_scenarios.json"

#: The protocol x overlay cells of the communication-cost comparison.
#: PigPaxos *is* paxos + relay, so it fills that cell of the matrix.
COMM_MATRIX = (
    ("paxos", "direct"),
    ("pigpaxos", "relay"),
    ("epaxos", "direct"),
    ("epaxos", "relay"),
    ("epaxos", "thrifty"),
)


def _merge_into_json(section: str, payload) -> None:
    """Merge one section into BENCH_scenarios.json (tests run in any order)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# Library safety sweep


def _post_crash_ops_per_sec(result):
    """Throughput over the window after the scenario's last crash event.

    The post-crash-recovery column of the sweep: before explicit-prepare
    recovery (PR 5) the EPaxos crash scenarios collapsed here even though
    their full-run averages looked healthy, because the pre-crash half of
    the run hid the stall.  ``None`` for fault-free scenarios.
    """
    crash_times = [
        event.at
        for event in result.scenario.events
        if event.action in ("crash", "crash_leader")
    ]
    if not crash_times:
        return None
    since = max(crash_times)
    window = result.scenario.duration - since
    if window <= 0:
        return None
    completed_after = sum(
        1 for op in result.history.completed() if op.completed_at > since
    )
    return round(completed_after / window, 1)


def _run_library():
    records = []
    for name in sorted(all_scenarios()):
        result = run_scenario(all_scenarios()[name])
        counters = result.counters()
        node, hot = bottleneck_node(counters)
        post_crash = _post_crash_ops_per_sec(result)
        records.append(
            {
                "scenario": name,
                "protocol": result.scenario.protocol,
                "nodes": result.scenario.num_nodes,
                "completed": result.completed_requests,
                "ops_per_sec": round(result.completed_requests / result.scenario.duration, 1),
                "post_crash_ops_per_sec": post_crash,
                "messages_sent": int(counters.get("net.messages_sent", 0)),
                "bytes_sent": int(counters.get("net.bytes_sent", 0)),
                "crashes": int(counters.get("faults.crashes", 0)),
                "drops": int(counters.get("net.messages_dropped", 0)),
                "dups": int(counters.get("net.messages_duplicated", 0)),
                "relay_timeouts": int(
                    counters.get("pigpaxos.relay_timeouts", 0)
                    + counters.get("epaxos.relay_timeouts", 0)
                ),
                "bottleneck_node": node,
                "bottleneck_messages": int(hot.get("messages_total", 0)),
                "violations": len(result.violations),
                "ok": result.ok,
            }
        )
    return records


@pytest.mark.benchmark(group="scenarios")
def test_scenario_library_safety_sweep(benchmark):
    records = benchmark.pedantic(_run_library, rounds=1, iterations=1)

    rows = [
        (
            r["scenario"],
            r["protocol"],
            r["nodes"],
            f"{r['ops_per_sec']:.0f}",
            "-" if r["post_crash_ops_per_sec"] is None else f"{r['post_crash_ops_per_sec']:.0f}",
            r["crashes"],
            r["drops"],
            r["dups"],
            r["relay_timeouts"],
            "OK" if r["ok"] else f"{r['violations']} VIOLATIONS",
        )
        for r in records
    ]
    lines = comparison_table(
        ["scenario", "protocol", "nodes", "ops/s", "post-crash ops/s", "crashes", "drops", "dups", "relay t/o", "checkers"],
        rows,
    )
    report("scenario_safety_sweep", "Adversarial scenario sweep (safety checkers enabled)", lines)
    _merge_into_json("scenario_sweep", records)

    verdicts = [(r["scenario"], r["ok"]) for r in records]
    assert all(ok for _, ok in verdicts), verdicts


# ---------------------------------------------------------------------------
# Communication-cost matrix (9-node WAN, protocol x overlay)


def _comm_scenario(protocol: str, overlay: str) -> Scenario:
    """One fault-free 9-node WAN cell of the communication-cost matrix."""
    common = dict(
        num_nodes=9,
        wan=True,
        num_clients=6,
        duration=2.0,
        seed=5,
        client_timeout=1.0,
    )
    if protocol == "pigpaxos":
        return Scenario(
            name=f"comm-{protocol}-{overlay}",
            protocol="pigpaxos",
            use_region_groups=True,
            description="communication-cost cell",
            **common,
        )
    checks = EPAXOS_CHECK_NAMES if protocol == "epaxos" else ("linearizability", "log_invariants")
    overrides = None
    if overlay == "relay":
        overrides = {"overlay": {"kind": "relay", "use_region_groups": True}}
    elif overlay == "thrifty":
        overrides = {"overlay": {"kind": "thrifty", "thrifty_fallback_timeout": 0.3}}
    return Scenario(
        name=f"comm-{protocol}-{overlay}",
        protocol=protocol,
        checks=checks,
        config_overrides=overrides,
        description="communication-cost cell",
        **common,
    )


def _run_matrix():
    records = []
    for protocol, overlay in COMM_MATRIX:
        result = run_scenario(_comm_scenario(protocol, overlay))
        counters = result.counters()
        node, hot = bottleneck_node(counters)
        completed = max(result.completed_requests, 1)
        records.append(
            {
                "protocol": protocol,
                "overlay": overlay,
                "completed": result.completed_requests,
                "ops_per_sec": round(result.completed_requests / result.scenario.duration, 1),
                "bottleneck_node": node,
                "bottleneck_messages": int(hot.get("messages_total", 0)),
                "bottleneck_msgs_per_op": round(hot.get("messages_total", 0) / completed, 2),
                "bottleneck_bytes": int(hot.get("bytes_total", 0)),
                "bottleneck_bytes_per_op": round(hot.get("bytes_total", 0) / completed, 1),
                "total_messages": int(counters.get("net.messages_sent", 0)),
                "total_bytes": int(counters.get("net.bytes_sent", 0)),
                "sent_by_kind": {
                    kind: {"count": int(stats["count"]), "bytes": int(stats["bytes"])}
                    for kind, stats in sorted(sent_by_kind(counters).items())
                },
                "violations": len(result.violations),
                "ok": result.ok,
            }
        )
    return records


@pytest.mark.benchmark(group="scenarios")
def test_communication_cost_matrix(benchmark):
    records = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)

    rows = [
        (
            f"{r['protocol']}+{r['overlay']}",
            f"{r['ops_per_sec']:.0f}",
            r["bottleneck_node"],
            r["bottleneck_msgs_per_op"],
            r["bottleneck_bytes_per_op"],
            r["total_messages"],
            "OK" if r["ok"] else f"{r['violations']} VIOLATIONS",
        )
        for r in records
    ]
    lines = comparison_table(
        [
            "protocol+overlay",
            "ops/s",
            "hot node",
            "hot msgs/op",
            "hot bytes/op",
            "total msgs",
            "checkers",
        ],
        rows,
    )
    report(
        "communication_cost_matrix",
        "Communication cost at the bottleneck node -- 9-node WAN, protocol x overlay",
        lines,
    )
    _merge_into_json("communication_cost", records)

    by_cell = {(r["protocol"], r["overlay"]): r for r in records}
    assert all(r["ok"] for r in records), [
        (r["protocol"], r["overlay"], r["violations"]) for r in records
    ]
    # The paper's claim, extended to the leaderless protocol: both overlay
    # strategies must shrink per-op message touches at the busiest node
    # compared to direct all-to-all broadcast.
    direct = by_cell[("epaxos", "direct")]["bottleneck_msgs_per_op"]
    relay = by_cell[("epaxos", "relay")]["bottleneck_msgs_per_op"]
    thrifty = by_cell[("epaxos", "thrifty")]["bottleneck_msgs_per_op"]
    assert relay < direct, (relay, direct)
    assert thrifty < direct, (thrifty, direct)
    # And PigPaxos must beat plain Paxos at the leader, as in the paper.
    assert (
        by_cell[("pigpaxos", "relay")]["bottleneck_msgs_per_op"]
        < by_cell[("paxos", "direct")]["bottleneck_msgs_per_op"]
    )


# ---------------------------------------------------------------------------
# Shard scaling curve (1 -> 64 consensus groups on one 9-node set)

#: Group counts of the scaling sweep.  64 groups on 9 nodes is deliberately
#: past the useful range: the curve must flatten there (every machine is
#: already saturated by 16 groups), and showing the plateau is the point.
SHARD_SCALING_CELLS = (1, 4, 16, 64)


def _scaling_scenario(shards: int) -> Scenario:
    """One cell of the scaling curve: only ``shards`` varies.

    A single 9-node machine set throughout -- sharding adds consensus
    groups, never hardware -- with enough closed-loop clients (32) that the
    single-group cell is leader-CPU-bound and the sharded cells have load
    left over to spread.
    """
    return Scenario(
        name=f"shard-scaling-{shards}",
        protocol="paxos",
        num_nodes=9,
        num_clients=32,
        duration=1.0,
        seed=2,
        shards=shards,
        workload=WorkloadSpec.checking_default(num_keys=256),
        checks=("linearizability", "log_invariants"),
        description="shard scaling cell",
    )


def _run_scaling():
    records = []
    for shards in SHARD_SCALING_CELLS:
        result = run_scenario(_scaling_scenario(shards))
        counters = result.counters()
        node, hot = bottleneck_node(counters)
        summary = shard_summary(counters)
        records.append(
            {
                "shards": shards,
                "completed": result.completed_requests,
                "ops_per_sec": round(result.completed_requests / result.scenario.duration, 1),
                "hottest_share": round(summary.get("hottest_share", 1.0), 3),
                "bottleneck_node": node,
                "bottleneck_messages": int(hot.get("messages_total", 0)),
                "total_messages": int(counters.get("net.messages_sent", 0)),
                "violations": len(result.violations),
                "ok": result.ok,
            }
        )
    base = records[0]["ops_per_sec"] or 1.0
    for record in records:
        record["speedup"] = round(record["ops_per_sec"] / base, 2)
    return records


@pytest.mark.benchmark(group="scenarios")
def test_shard_scaling_curve(benchmark):
    records = benchmark.pedantic(_run_scaling, rounds=1, iterations=1)

    rows = [
        (
            r["shards"],
            f"{r['ops_per_sec']:.0f}",
            f"{r['speedup']:.2f}x",
            f"{r['hottest_share']:.2f}",
            r["bottleneck_node"],
            r["bottleneck_messages"],
            "OK" if r["ok"] else f"{r['violations']} VIOLATIONS",
        )
        for r in records
    ]
    lines = comparison_table(
        ["groups", "ops/s", "speedup", "hottest share", "hot node", "hot msgs", "checkers"],
        rows,
    )
    report(
        "shard_scaling_curve",
        "Sharded consensus scaling -- N groups sharing one 9-node set (paxos)",
        lines,
    )
    _merge_into_json("shard_scaling", records)

    by_shards = {r["shards"]: r for r in records}
    assert all(r["ok"] for r in records), [(r["shards"], r["violations"]) for r in records]
    # The tentpole's acceptance bar: 16 co-hosted groups must deliver at
    # least 3x the single-group throughput on the same machines.  (Seeded
    # and single-threaded, so the measured curve is deterministic.)
    assert by_shards[16]["ops_per_sec"] >= 3.0 * by_shards[1]["ops_per_sec"], (
        by_shards[16]["ops_per_sec"],
        by_shards[1]["ops_per_sec"],
    )
    # Past saturation the curve flattens rather than regresses.
    assert by_shards[64]["ops_per_sec"] >= 0.95 * by_shards[16]["ops_per_sec"]


# ---------------------------------------------------------------------------
# Batching frontier (batch size x offered load, 25-node Multi-Paxos)

#: Batch sizes of the frontier sweep; 1 is the unbatched control.
FRONTIER_BATCH_CELLS = (1, 4, 8, 16)

#: Offered-load lever: closed-loop client counts.  6 matches the
#: paxos-throughput-25 scenario (light load, latency end of the frontier);
#: 48 drives the 25-node leader well past saturation (throughput end).
FRONTIER_CLIENT_CELLS = (6, 24, 48)

#: The reduced frontier CI's perf job runs (report-only quick tier): the
#: unbatched control and one batched column, at both ends of the load axis.
FRONTIER_QUICK_CELLS = tuple(
    (batch, clients) for batch in (1, 8) for clients in (6, 48)
)


def _frontier_scenario(batch: int, clients: int) -> Scenario:
    """One frontier cell: paxos-throughput-25's cluster, varying load/batch.

    ``pipeline_depth=2`` for the batched cells: batching on this path
    emerges from pipeline back-pressure (commands buffer while two slots
    are in flight and flush as a batch when one commits), so an unbounded
    pipeline would degenerate to one command per slot at any load.
    """
    overrides = None
    if batch > 1:
        overrides = {"batch_max_commands": batch, "pipeline_depth": 2}
    return Scenario(
        name=f"frontier-b{batch}-c{clients}",
        protocol="paxos",
        num_nodes=25,
        num_clients=clients,
        duration=1.0,
        seed=7,
        checks=("linearizability", "log_invariants"),
        config_overrides=overrides,
        description="batching frontier cell",
    )


def _latencies(result) -> list:
    return sorted(
        op.completed_at - op.invoked_at
        for op in result.history.completed()
        if op.completed_at is not None
    )


def _run_frontier(cells) -> list:
    records = []
    for batch, clients in cells:
        result = run_scenario(_frontier_scenario(batch, clients))
        counters = result.counters()
        node, hot = bottleneck_node(counters)
        latencies = _latencies(result)
        completed = max(result.completed_requests, 1)
        p50 = latencies[len(latencies) // 2] if latencies else None
        p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] if latencies else None
        records.append(
            {
                "batch_max_commands": batch,
                "clients": clients,
                "completed": result.completed_requests,
                "ops_per_sec": round(result.completed_requests / result.scenario.duration, 1),
                "latency_p50_ms": None if p50 is None else round(p50 * 1e3, 2),
                "latency_p99_ms": None if p99 is None else round(p99 * 1e3, 2),
                "bottleneck_node": node,
                "bottleneck_messages": int(hot.get("messages_total", 0)),
                "bottleneck_msgs_per_op": round(hot.get("messages_total", 0) / completed, 2),
                "bottleneck_bytes_per_op": round(hot.get("bytes_total", 0) / completed, 1),
                "total_messages": int(counters.get("net.messages_sent", 0)),
                "batch_flushes": int(
                    sum(v for k, v in counters.items() if k.startswith("batch.flush."))
                ),
                "commands_batched": int(counters.get("batch.commands_batched", 0)),
                "violations": len(result.violations),
                "ok": result.ok,
            }
        )
    return records


def frontier_table(records) -> list:
    rows = [
        (
            r["batch_max_commands"],
            r["clients"],
            f"{r['ops_per_sec']:.0f}",
            "-" if r["latency_p50_ms"] is None else f"{r['latency_p50_ms']:.1f}",
            "-" if r["latency_p99_ms"] is None else f"{r['latency_p99_ms']:.1f}",
            r["bottleneck_msgs_per_op"],
            r["bottleneck_bytes_per_op"],
            "OK" if r["ok"] else f"{r['violations']} VIOLATIONS",
        )
        for r in records
    ]
    return comparison_table(
        [
            "batch",
            "clients",
            "ops/s",
            "p50 ms",
            "p99 ms",
            "hot msgs/op",
            "hot bytes/op",
            "checkers",
        ],
        rows,
    )


@pytest.mark.benchmark(group="scenarios")
def test_batching_frontier_sweep(benchmark):
    cells = [(b, c) for b in FRONTIER_BATCH_CELLS for c in FRONTIER_CLIENT_CELLS]
    records = benchmark.pedantic(_run_frontier, args=(cells,), rounds=1, iterations=1)

    report(
        "batching_frontier",
        "Latency-vs-throughput frontier -- batch size x offered load, 25-node Multi-Paxos",
        frontier_table(records),
    )
    _merge_into_json("batching_frontier", records)

    by_cell = {(r["batch_max_commands"], r["clients"]): r for r in records}
    assert all(r["ok"] for r in records), [
        (r["batch_max_commands"], r["clients"], r["violations"]) for r in records
    ]
    # The tentpole's acceptance bar: at saturating load the batched leader
    # must deliver at least 2x the unbatched ops/sec on the same cluster --
    # amortizing the 2(N-1) per-slot messages is the whole point.  (Seeded
    # and single-threaded, so the measured frontier is deterministic.)
    saturated = max(FRONTIER_CLIENT_CELLS)
    unbatched = by_cell[(1, saturated)]["ops_per_sec"]
    batched = max(
        by_cell[(batch, saturated)]["ops_per_sec"] for batch in FRONTIER_BATCH_CELLS[1:]
    )
    assert batched >= 2.0 * unbatched, (batched, unbatched)
    # Batching must also slash per-op traffic at the bottleneck node.
    assert (
        by_cell[(8, saturated)]["bottleneck_msgs_per_op"]
        < 0.5 * by_cell[(1, saturated)]["bottleneck_msgs_per_op"]
    )
    # At light load the unbatched control keeps the lower p50: the
    # frontier's latency end must show the cost side of the trade-off.
    light = min(FRONTIER_CLIENT_CELLS)
    assert by_cell[(1, light)]["latency_p50_ms"] is not None


# ---------------------------------------------------------------------------
# Bottleneck-vs-N curve (planet hierarchy, direct vs one- and two-level trees)

#: Cluster sizes of the curve -- perfect squares so the sqrt-sized relay
#: trees stay balanced, spanning LAN scale (9) to planet scale (81).
BOTTLENECK_CURVE_SIZES = (9, 25, 49, 81)

#: Fan-out variants: plain Multi-Paxos broadcasts direct; PigPaxos routes
#: through zone-aligned relay trees, one or two levels deep.
BOTTLENECK_CURVE_VARIANTS = ("direct", "relay-1", "relay-2")


def _bottleneck_scenario(variant: str, num_nodes: int) -> Scenario:
    """One fault-free cell: the same planet deployment, varying fan-out.

    Every cell runs on the 3-region x 3-zone planet topology so the relay
    variants get real hierarchy to align with and the direct control pays
    the same WAN latencies; only the fan-out strategy varies.
    """
    common = dict(
        num_nodes=num_nodes,
        hierarchy=(3, 3),
        num_clients=8,
        duration=1.5,
        seed=11,
        client_timeout=1.0,
        checks=("linearizability", "log_invariants"),
        description="bottleneck curve cell",
    )
    if variant == "direct":
        return Scenario(name=f"bottleneck-direct-{num_nodes}", protocol="paxos", **common)
    levels = int(variant.rsplit("-", 1)[1])
    return Scenario(
        name=f"bottleneck-{variant}-{num_nodes}",
        protocol="pigpaxos",
        use_region_groups=True,
        config_overrides={"relay_levels": levels},
        **common,
    )


def _run_bottleneck_curve():
    records = []
    for variant in BOTTLENECK_CURVE_VARIANTS:
        for num_nodes in BOTTLENECK_CURVE_SIZES:
            result = run_scenario(_bottleneck_scenario(variant, num_nodes))
            counters = result.counters()
            node, hot = bottleneck_node(counters)
            completed = max(result.completed_requests, 1)
            records.append(
                {
                    "variant": variant,
                    "nodes": num_nodes,
                    "completed": result.completed_requests,
                    "ops_per_sec": round(result.completed_requests / result.scenario.duration, 1),
                    "bottleneck_node": node,
                    "bottleneck_messages": int(hot.get("messages_total", 0)),
                    "bottleneck_msgs_per_op": round(hot.get("messages_total", 0) / completed, 2),
                    "bottleneck_bytes_per_op": round(hot.get("bytes_total", 0) / completed, 1),
                    "region_cross_messages": int(counters.get("region.cross_messages", 0)),
                    "zone_cross_messages": int(counters.get("zone.cross_messages", 0)),
                    "total_messages": int(counters.get("net.messages_sent", 0)),
                    "violations": len(result.violations),
                    "ok": result.ok,
                }
            )
    return records


@pytest.mark.benchmark(group="scenarios")
def test_bottleneck_vs_cluster_size_curve(benchmark):
    records = benchmark.pedantic(_run_bottleneck_curve, rounds=1, iterations=1)

    rows = [
        (
            r["variant"],
            r["nodes"],
            f"{r['ops_per_sec']:.0f}",
            r["bottleneck_node"],
            r["bottleneck_msgs_per_op"],
            r["bottleneck_bytes_per_op"],
            "OK" if r["ok"] else f"{r['violations']} VIOLATIONS",
        )
        for r in records
    ]
    lines = comparison_table(
        ["fan-out", "nodes", "ops/s", "hot node", "hot msgs/op", "hot bytes/op", "checkers"],
        rows,
    )
    report(
        "bottleneck_vs_n",
        "Bottleneck-node messages vs cluster size -- planet hierarchy, direct vs relay trees",
        lines,
    )
    _merge_into_json("bottleneck_vs_n", records)

    by_cell = {(r["variant"], r["nodes"]): r for r in records}
    assert all(r["ok"] for r in records), [
        (r["variant"], r["nodes"], r["violations"]) for r in records
    ]
    # The paper's scaling argument, measured: direct fan-out's per-op
    # message count at the leader grows roughly linearly with N, while the
    # relay trees keep it near-flat (the leader only ever talks to its
    # relays).  Compare the 9 -> 81 growth factors: direct must at least
    # quintuple; each tree variant must grow by well under half of
    # direct's factor, and at 81 nodes must undercut direct outright.
    small, large = BOTTLENECK_CURVE_SIZES[0], BOTTLENECK_CURVE_SIZES[-1]
    direct_growth = (
        by_cell[("direct", large)]["bottleneck_msgs_per_op"]
        / by_cell[("direct", small)]["bottleneck_msgs_per_op"]
    )
    assert direct_growth >= 5.0, direct_growth
    for variant in ("relay-1", "relay-2"):
        growth = (
            by_cell[(variant, large)]["bottleneck_msgs_per_op"]
            / by_cell[(variant, small)]["bottleneck_msgs_per_op"]
        )
        assert growth <= 0.5 * direct_growth, (variant, growth, direct_growth)
        assert (
            by_cell[(variant, large)]["bottleneck_msgs_per_op"]
            < by_cell[("direct", large)]["bottleneck_msgs_per_op"]
        ), variant


def main(argv=None) -> int:
    """Report-only quick frontier tier for CI's perf job.

    Runs the reduced cell set and writes the records to ``--json`` (the CI
    artifact); exits non-zero only on a checker violation, never on a
    number -- shared-runner speed is noise, simulated semantics are not.
    """
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--json", default=None, help="write frontier records to this path")
    args = parser.parse_args(argv)
    records = _run_frontier(FRONTIER_QUICK_CELLS)
    for line in frontier_table(records):
        print(line)
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(
            json.dumps({"batching_frontier_quick": records}, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return 0 if all(r["ok"] for r in records) else 1


if __name__ == "__main__":
    raise SystemExit(main())
