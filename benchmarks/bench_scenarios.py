"""Adversarial scenario sweep: throughput and safety under faults.

Unlike the figure benchmarks (which reproduce the paper's numbers), this
sweep runs the whole canned scenario library from ``repro.scenarios`` --
leader crashes, partitions, drop storms, relay churn -- and reports, for
each scenario, client throughput, fault counters and the verdict of the
linearizability + log-invariant checkers.  It is the benchmark-shaped view
of the safety suite in tests/test_scenarios.py: any future scale/speed PR
can eyeball this table to see whether an optimization traded away
correctness under adversity.
"""

from __future__ import annotations

import pytest

from _common import comparison_table, report
from repro.scenarios import all_scenarios, run_scenario


def _run_library():
    rows = []
    for name in sorted(all_scenarios()):
        result = run_scenario(all_scenarios()[name])
        counters = result.counters()
        throughput = result.completed_requests / result.scenario.duration
        rows.append(
            (
                name,
                result.scenario.protocol,
                result.scenario.num_nodes,
                f"{throughput:.0f}",
                int(counters.get("faults.crashes", 0)),
                int(counters.get("net.messages_dropped", 0)),
                int(counters.get("net.messages_duplicated", 0)),
                int(counters.get("pigpaxos.relay_timeouts", 0)),
                "OK" if result.ok else f"{len(result.violations)} VIOLATIONS",
            )
        )
    return rows


@pytest.mark.benchmark(group="scenarios")
def test_scenario_library_safety_sweep(benchmark):
    rows = benchmark.pedantic(_run_library, rounds=1, iterations=1)

    lines = comparison_table(
        ["scenario", "protocol", "nodes", "ops/s", "crashes", "drops", "dups", "relay t/o", "checkers"],
        rows,
    )
    report("scenario_safety_sweep", "Adversarial scenario sweep (safety checkers enabled)", lines)

    verdicts = [row[-1] for row in rows]
    assert all(verdict == "OK" for verdict in verdicts), verdicts
