"""Tables 1 and 2: analytical message load at the leader and followers.

These tables are analytical in the paper (formulas 1-3); the benchmark
regenerates them exactly and additionally cross-checks the model against
*measured* per-node message counts from a short simulated run.
"""

from __future__ import annotations

import pytest

from _common import SEED, comparison_table, report
from repro.analysis.model import message_load_table, messages_at_leader
from repro.bench.runner import ExperimentConfig, build_from_config

PAPER_TABLE1 = {  # r -> (Ml, Mf, overhead %)
    2: (6, 3.83, 56), 3: (8, 3.75, 113), 4: (10, 3.67, 172),
    5: (12, 3.58, 234), 6: (14, 3.50, 300), 24: (50, 2.0, 2400),
}
PAPER_TABLE2 = {2: (6, 3.5, 71), 3: (8, 3.25, 146), 4: (10, 3.0, 233), 8: (18, 2.0, 800)}


def _rows(n, counts, paper):
    rows = []
    for row in message_load_table(n, relay_group_counts=counts):
        expected = paper[row.relay_groups]
        rows.append([
            row.label(),
            expected[0], round(row.messages_at_leader, 2),
            expected[1], round(row.messages_at_follower, 2),
            f"{expected[2]}%", f"{row.leader_overhead * 100:.0f}%",
        ])
    return rows


@pytest.mark.benchmark(group="tables")
def test_table1_and_table2_message_load(benchmark):
    def _generate():
        return (
            _rows(25, [2, 3, 4, 5, 6], PAPER_TABLE1),
            _rows(9, [2, 3, 4], PAPER_TABLE2),
        )

    table1, table2 = benchmark.pedantic(_generate, rounds=1, iterations=1)
    headers = ["relay groups", "paper Ml", "model Ml", "paper Mf", "model Mf", "paper overhead", "model overhead"]
    lines = ["Table 1 (25 nodes):", *comparison_table(headers, table1), "",
             "Table 2 (9 nodes):", *comparison_table(headers, table2)]
    report("table1_table2_message_load", "Tables 1 & 2 -- analytical message load", lines)

    for row in message_load_table(25, relay_group_counts=[2, 3, 4, 5, 6]):
        paper_ml, paper_mf, paper_overhead = PAPER_TABLE1[row.relay_groups]
        assert row.messages_at_leader == paper_ml
        assert row.messages_at_follower == pytest.approx(paper_mf, abs=0.01)
        assert row.leader_overhead * 100 == pytest.approx(paper_overhead, abs=2)


@pytest.mark.benchmark(group="tables")
def test_model_matches_simulated_leader_message_counts(benchmark):
    """Cross-validate formula 1 against measured leader traffic in the simulator."""

    def _measure():
        measured = {}
        for protocol, groups in (("pigpaxos", 3), ("pigpaxos", 2), ("paxos", None)):
            config = ExperimentConfig(protocol=protocol, num_nodes=9, relay_groups=groups,
                                      num_clients=20, duration=0.4, warmup=0.1, seed=SEED)
            cluster = build_from_config(config)
            cluster.run(config.duration)
            completed = cluster.total_completed_requests()
            leader_msgs = (cluster.sim.metrics.counter("node.0.messages_in").value
                           + cluster.sim.metrics.counter("node.0.messages_out").value)
            measured[(protocol, groups)] = leader_msgs / completed
        return measured

    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for (protocol, groups), per_request in measured.items():
        r = groups if groups is not None else 8
        rows.append([f"{protocol} r={r}", messages_at_leader(r), round(per_request, 2)])
    report(
        "table1_cross_validation",
        "Model vs simulator -- leader messages per request (9 nodes)",
        comparison_table(["configuration", "model Ml", "measured msgs/request"], rows),
    )

    # Measured counts include heartbeats and retries, so allow a tolerance band
    # around the model, and require the model's ordering to hold.
    assert measured[("pigpaxos", 2)] < measured[("pigpaxos", 3)] < measured[("paxos", None)]
    for (protocol, groups), per_request in measured.items():
        r = groups if groups is not None else 8
        assert per_request == pytest.approx(messages_at_leader(r), rel=0.35)
