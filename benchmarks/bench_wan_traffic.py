"""Section 6.4: cross-region WAN traffic per write operation.

Paper example: 3 regions x 3 nodes -- a PigPaxos write sends 2 messages
across region boundaries (one per remote relay group), a Paxos write sends 6
(one per remote node): a 3x difference in billable WAN traffic.  The
benchmark checks the analytical model and then measures actual cross-region
message counts in the simulator.
"""

from __future__ import annotations

import pytest

from _common import SEED, comparison_table, report
from repro.analysis.wan import wan_traffic_table
from repro.bench.runner import ExperimentConfig, build_from_config
from repro.cluster.topologies import wan_topology
from repro.workload.spec import WorkloadSpec

REGIONS = {"virginia": [0, 3, 6], "california": [1, 4, 7], "oregon": [2, 5, 8]}


def _measured_cross_region_per_request(protocol: str) -> float:
    topology = wan_topology(region_nodes=REGIONS)
    config = ExperimentConfig(
        protocol=protocol,
        num_nodes=9,
        topology=topology,
        use_region_groups=(protocol == "pigpaxos"),
        num_clients=20,
        workload=WorkloadSpec(read_ratio=0.0),
        duration=1.0,
        warmup=0.2,
        seed=SEED,
    )
    cluster = build_from_config(config)

    region_of = topology.region_map()
    cross = {"count": 0}
    original_send = cluster.network.send

    def counting_send(src, dst, message):
        src_region = region_of.get(src)
        dst_region = region_of.get(dst)
        if src_region is not None and dst_region is not None and src_region != dst_region:
            cross["count"] += 1
        return original_send(src, dst, message)

    cluster.network.send = counting_send
    cluster.run(config.duration)
    completed = cluster.total_completed_requests()
    return cross["count"] / completed if completed else float("inf")


@pytest.mark.benchmark(group="wan-traffic")
def test_wan_cross_region_traffic(benchmark):
    def _measure():
        return {protocol: _measured_cross_region_per_request(protocol) for protocol in ("pigpaxos", "paxos")}

    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    model = {row.protocol: row.cross_region_messages for row in
             wan_traffic_table({name: len(nodes) for name, nodes in REGIONS.items()}, leader_region="virginia")}

    rows = [
        [protocol, model[protocol], round(measured[protocol], 2)]
        for protocol in ("pigpaxos", "paxos")
    ]
    report(
        "wan_traffic",
        "Section 6.4 -- cross-region messages per write (3 regions x 3 nodes)",
        comparison_table(["protocol", "model fan-out msgs", "measured cross-region msgs/request"], rows)
        + ["", "note: measured counts include the fan-in direction and heartbeats,",
           "so absolute values exceed the fan-out-only model; the ratio is what matters."],
    )

    assert model["paxos"] == 3 * model["pigpaxos"]
    # Measured totals (both directions + heartbeats): Paxos uses ~2.5-3x the
    # cross-region traffic of PigPaxos per committed request.
    assert measured["paxos"] > 2.0 * measured["pigpaxos"]
