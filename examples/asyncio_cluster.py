"""Run PigPaxos over real TCP sockets with the asyncio runtime.

Boots a 5-node PigPaxos cluster on localhost (2 relay groups), writes a small
"user profile" working set through the replicated key-value API, reads it
back, and shows that followers converge on the same state.

Run with:  python examples/asyncio_cluster.py
"""

from __future__ import annotations

import asyncio
import time

from repro.runtime import LocalCluster


async def main() -> None:
    async with LocalCluster(protocol="pigpaxos", num_nodes=5, relay_groups=2) as cluster:
        leader = cluster.leader_id()
        print(f"Started 5 PigPaxos nodes on localhost; leader is node {leader}.\n")

        client = cluster.client()
        await client.connect(leader or 0)

        profiles = {
            "user:1": "alice,admin",
            "user:2": "bob,developer",
            "user:3": "carol,auditor",
        }
        start = time.perf_counter()
        for key, value in profiles.items():
            await client.put(key, value)
        elapsed_ms = 1000 * (time.perf_counter() - start)
        print(f"Wrote {len(profiles)} profiles through consensus in {elapsed_ms:.1f} ms total.")

        for key in profiles:
            value = await client.get(key)
            print(f"  {key} -> {value}")
        await client.delete("user:3")
        print(f"  user:3 after delete -> {await client.get('user:3')}")
        await client.close()

        # Give heartbeats a moment to carry the commit frontier to followers.
        await asyncio.sleep(0.3)
        sizes = {server.node_id: len(server.replica.store) for server in cluster.servers}
        print(f"\nKey-value store sizes per node (should converge): {sizes}")


if __name__ == "__main__":
    asyncio.run(main())
