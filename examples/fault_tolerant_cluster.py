"""Fault tolerance walkthrough: relay-group failures and leader failover.

Reproduces the two failure stories from the paper's Section 3.4 / Figure 13
on a 25-node PigPaxos cluster with 3 relay groups:

1. A follower in one relay group crashes for a while.  The relay's tight
   timeout caps the damage; the other two relay groups plus the leader still
   form a majority, so throughput barely moves (paper: ~3% dip).
2. The leader itself crashes.  Followers detect the silence, a new leader
   wins phase-1 with a higher ballot, and clients resume after a short stall.

Run with:  python examples/fault_tolerant_cluster.py
"""

from __future__ import annotations

from repro.bench.plots import format_table
from repro.cluster.builder import build_cluster
from repro.cluster.faults import FaultSchedule
from repro.core.config import PigPaxosConfig


def follower_failure_demo() -> None:
    print("=== 1. Single follower failure in one relay group (25 nodes, 3 groups) ===\n")
    schedule = FaultSchedule().crash_window(24, start=1.0, end=2.0)
    cluster = build_cluster(
        protocol="pigpaxos",
        num_nodes=25,
        num_clients=120,
        relay_groups=3,
        seed=3,
        fault_schedule=schedule,
        protocol_config=PigPaxosConfig(num_relay_groups=3, relay_timeout=0.05),
    )
    cluster.sim.metrics.timeseries("client.completions", interval=0.25)
    cluster.run(3.0)

    series = cluster.sim.metrics.timeseries("client.completions", interval=0.25).rates(end=3.0)
    rows = [[f"{t:.2f}", f"{rate:.0f}", "<-- node 24 down" if 1.0 <= t < 2.0 else ""] for t, rate in series]
    print(format_table(["window start (s)", "throughput (req/s)", ""], rows))

    before = [r for t, r in series if 0.25 <= t < 1.0]
    during = [r for t, r in series if 1.25 <= t < 2.0]
    dip = 100 * (1 - (sum(during) / len(during)) / (sum(before) / len(before)))
    print(f"\nThroughput dip while the follower is down: {dip:.1f}% (paper reports ~3%)\n")
    assert cluster.logs_agree()


def leader_failover_demo() -> None:
    print("=== 2. Leader crash and automatic failover (9 nodes, 2 groups) ===\n")
    config = PigPaxosConfig(num_relay_groups=2, election_timeout_min=0.15,
                            election_timeout_max=0.3, heartbeat_interval=0.03)
    schedule = FaultSchedule().crash(0, at=1.0)
    cluster = build_cluster(
        protocol="pigpaxos", num_nodes=9, num_clients=30, seed=5,
        protocol_config=config, fault_schedule=schedule,
    )
    cluster.sim.metrics.timeseries("client.completions", interval=0.25)
    cluster.run(3.0)

    series = cluster.sim.metrics.timeseries("client.completions", interval=0.25).rates(end=3.0)
    rows = [[f"{t:.2f}", f"{rate:.0f}", "<-- leader crashed" if abs(t - 1.0) < 0.01 else ""] for t, rate in series]
    print(format_table(["window start (s)", "throughput (req/s)", ""], rows))
    print(f"\nOld leader: node 0 (crashed at t=1.0s).  New leader: node {cluster.leader_id()}.")
    print(f"Replicas still agree on the committed prefix: {cluster.logs_agree()}\n")
    assert cluster.leader_id() not in (None, 0)


def main() -> None:
    follower_failure_demo()
    leader_failover_demo()


if __name__ == "__main__":
    main()
