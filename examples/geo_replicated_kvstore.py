"""Geo-replicated configuration store (the paper's WAN scenario, Section 6.4).

Scenario: a cloud configuration-management service keeps a strongly
consistent key-value store replicated across three regions (Virginia,
California, Oregon), 5 replicas per region.  PigPaxos assigns one relay group
per region, so each write crosses the WAN only once per remote region instead
of once per remote node.

The example runs both Paxos and PigPaxos on the same 15-node WAN topology,
reports throughput/latency, and counts actual cross-region messages to show
the WAN-traffic (and cloud egress cost) difference.

Run with:  python examples/geo_replicated_kvstore.py
"""

from __future__ import annotations

from repro.bench.plots import format_table
from repro.bench.runner import ExperimentConfig, build_from_config
from repro.cluster.topologies import wan_topology
from repro.workload.spec import WorkloadSpec

REGION_NODES = {
    "virginia": [0, 1, 2, 3, 4],
    "california": [5, 6, 7, 8, 9],
    "oregon": [10, 11, 12, 13, 14],
}
NUM_CLIENTS = 150
DURATION = 1.5


def run(protocol: str):
    topology = wan_topology(region_nodes=REGION_NODES)
    config = ExperimentConfig(
        protocol=protocol,
        num_nodes=15,
        topology=topology,
        use_region_groups=(protocol == "pigpaxos"),
        num_clients=NUM_CLIENTS,
        workload=WorkloadSpec(read_ratio=0.2, value_size=128),  # config blobs: mostly writes matter
        duration=DURATION,
        warmup=0.3,
        seed=11,
    )
    cluster = build_from_config(config)

    # Count cross-region messages as they are sent.
    region_of = topology.region_map()
    cross_region = {"count": 0}
    original_send = cluster.network.send

    def counting_send(src, dst, message):
        src_region, dst_region = region_of.get(src), region_of.get(dst)
        if src_region and dst_region and src_region != dst_region:
            cross_region["count"] += 1
        return original_send(src, dst, message)

    cluster.network.send = counting_send
    cluster.run(DURATION)

    completed = cluster.total_completed_requests()
    latencies = sorted(l for c in cluster.clients for _, l in c.stats.completions)
    return {
        "protocol": protocol,
        "throughput": completed / DURATION,
        "latency_ms": 1000 * latencies[len(latencies) // 2],
        "cross_region_per_request": cross_region["count"] / max(completed, 1),
    }


def main() -> None:
    print("Geo-replicated configuration store: 3 regions x 5 nodes, leader in Virginia\n")
    results = [run(protocol) for protocol in ("paxos", "pigpaxos")]
    rows = [
        [r["protocol"], f"{r['throughput']:.0f}", f"{r['latency_ms']:.1f}", f"{r['cross_region_per_request']:.1f}"]
        for r in results
    ]
    print(format_table(
        ["protocol", "throughput (req/s)", "median latency (ms)", "cross-region msgs per request"],
        rows,
    ))
    paxos, pig = results
    savings = 100 * (1 - pig["cross_region_per_request"] / paxos["cross_region_per_request"])
    print(
        f"\nPigPaxos sends {savings:.0f}% fewer cross-region messages per request than Paxos, "
        "because the leader contacts a single relay per remote region (Section 6.4) -- "
        "directly reducing WAN egress charges for geo-replicated databases."
    )


if __name__ == "__main__":
    main()
