"""Quickstart: run a simulated PigPaxos cluster and compare it with Paxos.

This is the 60-second tour of the library: build a 9-node cluster of each
protocol with the paper's default workload (1000 uniform keys, 50/50
reads/writes), drive it with closed-loop clients, and print throughput,
latency and the leader's message load.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_cluster
from repro.analysis.model import messages_at_leader, paxos_messages_at_leader
from repro.bench.plots import format_table

NUM_NODES = 9
NUM_CLIENTS = 60
DURATION = 0.8  # simulated seconds
RELAY_GROUPS = 2


def run_protocol(protocol: str):
    cluster = build_cluster(
        protocol=protocol,
        num_nodes=NUM_NODES,
        num_clients=NUM_CLIENTS,
        relay_groups=RELAY_GROUPS if protocol == "pigpaxos" else None,
        seed=7,
    )
    cluster.run(DURATION)

    completed = cluster.total_completed_requests()
    latencies = sorted(
        latency for client in cluster.clients for _, latency in client.stats.completions
    )
    mean_latency_ms = 1000 * sum(latencies) / len(latencies)
    leader = cluster.leader_id()
    leader_messages = 0.0
    if leader is not None:
        leader_messages = (
            cluster.sim.metrics.counter(f"node.{leader}.messages_in").value
            + cluster.sim.metrics.counter(f"node.{leader}.messages_out").value
        ) / max(completed, 1)
    return {
        "protocol": protocol,
        "throughput": completed / DURATION,
        "latency_ms": mean_latency_ms,
        "leader_msgs_per_request": leader_messages,
        "logs_agree": cluster.logs_agree(),
    }


def main() -> None:
    print(f"Simulating {NUM_NODES}-node clusters with {NUM_CLIENTS} closed-loop clients...\n")
    results = [run_protocol(protocol) for protocol in ("paxos", "pigpaxos")]

    rows = [
        [
            r["protocol"],
            f"{r['throughput']:.0f}",
            f"{r['latency_ms']:.2f}",
            f"{r['leader_msgs_per_request']:.1f}",
            "yes" if r["logs_agree"] else "NO",
        ]
        for r in results
    ]
    print(format_table(
        ["protocol", "throughput (req/s)", "mean latency (ms)", "leader msgs/request", "replicas agree"],
        rows,
    ))

    print(
        "\nAnalytical model (Section 6): the Paxos leader handles "
        f"{paxos_messages_at_leader(NUM_NODES):.0f} messages per request, the PigPaxos leader "
        f"only {messages_at_leader(RELAY_GROUPS):.0f} with {RELAY_GROUPS} relay groups -- "
        "which is exactly why PigPaxos scales further before the leader saturates."
    )


if __name__ == "__main__":
    main()
