#!/usr/bin/env python3
"""Documentation link checker (used by the CI docs/lint step).

Scans the repo's markdown files for relative links and verifies every
target exists.  External links (http/https/mailto) and pure anchors are
skipped; a ``path#anchor`` link is checked for the path only.

Usage::

    python scripts/check_docs.py [file_or_dir ...]   # defaults to README.md docs/
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target) -- excludes images handled the same.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(arguments: list[str]) -> list[Path]:
    if not arguments:
        arguments = ["README.md", "docs"]
    files: list[Path] = []
    for argument in arguments:
        path = (REPO_ROOT / argument).resolve()
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"error: no such file or directory: {argument}", file=sys.stderr)
            sys.exit(2)
    return files


def check_file(markdown: Path) -> list[str]:
    problems = []
    text = markdown.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (markdown.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{markdown.relative_to(REPO_ROOT)}: broken link -> {target}")
    return problems


def main(arguments: list[str]) -> int:
    files = markdown_files(arguments)
    problems = [problem for markdown in files for problem in check_file(markdown)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{'OK' if not problems else f'{len(problems)} broken link(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
