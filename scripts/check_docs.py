#!/usr/bin/env python3
"""Documentation link checker (used by the CI docs/lint step).

Scans the repo's markdown files for relative links and verifies every
target exists.  External links (http/https/mailto) and pure anchors are
skipped; a ``path#anchor`` link is checked for the path only.

Additionally cross-checks the "Static analysis" section of
``docs/ARCHITECTURE.md`` against the live ``repro.lint`` rule registry,
in both directions: every registered rule id must be documented, and
every documented rule id must exist in the registry.

Usage::

    python scripts/check_docs.py [file_or_dir ...]   # defaults to README.md docs/
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target) -- excludes images handled the same.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(arguments: list[str]) -> list[Path]:
    if not arguments:
        arguments = ["README.md", "docs"]
    files: list[Path] = []
    for argument in arguments:
        path = (REPO_ROOT / argument).resolve()
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"error: no such file or directory: {argument}", file=sys.stderr)
            sys.exit(2)
    return files


def check_file(markdown: Path) -> list[str]:
    problems = []
    text = markdown.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (markdown.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{markdown.relative_to(REPO_ROOT)}: broken link -> {target}")
    return problems


#: Backticked tokens that look like lint rule ids: lowercase kebab-case
#: with at least one hyphen (filters out paths, module names and CLI
#: flags, which carry dots, slashes or leading dashes).
RULE_ID_RE = re.compile(r"`([a-z][a-z0-9]*(?:-[a-z0-9]+)+)`")

ARCHITECTURE_MD = REPO_ROOT / "docs" / "ARCHITECTURE.md"
STATIC_ANALYSIS_HEADING = "## Static analysis"


def static_analysis_section(text: str) -> str | None:
    """The body of ARCHITECTURE.md's "Static analysis" section, if present."""
    start = text.find(STATIC_ANALYSIS_HEADING)
    if start == -1:
        return None
    body_start = start + len(STATIC_ANALYSIS_HEADING)
    end = text.find("\n## ", body_start)
    return text[body_start:] if end == -1 else text[body_start:end]


def check_lint_rule_docs() -> list[str]:
    """Cross-check documented rule ids against the live rule registry."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.lint.rules import RULES
    finally:
        sys.path.pop(0)

    if not ARCHITECTURE_MD.exists():
        return [f"{ARCHITECTURE_MD.relative_to(REPO_ROOT)}: file missing"]
    section = static_analysis_section(ARCHITECTURE_MD.read_text(encoding="utf-8"))
    if section is None:
        return [
            f"{ARCHITECTURE_MD.relative_to(REPO_ROOT)}: "
            f'no "{STATIC_ANALYSIS_HEADING}" section (rule catalogue lives there)'
        ]

    documented = {token for token in RULE_ID_RE.findall(section) if token in RULES}
    doc_only = {
        token
        for token in RULE_ID_RE.findall(section)
        # Hyphenated backticked tokens in the rule-catalogue table column
        # must be real rule ids; elsewhere in the section prose they may
        # be ordinary hyphenated identifiers, so only the table is strict.
        if token not in RULES
        and any(
            line.lstrip().startswith(f"| `{token}`")
            for line in section.splitlines()
        )
    }
    problems = []
    for rule_id in sorted(set(RULES) - documented):
        problems.append(
            f"docs/ARCHITECTURE.md: lint rule `{rule_id}` is registered in "
            "repro.lint.rules.RULES but missing from the Static analysis section"
        )
    for token in sorted(doc_only):
        problems.append(
            f"docs/ARCHITECTURE.md: Static analysis section documents `{token}` "
            "but repro.lint.rules.RULES has no such rule"
        )
    return problems


def main(arguments: list[str]) -> int:
    files = markdown_files(arguments)
    problems = [problem for markdown in files for problem in check_file(markdown)]
    problems.extend(check_lint_rule_docs())
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{'OK' if not problems else f'{len(problems)} problem(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
