"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517/660 editable installs (which build a wheel) are unavailable.  Keeping
a ``setup.py`` lets ``pip install -e .`` fall back to the legacy editable
install path; all project metadata still lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
