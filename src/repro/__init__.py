"""PigPaxos reproduction library.

This package reproduces the system described in "PigPaxos: Devouring the
Communication Bottlenecks in Distributed Consensus" (Charapko, Ailijiang,
Demirbas, SIGMOD 2021).  It contains:

* ``repro.core`` -- the PigPaxos protocol (the paper's contribution):
  relay groups, per-round random relay selection, in-network aggregation,
  relay/leader timeouts and partial response collection.
* ``repro.paxos`` -- the Multi-Paxos baseline with a stable leader and
  commit piggybacking.
* ``repro.epaxos`` -- the EPaxos baseline (pre-accept/accept/commit with
  dependency tracking and SCC-ordered execution).
* ``repro.sim`` / ``repro.net`` / ``repro.cluster`` -- the deterministic
  discrete-event substrate standing in for the paper's Paxi/EC2 testbed.
* ``repro.statemachine`` / ``repro.quorum`` -- replicated log, in-memory
  key-value store and quorum systems.
* ``repro.workload`` / ``repro.bench`` -- the Paxi-style benchmark:
  closed-loop clients, key distributions, latency/throughput sweeps.
* ``repro.analysis`` -- the paper's analytical message-load model
  (Tables 1 and 2, Section 6).
* ``repro.runtime`` -- an asyncio TCP runtime running the same protocol
  classes over real sockets.
* ``repro.scenarios`` / ``repro.checkers`` -- deterministic adversarial
  scenario engine (declarative fault schedules compiled onto the
  simulator) and post-hoc safety checkers (per-key linearizability of
  recorded client histories, cross-replica log invariants).
"""

from repro.version import __version__
from repro.cluster.builder import ClusterBuilder, build_cluster
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.bench.results import RunResult
from repro.workload.spec import WorkloadSpec
from repro.analysis.model import (
    messages_at_leader,
    messages_at_follower,
    leader_overhead,
    message_load_table,
)

__all__ = [
    "__version__",
    "ClusterBuilder",
    "build_cluster",
    "ExperimentConfig",
    "run_experiment",
    "RunResult",
    "WorkloadSpec",
    "messages_at_leader",
    "messages_at_follower",
    "leader_overhead",
    "message_load_table",
]
