"""Analytical models from the paper's Section 6.

* :mod:`repro.analysis.model` -- the message-load formulas (Ml = 2r + 2,
  Mf = 2(N - r - 1)/(N - 1) + 2), the leader-overhead ratio and the
  generators for Tables 1 and 2.
* :mod:`repro.analysis.wan` -- cross-region message counts for the WAN
  traffic argument of Section 6.4.
* :mod:`repro.analysis.advisor` -- a small helper that recommends a relay
  group count for a deployment, following the paper's findings.
"""

from repro.analysis.model import (
    messages_at_leader,
    messages_at_follower,
    paxos_messages_at_leader,
    paxos_messages_at_follower,
    leader_overhead,
    message_load_table,
    follower_load_limit,
)
from repro.analysis.wan import wan_messages_per_write, wan_traffic_table
from repro.analysis.advisor import recommend_relay_groups

__all__ = [
    "messages_at_leader",
    "messages_at_follower",
    "paxos_messages_at_leader",
    "paxos_messages_at_follower",
    "leader_overhead",
    "message_load_table",
    "follower_load_limit",
    "wan_messages_per_write",
    "wan_traffic_table",
    "recommend_relay_groups",
]
