"""Relay-group configuration advisor.

Encodes the paper's operational findings (Sections 5.3, 6.1-6.2): the leader
bottleneck shrinks with fewer relay groups, so the best throughput comes from
the smallest group count that still satisfies fault-tolerance needs; a single
relay group is fragile (one crashed relay group stalls the round until the
leader retries), so two groups is the practical minimum, and WAN deployments
should use one group per region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.model import leader_overhead, messages_at_leader
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RelayGroupRecommendation:
    """The advisor's output, with the model values that justify it."""

    num_groups: int
    messages_at_leader: float
    leader_overhead: float
    rationale: str


def recommend_relay_groups(
    num_nodes: int,
    num_regions: Optional[int] = None,
    latency_sensitive: bool = False,
) -> RelayGroupRecommendation:
    """Recommend the number of relay groups for a deployment.

    * WAN deployments get one group per region (Section 6.4, Figure 9).
    * LAN deployments get 2 groups -- the paper's best-throughput setting --
      or 3 when the caller is latency sensitive (3 groups shrinks each group,
      shortening the wait for the slowest member at a small throughput cost).
    """
    if num_nodes < 3:
        raise ConfigurationError("PigPaxos needs at least 3 nodes (1 leader + 2 followers)")
    if num_regions is not None:
        if num_regions < 1:
            raise ConfigurationError("num_regions must be >= 1")
        groups = min(max(num_regions, 1), num_nodes - 1)
        rationale = "one relay group per region minimizes cross-WAN messages (Section 6.4)"
    elif latency_sensitive:
        groups = min(3, num_nodes - 1)
        rationale = "3 groups shrinks group size, trimming the wait for the slowest follower"
    else:
        groups = min(2, num_nodes - 1)
        rationale = "2 relay groups minimizes the leader bottleneck (Figure 7, Table 1)"
    return RelayGroupRecommendation(
        num_groups=groups,
        messages_at_leader=messages_at_leader(groups),
        leader_overhead=leader_overhead(num_nodes, groups) if num_nodes > groups + 1 else 0.0,
        rationale=rationale,
    )
