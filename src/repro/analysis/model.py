"""The paper's analytical message-load model (Section 6.1-6.3).

For a PigPaxos deployment of ``N`` nodes with ``r`` relay groups:

* the leader handles ``Ml = 2r + 2`` messages per consensus round
  (formula 1: one client request + one reply, plus a round trip with each of
  the ``r`` relays);
* an average follower handles ``Mf = 2(N - r - 1)/(N - 1) + 2`` messages
  (formulas 2-3: a round trip with its relay, plus -- weighted by the
  probability ``r/(N-1)`` of being chosen as a relay -- round trips with the
  ``(N - r - 1)/r`` other members of its group);
* classical Paxos is the degenerate case ``r = N - 1``.

``message_load_table`` reproduces Tables 1 and 2 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError


def _validate(n: int, r: int) -> None:
    if n < 2:
        raise ConfigurationError("the model needs at least 2 nodes")
    if not 1 <= r <= n - 1:
        raise ConfigurationError(f"relay group count must be in [1, N-1]; got r={r}, N={n}")


def messages_at_leader(r: int) -> float:
    """Formula 1: Ml = 2r + 2."""
    if r < 1:
        raise ConfigurationError("relay group count must be >= 1")
    return 2.0 * r + 2.0


def messages_at_follower(n: int, r: int) -> float:
    """Formulas 2-3: Mf = 2(N - r - 1)/(N - 1) + 2."""
    _validate(n, r)
    return 2.0 * (n - r - 1) / (n - 1) + 2.0


def paxos_messages_at_leader(n: int) -> float:
    """Classical Paxos leader load: r = N - 1 relay groups of one node each."""
    if n < 2:
        raise ConfigurationError("the model needs at least 2 nodes")
    return messages_at_leader(n - 1)


def paxos_messages_at_follower(n: int) -> float:
    """Classical Paxos follower load (always 2: one P2a in, one P2b out)."""
    if n < 2:
        raise ConfigurationError("the model needs at least 2 nodes")
    return messages_at_follower(n, n - 1)


def leader_overhead(n: int, r: int) -> float:
    """Leader overhead relative to the average follower, as in Tables 1 and 2.

    Returned as a fraction (0.56 means the leader handles 56% more messages
    than the average follower).
    """
    return messages_at_leader(r) / messages_at_follower(n, r) - 1.0


def follower_load_limit(r: int = 1) -> float:
    """Asymptotic follower load as N grows (Section 6.3): approaches 4 for r=1."""
    if r < 1:
        raise ConfigurationError("relay group count must be >= 1")
    return 4.0


@dataclass(frozen=True)
class MessageLoadRow:
    """One row of Table 1 / Table 2."""

    relay_groups: int
    messages_at_leader: float
    messages_at_follower: float
    leader_overhead: float
    is_paxos: bool = False

    def label(self) -> str:
        return f"{self.relay_groups} (Paxos)" if self.is_paxos else str(self.relay_groups)


def message_load_table(n: int, relay_group_counts: Optional[Sequence[int]] = None) -> List[MessageLoadRow]:
    """Reproduce Table 1 (n=25) / Table 2 (n=9) of the paper.

    The final row is always the classical-Paxos degenerate case (r = N - 1).
    """
    if relay_group_counts is None:
        relay_group_counts = [r for r in range(2, 7) if r <= n - 2] or [1]
    rows = [
        MessageLoadRow(
            relay_groups=r,
            messages_at_leader=messages_at_leader(r),
            messages_at_follower=messages_at_follower(n, r),
            leader_overhead=leader_overhead(n, r),
        )
        for r in relay_group_counts
    ]
    paxos_r = n - 1
    rows.append(
        MessageLoadRow(
            relay_groups=paxos_r,
            messages_at_leader=paxos_messages_at_leader(n),
            messages_at_follower=paxos_messages_at_follower(n),
            leader_overhead=leader_overhead(n, paxos_r),
            is_paxos=True,
        )
    )
    return rows
