"""Cross-region WAN traffic model (Section 6.4).

In a geo-replicated deployment where each region hosts one relay group and
the leader's region also hosts the leader, a PigPaxos write sends exactly one
message to each remote region (the relay), while Paxos sends one message to
every remote node.  The paper's example -- 3 regions x 3 nodes -- gives 2
cross-WAN messages for PigPaxos versus 6 for Paxos per write (per direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WANTrafficRow:
    """Cross-region messages per write operation (one direction)."""

    protocol: str
    cross_region_messages: int
    ratio_vs_pigpaxos: float


def wan_messages_per_write(regions: Mapping[str, int], leader_region: str, protocol: str) -> int:
    """Cross-region messages per write for ``protocol`` (fan-out direction only).

    ``regions`` maps region name to node count; the leader lives in
    ``leader_region``.
    """
    if leader_region not in regions:
        raise ConfigurationError(f"leader region {leader_region!r} not in the deployment")
    if any(count < 1 for count in regions.values()):
        raise ConfigurationError("every region needs at least one node")
    remote_regions = {name: count for name, count in regions.items() if name != leader_region}
    if protocol == "pigpaxos":
        # One message per remote region: the leader contacts a single relay there.
        return len(remote_regions)
    if protocol == "paxos":
        # One message per remote node.
        return sum(remote_regions.values())
    raise ConfigurationError(f"unknown protocol {protocol!r}")


def wan_traffic_table(regions: Mapping[str, int], leader_region: str) -> List[WANTrafficRow]:
    """Paper Section 6.4 comparison for an arbitrary regional deployment."""
    pig = wan_messages_per_write(regions, leader_region, "pigpaxos")
    paxos = wan_messages_per_write(regions, leader_region, "paxos")
    return [
        WANTrafficRow(protocol="pigpaxos", cross_region_messages=pig, ratio_vs_pigpaxos=1.0),
        WANTrafficRow(
            protocol="paxos",
            cross_region_messages=paxos,
            ratio_vs_pigpaxos=paxos / pig if pig else float("inf"),
        ),
    ]
