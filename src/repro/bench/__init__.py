"""Benchmark harness.

Turns simulated cluster runs into the measurements the paper reports:
latency/throughput points (Figures 8-11), maximum-throughput numbers
(Figures 7 and 12), and per-second throughput time-series under faults
(Figure 13).  Each module in ``benchmarks/`` drives these helpers with the
paper's parameters and prints paper-vs-measured tables.
"""

from repro.bench.results import RunResult, SweepResult
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.bench.sweeps import latency_throughput_sweep, max_throughput
from repro.bench.timeseries import throughput_timeseries
from repro.bench.plots import ascii_chart, format_table

__all__ = [
    "RunResult",
    "SweepResult",
    "ExperimentConfig",
    "run_experiment",
    "latency_throughput_sweep",
    "max_throughput",
    "throughput_timeseries",
    "ascii_chart",
    "format_table",
]
