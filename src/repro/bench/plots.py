"""Text rendering of benchmark results.

The benchmark harness runs in a terminal/CI environment with no plotting
dependencies, so figures are rendered as ASCII charts and aligned tables.
Every ``benchmarks/bench_fig*.py`` module prints the same series the paper
plots, so a reader can compare shapes directly.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

Series = Sequence[Tuple[float, float]]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append(" | ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def ascii_chart(
    series_by_label: Dict[str, Series],
    width: int = 70,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter several series onto a shared-axis ASCII chart."""
    markers = "*o+x#@%&"
    points = [
        (x, y, markers[index % len(markers)])
        for index, (label, series) in enumerate(series_by_label.items())
        for x, y in series
    ]
    if not points:
        return "(no data)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][col] = marker

    lines = []
    lines.append(f"{y_label} (top={_fmt(y_max)}, bottom={_fmt(y_min)})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {_fmt(x_min)} .. {_fmt(x_max)}")
    legend = "  ".join(
        f"{markers[index % len(markers)]}={label}"
        for index, label in enumerate(series_by_label)
    )
    lines.append(" legend: " + legend)
    return "\n".join(lines)
