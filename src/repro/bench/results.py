"""Benchmark result records.

``RunResult`` summarizes one cluster run at one load level; ``SweepResult``
collects the runs of a client-count sweep and exposes the latency/throughput
series plotted in the paper's figures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class RunResult:
    """Aggregated measurements of one benchmark run."""

    protocol: str
    num_nodes: int
    num_clients: int
    duration: float
    measured_window: float
    completed_requests: int
    throughput: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    client_retries: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def latency_mean_ms(self) -> float:
        return self.latency_mean * 1000.0

    @property
    def latency_p99_ms(self) -> float:
        return self.latency_p99 * 1000.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "num_nodes": self.num_nodes,
            "num_clients": self.num_clients,
            "duration": self.duration,
            "measured_window": self.measured_window,
            "completed_requests": self.completed_requests,
            "throughput": self.throughput,
            "latency_mean_ms": self.latency_mean_ms,
            "latency_p50_ms": self.latency_p50 * 1000.0,
            "latency_p95_ms": self.latency_p95 * 1000.0,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_max_ms": self.latency_max * 1000.0,
            "client_retries": self.client_retries,
            **{f"extra.{key}": value for key, value in self.extra.items()},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def row(self) -> str:
        """A human-readable one-line summary."""
        return (
            f"{self.protocol:>9} n={self.num_nodes:<3} clients={self.num_clients:<4} "
            f"tput={self.throughput:9.1f} req/s  lat(mean/p50/p99)="
            f"{self.latency_mean_ms:6.2f}/{self.latency_p50 * 1000:6.2f}/{self.latency_p99_ms:6.2f} ms"
        )


@dataclass
class SweepResult:
    """Results of varying the offered load (number of closed-loop clients)."""

    label: str
    runs: List[RunResult] = field(default_factory=list)

    def add(self, run: RunResult) -> None:
        self.runs.append(run)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    # ------------------------------------------------------------------ series
    def latency_throughput_series(self, percentile: str = "mean") -> List[Tuple[float, float]]:
        """(throughput, latency_ms) points, in the order the sweep was run."""
        series = []
        for run in self.runs:
            if percentile == "mean":
                latency = run.latency_mean
            elif percentile == "p50":
                latency = run.latency_p50
            elif percentile == "p99":
                latency = run.latency_p99
            else:
                raise ValueError(f"unknown percentile {percentile!r}")
            series.append((run.throughput, latency * 1000.0))
        return series

    def max_throughput(self) -> float:
        return max((run.throughput for run in self.runs), default=0.0)

    def best_run(self) -> Optional[RunResult]:
        if not self.runs:
            return None
        return max(self.runs, key=lambda run: run.throughput)

    def saturation_run(self, latency_budget_ms: Optional[float] = None) -> Optional[RunResult]:
        """The highest-throughput run, optionally subject to a latency budget."""
        candidates = self.runs
        if latency_budget_ms is not None:
            within = [run for run in self.runs if run.latency_mean_ms <= latency_budget_ms]
            candidates = within or self.runs
        if not candidates:
            return None
        return max(candidates, key=lambda run: run.throughput)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [run.to_dict() for run in self.runs]

    def summary(self) -> str:
        lines = [f"== {self.label} =="]
        lines.extend(run.row() for run in self.runs)
        return "\n".join(lines)
