"""Single-run experiment execution.

``run_experiment`` builds a cluster from an :class:`ExperimentConfig`, runs
it for the configured virtual duration, and aggregates client-side latency
and throughput over the measurement window (excluding warm-up and the final
cool-down, as benchmarking practice -- and the Paxi benchmark -- do).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.bench.results import RunResult
from repro.cluster.builder import Cluster, build_cluster
from repro.cluster.cpu import NodeCPUModel
from repro.cluster.faults import FaultSchedule
from repro.errors import BenchmarkError
from repro.net.topology import Topology
from repro.protocol.config import ProtocolConfig
from repro.workload.spec import WorkloadSpec


@dataclass
class ExperimentConfig:
    """Everything needed to run one benchmark point."""

    protocol: str = "pigpaxos"
    num_nodes: int = 5
    num_clients: int = 20
    duration: float = 1.0
    warmup: float = 0.2
    cooldown: float = 0.05
    seed: int = 1
    relay_groups: Optional[int] = None
    workload: WorkloadSpec = field(default_factory=WorkloadSpec.paper_default)
    topology: Optional[Topology] = None
    protocol_config: Optional[ProtocolConfig] = None
    cpu_model: Optional[NodeCPUModel] = None
    fault_schedule: Optional[FaultSchedule] = None
    use_region_groups: bool = False
    extra: Dict[str, object] = field(default_factory=dict)

    def with_clients(self, num_clients: int) -> "ExperimentConfig":
        return replace(self, num_clients=num_clients)

    def with_protocol(self, protocol: str) -> "ExperimentConfig":
        return replace(self, protocol=protocol)

    def label(self) -> str:
        parts = [self.protocol, f"n={self.num_nodes}"]
        if self.relay_groups is not None:
            parts.append(f"r={self.relay_groups}")
        return " ".join(parts)


def build_from_config(config: ExperimentConfig) -> Cluster:
    """Build (but do not run) the cluster described by ``config``."""
    return build_cluster(
        protocol=config.protocol,
        num_nodes=config.num_nodes,
        num_clients=config.num_clients,
        seed=config.seed,
        relay_groups=config.relay_groups,
        workload=config.workload,
        topology=config.topology,
        protocol_config=config.protocol_config,
        cpu_model=config.cpu_model,
        fault_schedule=config.fault_schedule,
        use_region_groups=config.use_region_groups,
    )


def run_experiment(config: ExperimentConfig, cluster: Optional[Cluster] = None) -> RunResult:
    """Run one benchmark point and aggregate its client-side measurements."""
    if config.duration <= config.warmup + config.cooldown:
        raise BenchmarkError("duration must exceed warmup + cooldown")
    cluster = cluster or build_from_config(config)
    cluster.run(config.duration)

    window_start = config.warmup
    window_end = config.duration - config.cooldown
    measured_window = window_end - window_start

    latencies: List[float] = []
    completed = 0
    retries = 0
    for client in cluster.clients:
        retries += client.stats.retries
        for completed_at, latency in client.stats.completions:
            if window_start <= completed_at <= window_end:
                completed += 1
                latencies.append(latency)

    latencies.sort()
    throughput = completed / measured_window if measured_window > 0 else 0.0

    def percentile(p: float) -> float:
        if not latencies:
            return 0.0
        rank = (p / 100.0) * (len(latencies) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return latencies[int(rank)]
        fraction = rank - low
        return latencies[low] * (1 - fraction) + latencies[high] * fraction

    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    extra = dict(config.extra)
    if config.relay_groups is not None:
        extra.setdefault("relay_groups", config.relay_groups)
    extra.setdefault("value_size", config.workload.value_size)

    return RunResult(
        protocol=config.protocol,
        num_nodes=config.num_nodes,
        num_clients=config.num_clients,
        duration=config.duration,
        measured_window=measured_window,
        completed_requests=completed,
        throughput=throughput,
        latency_mean=mean_latency,
        latency_p50=percentile(50),
        latency_p95=percentile(95),
        latency_p99=percentile(99),
        latency_max=latencies[-1] if latencies else 0.0,
        client_retries=retries,
        extra=extra,
    )
