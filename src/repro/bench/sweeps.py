"""Load sweeps: latency/throughput curves and maximum-throughput search.

The paper produces its latency/throughput plots by increasing the number of
closed-loop clients until the system saturates; maximum throughput (Figures
7 and 12) is the plateau of that sweep.  These helpers reproduce exactly that
methodology on the simulated clusters.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.bench.results import RunResult, SweepResult
from repro.bench.runner import ExperimentConfig, run_experiment

#: Client counts used when the caller does not specify a sweep.
DEFAULT_CLIENT_SWEEP: Tuple[int, ...] = (5, 10, 20, 40, 80, 160, 320)


def latency_throughput_sweep(
    config: ExperimentConfig,
    client_counts: Optional[Sequence[int]] = None,
    label: Optional[str] = None,
) -> SweepResult:
    """Run ``config`` at each client count and collect the resulting curve."""
    counts = list(client_counts) if client_counts is not None else list(DEFAULT_CLIENT_SWEEP)
    sweep = SweepResult(label=label or config.label())
    for count in counts:
        run = run_experiment(config.with_clients(count))
        sweep.add(run)
    return sweep


def max_throughput(
    config: ExperimentConfig,
    client_counts: Optional[Sequence[int]] = None,
    improvement_threshold: float = 0.03,
    label: Optional[str] = None,
) -> Tuple[RunResult, SweepResult]:
    """Find the saturation throughput by increasing load until it stops improving.

    Runs the sweep in increasing client-count order and stops early once two
    consecutive steps improve throughput by less than ``improvement_threshold``
    (matching how "maximum throughput" is read off a saturating curve).
    Returns the best run and the full sweep.
    """
    counts = sorted(client_counts) if client_counts is not None else list(DEFAULT_CLIENT_SWEEP)
    sweep = SweepResult(label=label or f"max-throughput {config.label()}")
    best: Optional[RunResult] = None
    flat_steps = 0
    for count in counts:
        run = run_experiment(config.with_clients(count))
        sweep.add(run)
        if best is None or run.throughput > best.throughput * (1.0 + improvement_threshold):
            if best is not None and run.throughput <= best.throughput * (1.0 + improvement_threshold):
                flat_steps += 1
            else:
                flat_steps = 0
            if best is None or run.throughput > best.throughput:
                best = run
        else:
            flat_steps += 1
            if run.throughput > (best.throughput if best else 0.0):
                best = run
            if flat_steps >= 2:
                break
    assert best is not None  # counts is never empty
    return best, sweep


def compare_protocols(
    base_config: ExperimentConfig,
    protocols: Iterable[str],
    client_counts: Optional[Sequence[int]] = None,
) -> List[SweepResult]:
    """Latency/throughput sweeps for several protocols on the same deployment."""
    sweeps = []
    for protocol in protocols:
        config = base_config.with_protocol(protocol)
        sweeps.append(latency_throughput_sweep(config, client_counts, label=config.label()))
    return sweeps
