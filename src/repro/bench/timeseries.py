"""Throughput-over-time measurements (the paper's Figure 13).

The fault-tolerance experiment samples completed requests per one-second
window across a run during which a node in one relay group is crashed and
later recovered.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bench.runner import ExperimentConfig, build_from_config
from repro.cluster.builder import Cluster


def throughput_timeseries(
    config: ExperimentConfig,
    interval: float = 1.0,
    cluster: Optional[Cluster] = None,
) -> Tuple[List[Tuple[float, float]], Cluster]:
    """Run ``config`` and return per-interval completion rates.

    Returns ``(series, cluster)`` where ``series`` is a list of
    ``(window_start_time, requests_per_second)`` tuples covering the whole
    run, and ``cluster`` is the (already run) cluster for further inspection.
    """
    cluster = cluster or build_from_config(config)
    # Ensure the time-series exists with the requested interval before running.
    cluster.sim.metrics.timeseries("client.completions", interval=interval)
    cluster.run(config.duration)
    series = cluster.sim.metrics.timeseries("client.completions", interval=interval).rates(
        start=0.0, end=config.duration
    )
    return series, cluster


def steady_state_rate(series: List[Tuple[float, float]], skip: int = 1) -> float:
    """Average rate of a time-series, ignoring the first ``skip`` warm-up windows."""
    useful = [rate for _, rate in series[skip:]]
    return sum(useful) / len(useful) if useful else 0.0
