"""Post-hoc safety checkers for simulated consensus runs.

The scenario engine (:mod:`repro.scenarios`) records every client
operation into a :class:`~repro.checkers.history.HistoryRecorder` and,
after the run, feeds the history and the cluster state to the checkers in
this package:

* :mod:`repro.checkers.linearizability` -- a WGL-style (Wing & Gong /
  Lowe) search that decides whether the recorded invocation/response
  history of the replicated KV store is linearizable, checked
  independently per key.
* :mod:`repro.checkers.invariants` -- log-level invariants that hold for
  Paxos/PigPaxos regardless of schedule: a single value chosen per slot
  across replicas, agreement on the gap-free committed prefix, execution
  never running ahead of commitment, and quorum-size sanity.  Plus the
  EPaxos family: cross-replica agreement on each committed instance's
  ``(seq, deps, command)``, dependency-respecting local execution order,
  and per-key cross-replica execution consistency.

Checkers never mutate the cluster; each returns a list of
:class:`~repro.checkers.invariants.Violation` records (empty means the
run passed).  They are deliberately independent of the scenario engine so
tests and benchmarks can also run them against hand-built clusters.

Example -- checking a cluster you built yourself::

    from repro.checkers import HistoryRecorder, check_linearizability, run_log_checks
    from repro.cluster.builder import ClusterBuilder

    recorder = HistoryRecorder()
    cluster = (ClusterBuilder().protocol("pigpaxos").nodes(5).clients(4)
               .seed(3).history_recorder(recorder).build())
    cluster.run(1.0)
    violations = run_log_checks(cluster) + check_linearizability(recorder.history())
    assert not violations, violations

For EPaxos clusters substitute :func:`run_epaxos_checks` for
:func:`run_log_checks` (the slot-based checks skip themselves on
protocols without a slot log).
"""

from repro.checkers.history import History, HistoryRecorder, Operation
from repro.checkers.invariants import (
    Violation,
    check_epaxos_conflict_ordering,
    check_epaxos_execution_consistency,
    check_epaxos_execution_order,
    check_epaxos_instance_agreement,
    check_execution_frontier,
    check_prefix_agreement,
    check_quorum_sanity,
    check_slot_agreement,
    run_epaxos_checks,
    run_log_checks,
)
from repro.checkers.linearizability import LinearizabilityChecker, check_linearizability

__all__ = [
    "History",
    "HistoryRecorder",
    "Operation",
    "Violation",
    "check_epaxos_conflict_ordering",
    "check_epaxos_execution_consistency",
    "check_epaxos_execution_order",
    "check_epaxos_instance_agreement",
    "check_execution_frontier",
    "check_prefix_agreement",
    "check_quorum_sanity",
    "check_slot_agreement",
    "run_epaxos_checks",
    "run_log_checks",
    "LinearizabilityChecker",
    "check_linearizability",
]
