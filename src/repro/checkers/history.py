"""Operation-history recording for safety checking.

A :class:`HistoryRecorder` is attached to the benchmark clients (via
``ClusterBuilder.history_recorder``) and records, for every client command,
the invocation time, the completion time and the observed result.  The
resulting :class:`History` is what the linearizability checker searches.

Operations are keyed by ``(client_id, request_id)``: a client that retries
a timed-out request re-sends the *same* command, so retries collapse onto
one operation whose invocation is the first send.  Operations that never
receive a successful reply stay *pending* -- the checker must allow them to
have taken effect at any point after their invocation, or never.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(slots=True)
class Operation:
    """One client operation: an invocation and (maybe) a response."""

    client_id: int
    request_id: int
    op: str
    key: str
    value: Optional[str]
    invoked_at: float
    completed_at: Optional[float] = None
    output: Optional[str] = None
    found: Optional[bool] = None

    @property
    def pending(self) -> bool:
        """True when no successful response was ever observed."""
        return self.completed_at is None

    def signature(self) -> Tuple:
        """Stable, uid-free tuple used for determinism fingerprints."""
        return (
            self.client_id,
            self.request_id,
            self.op,
            self.key,
            self.value,
            round(self.invoked_at, 9),
            round(self.completed_at, 9) if self.completed_at is not None else None,
            self.output,
            self.found,
        )


class History:
    """An immutable-ish view over recorded operations."""

    def __init__(self, operations: List[Operation]) -> None:
        self._operations = operations

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def operations(self) -> List[Operation]:
        """All operations sorted by invocation time (ties: recording order)."""
        return sorted(
            self._operations,
            key=lambda op: (op.invoked_at, op.client_id, op.request_id),
        )

    def completed(self) -> List[Operation]:
        return [op for op in self.operations() if not op.pending]

    def pending(self) -> List[Operation]:
        return [op for op in self.operations() if op.pending]

    def per_key(self) -> Dict[str, List[Operation]]:
        """Operations grouped by key, each group in invocation order.

        A replicated KV store with independent keys is linearizable iff the
        sub-history of every key is linearizable, which makes the WGL search
        tractable even for long runs.
        """
        by_key: Dict[str, List[Operation]] = {}
        for op in self.operations():
            by_key.setdefault(op.key, []).append(op)
        return by_key

    def fingerprint(self) -> str:
        """SHA-256 over a stable serialization; equal for identical runs.

        Command uids are process-global and differ between two runs in the
        same interpreter, so the fingerprint is built from uid-free
        signatures only.
        """
        digest = hashlib.sha256()
        for op in self.operations():
            digest.update(repr(op.signature()).encode("utf-8"))
        return digest.hexdigest()


class HistoryRecorder:
    """Collects operations as clients invoke commands and observe replies."""

    def __init__(self) -> None:
        self._ops: Dict[Tuple[int, int], Operation] = {}

    def __len__(self) -> int:
        return len(self._ops)

    # ----------------------------------------------------------------- hooks
    def invoke(self, command, at: float) -> None:
        """Record a command's invocation (idempotent across client retries)."""
        key = (command.client_id, command.request_id)
        if key in self._ops:
            return
        value = command.value
        if value is None and command.op.value == "put":
            # KVStore stores a compact placeholder for size-only PUTs; the
            # linearizability model must predict the same stored value.
            value = f"<{command.payload_size}B>"
        self._ops[key] = Operation(
            client_id=command.client_id,
            request_id=command.request_id,
            op=command.op.value,
            key=command.key,
            value=value,
            invoked_at=at,
        )

    def complete(self, reply, at: float) -> None:
        """Record a successful reply for a previously invoked command."""
        operation = self._ops.get((reply.client_id, reply.request_id))
        if operation is None or operation.completed_at is not None:
            return
        operation.completed_at = at
        result = reply.result
        if result is not None:
            operation.output = result.value
            operation.found = result.existed

    # ----------------------------------------------------------------- views
    def history(self) -> History:
        # lint: ok(no-unordered-iteration) insertion order is invocation-recording order, which is the order the linearizability checker requires
        return History(list(self._ops.values()))
