"""Log-level safety invariants checked across replicas after a run.

These invariants follow directly from the Paxos correctness argument that
PigPaxos inherits (the paper's central claim): no schedule of crashes,
partitions, drops or relay churn may ever

* commit two different commands in the same slot on different replicas
  (:func:`check_slot_agreement`),
* let two replicas disagree on the common part of their gap-free committed
  prefixes (:func:`check_prefix_agreement`),
* execute a slot that is not part of a committed, gap-free prefix
  (:func:`check_execution_frontier`), or
* run with quorums that do not intersect (:func:`check_quorum_sanity`).

Each check takes the :class:`~repro.cluster.builder.Cluster` post-run and
returns a list of :class:`Violation` records; an empty list means the
invariant held.  Replicas without a ``log`` attribute (EPaxos) are skipped
by the log checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by a checker."""

    checker: str
    message: str

    def __str__(self) -> str:
        return f"[{self.checker}] {self.message}"


def _replica_logs(cluster) -> Dict[int, object]:
    logs: Dict[int, object] = {}
    for node_id, node in cluster.nodes.items():
        log = getattr(node.replica, "log", None)
        if log is not None:
            logs[node_id] = log
    return logs


def check_slot_agreement(cluster) -> List[Violation]:
    """At most one command may ever be committed per slot, cluster-wide."""
    violations: List[Violation] = []
    chosen: Dict[int, Tuple[int, Optional[int]]] = {}  # slot -> (node, uid)
    for node_id, log in _replica_logs(cluster).items():
        for entry in log.entries():
            if not entry.committed:
                continue
            uid = getattr(entry.command, "uid", None)
            previous = chosen.get(entry.slot)
            if previous is None:
                chosen[entry.slot] = (node_id, uid)
            elif previous[1] != uid:
                violations.append(
                    Violation(
                        checker="slot_agreement",
                        message=(
                            f"slot {entry.slot}: node {previous[0]} committed command "
                            f"uid={previous[1]} but node {node_id} committed uid={uid}"
                        ),
                    )
                )
    return violations


def check_prefix_agreement(cluster) -> List[Violation]:
    """Every pair of replicas must agree on their common committed prefix."""
    violations: List[Violation] = []
    prefixes = cluster.committed_prefixes()
    node_ids = sorted(prefixes)
    for i, a_id in enumerate(node_ids):
        for b_id in node_ids[i + 1:]:
            a, b = prefixes[a_id], prefixes[b_id]
            common = min(len(a), len(b))
            for slot_index in range(common):
                if a[slot_index] != b[slot_index]:
                    violations.append(
                        Violation(
                            checker="prefix_agreement",
                            message=(
                                f"nodes {a_id} and {b_id} diverge at slot "
                                f"{slot_index + 1}: uid {a[slot_index]} vs {b[slot_index]}"
                            ),
                        )
                    )
                    break
    return violations


def check_execution_frontier(cluster) -> List[Violation]:
    """Execution must only ever cover a committed, gap-free prefix."""
    violations: List[Violation] = []
    for node_id, log in _replica_logs(cluster).items():
        for slot in range(1, log.next_execute_slot):
            if not log.is_committed(slot):
                violations.append(
                    Violation(
                        checker="execution_frontier",
                        message=(
                            f"node {node_id} executed through slot "
                            f"{log.next_execute_slot - 1} but slot {slot} is not committed"
                        ),
                    )
                )
                break
        replica = cluster.nodes[node_id].replica
        commit_upto = getattr(replica, "commit_upto", None)
        if commit_upto is not None:
            for slot in range(1, commit_upto + 1):
                if not log.is_committed(slot):
                    violations.append(
                        Violation(
                            checker="execution_frontier",
                            message=(
                                f"node {node_id} advertises commit_upto={commit_upto} "
                                f"but slot {slot} is not committed locally"
                            ),
                        )
                    )
                    break
    return violations


def check_quorum_sanity(cluster) -> List[Violation]:
    """Phase-1 and phase-2 quorums must intersect (q1 + q2 > n)."""
    violations: List[Violation] = []
    cluster_size = len(cluster.nodes)
    for node_id, node in cluster.nodes.items():
        quorum = getattr(node.replica, "quorum", None)
        if quorum is None:
            continue
        if quorum.n != cluster_size:
            violations.append(
                Violation(
                    checker="quorum_sanity",
                    message=(
                        f"node {node_id} sizes quorums for n={quorum.n} "
                        f"but the cluster has {cluster_size} nodes"
                    ),
                )
            )
        if quorum.phase1_size + quorum.phase2_size <= quorum.n:
            violations.append(
                Violation(
                    checker="quorum_sanity",
                    message=(
                        f"node {node_id} quorums do not intersect: "
                        f"q1={quorum.phase1_size} + q2={quorum.phase2_size} <= n={quorum.n}"
                    ),
                )
            )
    return violations


#: All log/cluster checks, in the order the scenario runner applies them.
LOG_CHECKS = (
    check_slot_agreement,
    check_prefix_agreement,
    check_execution_frontier,
    check_quorum_sanity,
)


def run_log_checks(cluster) -> List[Violation]:
    """Run every log/cluster invariant check and concatenate the violations."""
    violations: List[Violation] = []
    for check in LOG_CHECKS:
        violations.extend(check(cluster))
    return violations
