"""Log-level safety invariants checked across replicas after a run.

These invariants follow directly from the Paxos correctness argument that
PigPaxos inherits (the paper's central claim): no schedule of crashes,
partitions, drops or relay churn may ever

* commit two different commands in the same slot on different replicas
  (:func:`check_slot_agreement`),
* let two replicas disagree on the common part of their gap-free committed
  prefixes (:func:`check_prefix_agreement`),
* execute a slot that is not part of a committed, gap-free prefix
  (:func:`check_execution_frontier`), or
* run with quorums that do not intersect (:func:`check_quorum_sanity`).

EPaxos has no shared slot-ordered log, so the slot checks above do not apply
to it; its correctness argument is per-instance and per-dependency-graph
instead (Moraru et al., SOSP'13), and is covered by a parallel family of
checks:

* every pair of replicas that committed an instance must agree on its
  ``(seq, deps, command)`` triple (:func:`check_epaxos_instance_agreement`),
* each replica's local execution order must be a valid linearisation of its
  committed dependency graph -- dependencies outside an instance's strongly
  connected component execute first, and nothing executes with an
  uncommitted or unexecuted dependency
  (:func:`check_epaxos_execution_order`), and
* any two replicas must execute the instances touching one key in the same
  order, prefix-wise (:func:`check_epaxos_execution_consistency`) -- the
  state-machine-equivalence property that dependency tracking exists to
  provide.

Explicit-prepare recovery (PR 5) may legally commit an instance as a
*no-op*: a keyless :class:`~repro.statemachine.command.NoOp` that preserves
whatever dependency edges the recovery round gathered.  The EPaxos checks
treat such instances as first-class graph vertices -- their dependency
edges still order everything executed through them
(:func:`check_epaxos_execution_order` and the reachability closure of
:func:`check_epaxos_conflict_ordering` walk them like any other committed
instance) -- while the per-key families skip them (a no-op touches no key,
so it neither creates a conflict pair nor appears in a per-key executed
sequence).  What recovery must still never do is commit a no-op for an
instance some replica committed (or executed) with the real command: that
divergence is exactly what :func:`check_epaxos_instance_agreement` and
:func:`check_epaxos_execution_consistency` flag, and the forced-no-op
mutation test in ``tests/test_scenarios.py`` keeps them honest.

Each check takes the :class:`~repro.cluster.builder.Cluster` post-run and
returns a list of :class:`Violation` records; an empty list means the
invariant held.  Replicas without a ``log`` attribute (EPaxos) are skipped
by the log checks, and the EPaxos checks skip every replica without a
dependency graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by a checker."""

    checker: str
    message: str

    def __str__(self) -> str:
        return f"[{self.checker}] {self.message}"


def _replica_logs(cluster) -> Dict[int, object]:
    logs: Dict[int, object] = {}
    for node_id, node in sorted(cluster.nodes.items()):
        log = getattr(node.replica, "log", None)
        if log is not None:
            logs[node_id] = log
    return logs


def check_slot_agreement(cluster) -> List[Violation]:
    """At most one command may ever be committed per slot, cluster-wide."""
    violations: List[Violation] = []
    chosen: Dict[int, Tuple[int, Optional[int]]] = {}  # slot -> (node, uid)
    for node_id, log in sorted(_replica_logs(cluster).items()):
        for entry in log.entries():
            if not entry.committed:
                continue
            uid = getattr(entry.command, "uid", None)
            previous = chosen.get(entry.slot)
            if previous is None:
                chosen[entry.slot] = (node_id, uid)
            elif previous[1] != uid:
                violations.append(
                    Violation(
                        checker="slot_agreement",
                        message=(
                            f"slot {entry.slot}: node {previous[0]} committed command "
                            f"uid={previous[1]} but node {node_id} committed uid={uid}"
                        ),
                    )
                )
    return violations


def check_prefix_agreement(cluster) -> List[Violation]:
    """Every pair of replicas must agree on their common committed prefix."""
    violations: List[Violation] = []
    prefixes = cluster.committed_prefixes()
    node_ids = sorted(prefixes)
    for i, a_id in enumerate(node_ids):
        for b_id in node_ids[i + 1:]:
            a, b = prefixes[a_id], prefixes[b_id]
            common = min(len(a), len(b))
            for slot_index in range(common):
                if a[slot_index] != b[slot_index]:
                    violations.append(
                        Violation(
                            checker="prefix_agreement",
                            message=(
                                f"nodes {a_id} and {b_id} diverge at slot "
                                f"{slot_index + 1}: uid {a[slot_index]} vs {b[slot_index]}"
                            ),
                        )
                    )
                    break
    return violations


def check_execution_frontier(cluster) -> List[Violation]:
    """Execution must only ever cover a committed, gap-free prefix."""
    violations: List[Violation] = []
    for node_id, log in sorted(_replica_logs(cluster).items()):
        for slot in range(1, log.next_execute_slot):
            if not log.is_committed(slot):
                violations.append(
                    Violation(
                        checker="execution_frontier",
                        message=(
                            f"node {node_id} executed through slot "
                            f"{log.next_execute_slot - 1} but slot {slot} is not committed"
                        ),
                    )
                )
                break
        replica = cluster.nodes[node_id].replica
        commit_upto = getattr(replica, "commit_upto", None)
        if commit_upto is not None:
            for slot in range(1, commit_upto + 1):
                if not log.is_committed(slot):
                    violations.append(
                        Violation(
                            checker="execution_frontier",
                            message=(
                                f"node {node_id} advertises commit_upto={commit_upto} "
                                f"but slot {slot} is not committed locally"
                            ),
                        )
                    )
                    break
    return violations


def check_quorum_sanity(cluster) -> List[Violation]:
    """Phase-1 and phase-2 quorums must intersect (q1 + q2 > n)."""
    violations: List[Violation] = []
    cluster_size = len(cluster.nodes)
    for node_id, node in sorted(cluster.nodes.items()):
        quorum = getattr(node.replica, "quorum", None)
        if quorum is None:
            continue
        if quorum.n != cluster_size:
            violations.append(
                Violation(
                    checker="quorum_sanity",
                    message=(
                        f"node {node_id} sizes quorums for n={quorum.n} "
                        f"but the cluster has {cluster_size} nodes"
                    ),
                )
            )
        if quorum.phase1_size + quorum.phase2_size <= quorum.n:
            violations.append(
                Violation(
                    checker="quorum_sanity",
                    message=(
                        f"node {node_id} quorums do not intersect: "
                        f"q1={quorum.phase1_size} + q2={quorum.phase2_size} <= n={quorum.n}"
                    ),
                )
            )
    return violations


#: All log/cluster checks, in the order the scenario runner applies them.
LOG_CHECKS = (
    check_slot_agreement,
    check_prefix_agreement,
    check_execution_frontier,
    check_quorum_sanity,
)


def run_log_checks(cluster) -> List[Violation]:
    """Run every log/cluster invariant check and concatenate the violations."""
    violations: List[Violation] = []
    for check in LOG_CHECKS:
        violations.extend(check(cluster))
    return violations


# --------------------------------------------------------------------------
# EPaxos invariants (instance/dependency-graph based, no shared log).
# --------------------------------------------------------------------------

#: Instance statuses that mean "this replica learned the commit decision".
_EPAXOS_DECIDED = ("committed", "executed")


def _epaxos_replicas(cluster) -> Dict[int, object]:
    replicas: Dict[int, object] = {}
    for node_id, node in sorted(cluster.nodes.items()):
        replica = node.replica
        if getattr(replica, "graph", None) is not None and hasattr(replica, "instances"):
            replicas[node_id] = replica
    return replicas


def check_epaxos_instance_agreement(cluster) -> List[Violation]:
    """Replicas that committed an instance agree on its (seq, deps, command)."""
    violations: List[Violation] = []
    chosen: Dict[Tuple[int, int], Tuple[int, Tuple]] = {}
    for node_id, replica in sorted(_epaxos_replicas(cluster).items()):
        for instance_id, instance in sorted(replica.instances.items()):
            if instance.status not in _EPAXOS_DECIDED:
                continue
            record = (
                instance.seq,
                frozenset(instance.deps),
                getattr(instance.command, "uid", None),
            )
            previous = chosen.get(instance_id)
            if previous is None:
                chosen[instance_id] = (node_id, record)
            elif previous[1] != record:
                violations.append(
                    Violation(
                        checker="epaxos_instance_agreement",
                        message=(
                            f"instance {instance_id}: node {previous[0]} committed "
                            f"(seq={previous[1][0]}, deps={sorted(previous[1][1])}, "
                            f"uid={previous[1][2]}) but node {node_id} committed "
                            f"(seq={record[0]}, deps={sorted(record[1])}, uid={record[2]})"
                        ),
                    )
                )
    return violations


def _committed_sccs(
    nodes: Iterable[Tuple[int, int]],
    deps_of,
) -> Dict[Tuple[int, int], int]:
    """Strongly connected components of the committed dependency graph.

    Returns instance -> component id.  Edges to instances outside ``nodes``
    (uncommitted at this replica) are ignored; such instances cannot be part
    of a committed cycle.  Iterative Tarjan, same shape as the planner in
    :mod:`repro.epaxos.graph`.
    """
    node_set = set(nodes)
    indices: Dict[Tuple[int, int], int] = {}
    lowlink: Dict[Tuple[int, int], int] = {}
    on_stack: Set[Tuple[int, int]] = set()
    stack: List[Tuple[int, int]] = []
    component_of: Dict[Tuple[int, int], int] = {}
    counter = 0
    components = 0

    for root in sorted(node_set):
        if root in indices:
            continue
        work = [(root, iter(sorted(d for d in deps_of(root) if d in node_set)))]
        indices[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, dep_iter = work[-1]
            advanced = False
            for dep in dep_iter:
                if dep not in indices:
                    indices[dep] = lowlink[dep] = counter
                    counter += 1
                    stack.append(dep)
                    on_stack.add(dep)
                    work.append((dep, iter(sorted(d for d in deps_of(dep) if d in node_set))))
                    advanced = True
                    break
                if dep in on_stack:
                    lowlink[node] = min(lowlink[node], indices[dep])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component_of[member] = components
                    if member == node:
                        break
                components += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component_of


def check_epaxos_execution_order(cluster) -> List[Violation]:
    """Each replica's execution order must respect its dependency graph.

    For every executed instance X and every dependency D of X: D must be
    committed and executed on that replica, and -- unless D and X sit in the
    same strongly connected component (a dependency cycle, which executes as
    one batch) -- D must execute strictly before X.  Within one component
    the batch must execute in ``(seq, instance id)`` order, the protocol's
    deterministic cycle tie-break.  An instance may also never execute
    twice.  Recovered no-op instances participate like any other vertex:
    their preserved dependency edges are enforced, so a recovery that
    dropped an edge while no-op'ing an orphan still fails here.
    """
    violations: List[Violation] = []
    for node_id, replica in sorted(_epaxos_replicas(cluster).items()):
        graph = replica.graph
        executed = list(getattr(replica, "executed_order", []))
        position = {instance: i for i, instance in enumerate(executed)}
        if len(position) != len(executed):
            dupes = sorted({i for i in executed if executed.count(i) > 1})
            violations.append(
                Violation(
                    checker="epaxos_execution_order",
                    message=f"node {node_id} executed instances {dupes} more than once",
                )
            )
            continue
        committed = graph.committed_instances()
        scc = _committed_sccs(committed, graph.deps_of)
        for instance in executed:
            for dep in sorted(graph.deps_of(instance)):
                if dep not in committed:
                    violations.append(
                        Violation(
                            checker="epaxos_execution_order",
                            message=(
                                f"node {node_id} executed {instance} whose "
                                f"dependency {dep} is not committed locally"
                            ),
                        )
                    )
                elif dep not in position:
                    violations.append(
                        Violation(
                            checker="epaxos_execution_order",
                            message=(
                                f"node {node_id} executed {instance} whose "
                                f"dependency {dep} was never executed"
                            ),
                        )
                    )
                elif scc.get(dep) != scc.get(instance) and position[dep] > position[instance]:
                    violations.append(
                        Violation(
                            checker="epaxos_execution_order",
                            message=(
                                f"node {node_id} executed {instance} (position "
                                f"{position[instance]}) before its dependency {dep} "
                                f"(position {position[dep]})"
                            ),
                        )
                    )
        # Members of one committed cycle must execute in (seq, id) order --
        # no member can execute until every member is committed, so the
        # planner emits the whole component as one deterministically sorted
        # batch; any other relative order is a planner bug.
        members_by_component: Dict[int, List[Tuple[int, int]]] = {}
        for instance in executed:
            component = scc.get(instance)
            if component is not None:
                members_by_component.setdefault(component, []).append(instance)
        for component, members in sorted(members_by_component.items()):
            if len(members) < 2:
                continue
            by_position = sorted(members, key=lambda inst: position[inst])
            by_seq = sorted(members, key=lambda inst: (graph.seq_of(inst), inst))
            if by_position != by_seq:
                violations.append(
                    Violation(
                        checker="epaxos_execution_order",
                        message=(
                            f"node {node_id} executed dependency cycle "
                            f"{sorted(members)} out of (seq, id) order: "
                            f"ran {by_position}, expected {by_seq}"
                        ),
                    )
                )
    return violations


def _command_keys(command) -> Tuple[str, ...]:
    """Every key a committed command touches.

    A :class:`~repro.statemachine.command.CommandBatch` touches each of its
    sub-commands' keys (its ``keys()`` method); a plain command touches one;
    a recovery no-op touches none.  The per-key checks must treat a batch as
    a first-class vertex on *every* key inside it, or the dependency paths
    that run through batches look lost and per-key executed sequences skip
    the batch's writes.
    """
    keys = getattr(command, "keys", None)
    if callable(keys):
        return tuple(keys())
    key = getattr(command, "key", None)
    return () if key is None else (key,)


def _per_key_executed_uids(replica) -> Dict[str, List[Optional[int]]]:
    by_key: Dict[str, List[Optional[int]]] = {}
    for instance_id in getattr(replica, "executed_order", []):
        instance = replica.instances.get(instance_id)
        if instance is None:
            continue
        for key in _command_keys(instance.command):
            by_key.setdefault(key, []).append(getattr(instance.command, "uid", None))
    return by_key


def check_epaxos_execution_consistency(cluster) -> List[Violation]:
    """Any two replicas execute the instances of one key in the same order.

    Conflicting (same-key) instances are totally ordered by the dependency
    graph, so per key every replica's executed sequence of command uids must
    agree pairwise on the common prefix; a replica that missed late commits
    simply stops earlier.  This is the state-machine-equivalence property:
    if it holds for every key, all KV stores converge.
    """
    violations: List[Violation] = []
    sequences = {
        node_id: _per_key_executed_uids(replica)
        for node_id, replica in sorted(_epaxos_replicas(cluster).items())
    }
    node_ids = sorted(sequences)
    for i, a_id in enumerate(node_ids):
        for b_id in node_ids[i + 1:]:
            a_keys, b_keys = sequences[a_id], sequences[b_id]
            for key in sorted(set(a_keys) & set(b_keys)):
                a, b = a_keys[key], b_keys[key]
                common = min(len(a), len(b))
                for index in range(common):
                    if a[index] != b[index]:
                        violations.append(
                            Violation(
                                checker="epaxos_execution_consistency",
                                message=(
                                    f"nodes {a_id} and {b_id} diverge on key {key!r} "
                                    f"at executed position {index}: "
                                    f"uid {a[index]} vs {b[index]}"
                                ),
                            )
                        )
                        break
    return violations


def check_epaxos_conflict_ordering(cluster) -> List[Violation]:
    """Conflicting executed instances must be dependency-connected.

    The EPaxos safety argument rests on the preaccept quorums of any two
    conflicting commands intersecting, which guarantees at least one of the
    two carries a committed dependency path to the other -- that path is
    what pins their relative execution order on every replica.  A reply-
    accounting bug (e.g. counting a retransmitted vote twice) commits on an
    undersized quorum and silently loses that path; the two instances then
    commute in the executor even though they touch the same key.  This check
    exposes the lost edge directly instead of waiting for replicas to
    actually diverge: for every pair of same-key instances that some replica
    executed, the cluster-wide committed graph must contain a path between
    them (same strongly connected component counts).
    """
    violations: List[Violation] = []
    replicas = _epaxos_replicas(cluster)
    if not replicas:
        return violations

    # Union committed graph + executed set + key per instance.  Instance
    # agreement (checked separately) makes the union well-defined.
    deps: Dict[Tuple[int, int], frozenset] = {}
    by_key: Dict[str, Set[Tuple[int, int]]] = {}
    executed: Set[Tuple[int, int]] = set()
    for _, replica in sorted(replicas.items()):
        executed.update(getattr(replica, "executed_order", []))
        for instance_id, instance in sorted(replica.instances.items()):
            if instance.status not in _EPAXOS_DECIDED:
                continue
            deps.setdefault(instance_id, frozenset(instance.deps))
            for key in _command_keys(instance.command):
                by_key.setdefault(key, set()).add(instance_id)

    def deps_of(instance_id):
        return deps.get(instance_id, frozenset())

    scc = _committed_sccs(deps, deps_of)
    for key in sorted(by_key):
        members = sorted(i for i in by_key[key] if i in executed)
        if len(members) < 2:
            continue
        # Reachability over the condensed (acyclic) graph, restricted to
        # this key's instances: deps never cross keys, so the per-key
        # subgraph is self-contained.  Command batches are members of every
        # key they touch (``_command_keys``), which keeps paths that run
        # through a batch inside the subgraph.  Bitmask DP over components.
        components = sorted({scc[m] for m in members if m in scc})
        comp_index = {component: i for i, component in enumerate(components)}
        comp_members: Dict[int, List[Tuple[int, int]]] = {}
        for member in members:
            comp_members.setdefault(comp_index[scc[member]], []).append(member)
        edges: Dict[int, Set[int]] = {i: set() for i in range(len(components))}
        for member in members:
            src = comp_index[scc[member]]
            for dep in deps_of(member):
                dst = comp_index.get(scc.get(dep, -1))
                if dst is not None and dst != src:
                    edges[src].add(dst)
        # Transitive closure by bitmask DP.  Tarjan emits components in
        # reverse topological order (a dependency is always emitted before
        # its dependents and gets the smaller id), so ascending id order
        # visits every successor before the components that need it.
        reach: Dict[int, int] = {}
        for component in components:  # already sorted ascending
            index = comp_index[component]
            mask = 0
            for successor in edges[index]:
                mask |= (1 << successor) | reach[successor]
            reach[index] = mask
        for a_pos, a in enumerate(components):
            for b in components[a_pos + 1:]:
                ia, ib = comp_index[a], comp_index[b]
                if not (reach[ia] >> ib) & 1 and not (reach[ib] >> ia) & 1:
                    sample_a = min(comp_members[ia])
                    sample_b = min(comp_members[ib])
                    violations.append(
                        Violation(
                            checker="epaxos_conflict_ordering",
                            message=(
                                f"conflicting executed instances {sample_a} and "
                                f"{sample_b} on key {key!r} have no dependency "
                                f"path between them (lost conflict edge)"
                            ),
                        )
                    )
    return violations


#: All EPaxos-specific checks, in the order the scenario runner applies them.
EPAXOS_CHECKS = (
    check_epaxos_instance_agreement,
    check_epaxos_execution_order,
    check_epaxos_execution_consistency,
    check_epaxos_conflict_ordering,
)


def run_epaxos_checks(cluster) -> List[Violation]:
    """Run every EPaxos invariant check and concatenate the violations."""
    violations: List[Violation] = []
    for check in EPAXOS_CHECKS:
        violations.extend(check(cluster))
    return violations
