"""WGL-style linearizability checking of recorded KV histories.

The checker decides whether a recorded invocation/response history could
have been produced by a single atomic register per key.  It implements the
Wing & Gong / Lowe search: repeatedly pick a *minimal* operation (one not
real-time-preceded by any other unlinearized operation), apply it to the
model register, and backtrack on mismatch.  Visited ``(linearized-set,
register-state)`` pairs are memoized, which keeps the search polynomial in
practice for the low-concurrency histories closed-loop clients generate.

Two properties of the recorded histories are exploited:

* Keys are independent, so the history is checked per key
  (:meth:`repro.checkers.history.History.per_key`); a violation on any key
  is a violation of the whole store.
* Pending operations (invoked, never completed) may have taken effect at
  any point after their invocation -- or never.  The search therefore
  succeeds as soon as every *completed* operation is linearized.

Precedence combines real time with per-client program order: operation A
precedes B when A's response strictly precedes B's invocation, or when the
same closed-loop client issued A before B (response and next invocation
share a timestamp in the simulator, so strict real-time comparison alone
would lose program order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.checkers.history import History, Operation
from repro.checkers.invariants import Violation

#: Register value meaning "key absent".
_ABSENT = None


@dataclass
class _Model:
    """Per-key sub-history compiled for the search.

    Real-time and program-order precedence are kept separate: the real-time
    mask is *monotone* in the invocation-sorted index (the accumulated
    returned-operations mask only grows), which lets the search stop its
    candidate scan at the first real-time-blocked operation -- every later
    operation is blocked by the same unlinearized predecessor.
    """

    ops: List[Operation]
    preds: List[int]          # full precedence bitmask of op i (rt | program order)
    rt_preds: List[int]       # real-time-only mask; monotone in i
    po_pred: List[int]        # index of same-client predecessor, or -1
    completed_mask: int       # bits of operations that completed


def _compile(ops: List[Operation]) -> _Model:
    """Precompute precedence bitmasks for one key's operations."""
    indexed = sorted(ops, key=lambda op: (op.invoked_at, op.client_id, op.request_id))
    n = len(indexed)
    rt_preds = [0] * n
    po_pred = [-1] * n
    completed_mask = 0

    # Real-time precedence: sweep invocations in order, accumulating the
    # bitmask of operations whose response strictly precedes the invocation.
    returns = sorted(
        ((op.completed_at, i) for i, op in enumerate(indexed) if op.completed_at is not None),
        key=lambda pair: pair[0],
    )
    returned_mask = 0
    pointer = 0
    for i, op in enumerate(indexed):
        while pointer < len(returns) and returns[pointer][0] < op.invoked_at:
            returned_mask |= 1 << returns[pointer][1]
            pointer += 1
        rt_preds[i] = returned_mask
        if op.completed_at is not None:
            completed_mask |= 1 << i

    # Program order: a client's previous completed operation precedes its
    # next one even when the timestamps coincide (closed-loop clients issue
    # the next request in the same simulator event as the reply).
    last_by_client: Dict[int, int] = {}
    for i, op in enumerate(indexed):
        prev = last_by_client.get(op.client_id)
        if prev is not None:
            prev_op = indexed[prev]
            if prev_op.completed_at is not None and prev_op.completed_at <= op.invoked_at:
                po_pred[i] = prev
        last_by_client[op.client_id] = i

    preds = [
        rt_preds[i] | (1 << po_pred[i] if po_pred[i] >= 0 else 0) for i in range(n)
    ]
    return _Model(
        ops=indexed,
        preds=preds,
        rt_preds=rt_preds,
        po_pred=po_pred,
        completed_mask=completed_mask,
    )


def _apply(op: Operation, value: Optional[str]) -> Tuple[bool, Optional[str]]:
    """Apply ``op`` to the model register; returns (consistent, new_value)."""
    if op.op == "put":
        return True, op.value
    if op.op == "delete":
        return True, _ABSENT
    # GET: pending reads have no observable output and are skipped by the
    # caller; completed reads must have observed the current register value.
    return op.output == value, value


def _search(model: _Model, max_states: int) -> Tuple[bool, Optional[str]]:
    """Run the WGL search; returns (linearizable, failure_detail).

    Two scan cuts keep the per-frame candidate walk to a small window around
    the linearization frontier without changing which candidates are tried
    (both only skip candidates the full scan would reject):

    * the scan starts at the lowest unlinearized index -- everything below
      is already in ``mask``;
    * the scan stops at the first candidate whose *real-time* predecessors
      are not all linearized: ``rt_preds`` is monotone in the invocation
      order, so every later candidate is blocked by the same predecessor.
    """
    n = len(model.ops)
    if n == 0:
        return True, None
    target = model.completed_mask
    full = (1 << n) - 1
    rt_preds = model.rt_preds
    po_pred = model.po_pred
    ops = model.ops
    seen = set()
    # Each stack frame: (linearized_mask, register_value, next_candidate)
    stack: List[List] = [[0, _ABSENT, 0]]
    states = 0
    deepest = 0
    while stack:
        frame = stack[-1]
        mask, value, candidate = frame
        if mask & target == target:
            return True, None
        unlinearized = ~mask & full
        if candidate < n:
            # Skip the fully-linearized prefix in O(1).
            lowest = (unlinearized & -unlinearized).bit_length() - 1
            if lowest > candidate:
                candidate = lowest
        if candidate >= n or rt_preds[candidate] & unlinearized:
            # Real-time-blocked: rt_preds is monotone, so every candidate
            # from here on is blocked too -- the frame is exhausted.
            stack.pop()
            continue
        frame[2] = candidate + 1
        bit = 1 << candidate
        if mask & bit:
            continue
        prev = po_pred[candidate]
        if prev >= 0 and not (mask >> prev) & 1:
            continue  # same-client predecessor not linearized yet
        op = ops[candidate]
        if op.pending and op.op == "get":
            continue  # a read that never returned has no effect
        ok, new_value = _apply(op, value)
        if not ok:
            deepest = max(deepest, bin(mask).count("1"))
            continue
        state = (mask | bit, new_value)
        if state in seen:
            continue
        seen.add(state)
        states += 1
        if states > max_states:
            return False, (
                f"search aborted after {max_states} states "
                f"(history too concurrent to decide)"
            )
        stack.append([mask | bit, new_value, 0])

    detail = (
        f"no linearization order exists ({n} ops, "
        f"{bin(target).count('1')} completed, stuck after {deepest} ops)"
    )
    return False, detail


class LinearizabilityChecker:
    """Checks that the recorded KV history is linearizable, key by key."""

    name = "linearizability"

    def __init__(self, max_states_per_key: int = 2_000_000) -> None:
        self._max_states = max_states_per_key

    def check(self, history: History) -> List[Violation]:
        violations: List[Violation] = []
        for key, ops in sorted(history.per_key().items()):
            model = _compile(ops)
            ok, detail = _search(model, self._max_states)
            if not ok:
                completed = [op for op in model.ops if not op.pending]
                violations.append(
                    Violation(
                        checker=self.name,
                        message=(
                            f"history of key {key!r} is not linearizable: {detail}; "
                            f"{len(completed)} completed / {len(model.ops)} total ops"
                        ),
                    )
                )
        return violations


def check_linearizability(history: History, max_states_per_key: int = 2_000_000) -> List[Violation]:
    """Convenience wrapper used by the scenario runner and tests."""
    return LinearizabilityChecker(max_states_per_key).check(history)
