"""Cluster substrate: simulated nodes, topology presets, fault schedules, builder.

A :class:`~repro.cluster.node.SimNode` hosts a protocol replica and models the
node's CPU as a single-server queue: every received and sent message (and
every command execution) costs processing time, so a node that must handle
many messages per consensus round -- the Paxos leader -- saturates first.
This is the same bottleneck structure the paper measures on EC2 and models
analytically in its Section 6.
"""

from repro.cluster.cpu import NodeCPUModel
from repro.cluster.node import SimNode
from repro.cluster.topologies import (
    lan_topology,
    wan_topology,
    paper_wan_regions,
    hierarchical_topology,
    planet_topology,
    planet_zone_layout,
)
from repro.cluster.faults import FaultEvent, FaultSchedule
from repro.cluster.builder import Cluster, ClusterBuilder, build_cluster

__all__ = [
    "NodeCPUModel",
    "SimNode",
    "lan_topology",
    "wan_topology",
    "paper_wan_regions",
    "hierarchical_topology",
    "planet_topology",
    "planet_zone_layout",
    "FaultEvent",
    "FaultSchedule",
    "Cluster",
    "ClusterBuilder",
    "build_cluster",
]
