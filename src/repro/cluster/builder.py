"""Cluster builder: wires simulator, network, nodes, replicas and clients.

``ClusterBuilder`` (or the convenience :func:`build_cluster`) assembles a
fully configured simulated deployment of one of the three protocols, plus
closed-loop benchmark clients and an optional fault schedule.  The returned
:class:`Cluster` is what examples, tests and the benchmark harness run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.cluster.cpu import NodeCPUModel
from repro.cluster.faults import FaultKind, FaultSchedule
from repro.cluster.node import ShardReplicaHost, SimNode
from repro.cluster.topologies import lan_topology
from repro.core.config import PigPaxosConfig
from repro.core.replica import PigPaxosReplica
from repro.epaxos.replica import EPaxosReplica
from repro.errors import ConfigurationError
from repro.net.faults import NetworkFaults
from repro.net.network import SimNetwork
from repro.net.sizes import SizeModel
from repro.net.topology import Topology
from repro.overlay.config import OverlayConfig, build_overlay
from repro.paxos.replica import MultiPaxosReplica
from repro.protocol.config import DEFAULT_RECOVERY_TIMEOUT, ProtocolConfig
from repro.shard.addressing import (
    SHARD_ENDPOINT_STRIDE,
    ShardAwareLatency,
    physical_node,
    shard_endpoint,
)
from repro.shard.router import ShardMap, ShardRouter, round_robin_leaders
from repro.sim.engine import Simulator
from repro.workload.client import ClosedLoopClient
from repro.workload.spec import WorkloadSpec

#: Client endpoint ids start here so they never collide with node ids.
CLIENT_ID_BASE = 1000

PROTOCOLS = ("paxos", "pigpaxos", "epaxos")


class ShardGroupView:
    """One shard's consensus group, viewed as a mini-cluster for the checkers.

    Exposes exactly the surface the invariant checkers consume from
    :class:`Cluster`: a ``nodes`` mapping (insertion-ordered by ascending
    member endpoint id) whose values carry ``.replica`` and ``.crashed``,
    plus :meth:`committed_prefixes`.  Each shard's group is checked in
    isolation -- cross-shard consistency is the per-key linearizability
    checker's job, which needs no adapter because keys never span shards.
    """

    def __init__(self, shard: int, nodes: Dict[int, object]) -> None:
        self.shard = shard
        self.nodes = nodes

    def committed_prefixes(self) -> Dict[int, List[Optional[int]]]:
        prefixes: Dict[int, List[Optional[int]]] = {}
        # lint: ok(no-unordered-iteration) nodes insertion order is ascending member endpoint id (built from sorted topology.node_ids)
        for node_id, node in self.nodes.items():
            log = getattr(node.replica, "log", None)
            if log is not None:
                prefixes[node_id] = log.committed_prefix_uids()
        return prefixes

    def leader_id(self) -> Optional[int]:
        """Endpoint id of this group's current leader (Paxos family)."""
        # lint: ok(no-unordered-iteration) first match must be the lowest member endpoint id; insertion order is ascending
        for node_id, node in self.nodes.items():
            if getattr(node.replica, "is_leader", False) and not node.crashed:
                return node_id
        return None


class Cluster:
    """A fully wired simulated deployment ready to run."""

    def __init__(
        self,
        protocol: str,
        sim: Simulator,
        network: SimNetwork,
        topology: Topology,
        nodes: Dict[int, SimNode],
        clients: List[ClosedLoopClient],
        fault_schedule: Optional[FaultSchedule] = None,
        history_recorder=None,
        num_shards: int = 1,
        shard_instances: Optional[List[ShardReplicaHost]] = None,
        router: Optional[ShardRouter] = None,
    ) -> None:
        self.protocol = protocol
        self.sim = sim
        self.network = network
        self.topology = topology
        self.nodes = nodes
        self.clients = clients
        self.fault_schedule = fault_schedule
        self.history_recorder = history_recorder
        self.num_shards = num_shards
        #: Shard >= 1 replica instances, ordered shard-major then by host
        #: node id.  Empty for unsharded clusters (shard 0 lives on the
        #: SimNodes themselves).
        self.shard_instances: List[ShardReplicaHost] = shard_instances or []
        self.router = router
        self._started = False

    # ------------------------------------------------------------------ running
    def start(self) -> None:
        """Start replicas, clients and the fault schedule (idempotent)."""
        if self._started:
            return
        self._started = True
        # lint: ok(no-unordered-iteration) nodes is built iterating topology.node_ids (sorted); insertion order IS ascending node-id start order
        for node in self.nodes.values():
            node.start()
        for instance in self.shard_instances:
            instance.start()
        for client in self.clients:
            client.start()
        if self.fault_schedule is not None:
            self._arm_faults(self.fault_schedule)

    def run(self, duration: float) -> float:
        """Run the simulation until ``duration`` seconds of virtual time."""
        self.start()
        return self.sim.run(until=duration)

    def _arm_faults(self, schedule: FaultSchedule) -> None:
        for event in schedule:
            self.sim.schedule_at(event.at, self.apply_fault, event)

    def apply_fault(self, event) -> None:
        """Apply one :class:`~repro.cluster.faults.FaultEvent` right now.

        The single dispatch point for scripted faults; the scenario engine
        routes its static events through here too.
        """
        if event.kind is FaultKind.CRASH:
            self.nodes[event.node].crash()
        elif event.kind is FaultKind.RECOVER:
            self.nodes[event.node].recover()
        elif event.kind is FaultKind.SLUGGISH:
            self.nodes[event.node].set_sluggish(event.factor)
        elif event.kind is FaultKind.SEVER_LINK:
            self.network.faults.sever_link(event.node, event.peer)
        elif event.kind is FaultKind.HEAL_LINK:
            self.network.faults.heal_link(event.node, event.peer)
        elif event.kind is FaultKind.PARTITION:
            self.network.faults.partition(*event.groups)
        elif event.kind is FaultKind.HEAL_PARTITION:
            self.network.faults.heal_partition()

    # ------------------------------------------------------------------ queries
    @property
    def node_ids(self) -> Sequence[int]:
        return self.topology.node_ids

    def replicas(self) -> Dict[int, object]:
        # lint: ok(no-unordered-iteration) nodes insertion order is ascending node id (built from sorted topology.node_ids)
        return {node_id: node.replica for node_id, node in self.nodes.items()}

    def leader_id(self) -> Optional[int]:
        """The id of the node currently acting as leader (Paxos/PigPaxos).

        In a sharded cluster this is shard 0's leader -- the group hosted
        directly on the physical nodes; use :meth:`shard_views` (or
        :meth:`shard_leader_endpoint`) for the other groups.
        """
        # lint: ok(no-unordered-iteration) first match must be the lowest node id; insertion order is ascending node id
        for node_id, node in self.nodes.items():
            if getattr(node.replica, "is_leader", False) and not node.crashed:
                return node_id
        return None

    # ------------------------------------------------------------------ shards
    def shard_views(self) -> List[ShardGroupView]:
        """One checker-facing :class:`ShardGroupView` per consensus group."""
        views = [ShardGroupView(0, dict(self.nodes))]
        for shard in range(1, self.num_shards):
            members = {
                instance.endpoint_id: instance
                for instance in self.shard_instances
                if instance.shard == shard
            }
            views.append(ShardGroupView(shard, members))
        return views

    def shard_leader_endpoint(self, shard: int) -> Optional[int]:
        """The endpoint id of ``shard``'s current leader (Paxos family)."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        return self.shard_views()[shard].leader_id()

    def all_replica_hosts(self) -> List[object]:
        """Every replica-hosting endpoint, shard 0 (physical nodes) first.

        Order is deterministic: ascending node id, then shard instances
        shard-major by host node id.  Identical to ``nodes.values()`` for
        unsharded clusters.
        """
        # lint: ok(no-unordered-iteration) nodes insertion order is ascending node id (built from sorted topology.node_ids)
        hosts: List[object] = list(self.nodes.values())
        hosts.extend(self.shard_instances)
        return hosts

    def committed_prefixes(self) -> Dict[int, List[Optional[int]]]:
        """Gap-free committed command uids per replica (agreement checks)."""
        prefixes: Dict[int, List[Optional[int]]] = {}
        # lint: ok(no-unordered-iteration) nodes insertion order is ascending node id (built from sorted topology.node_ids)
        for node_id, node in self.nodes.items():
            log = getattr(node.replica, "log", None)
            if log is not None:
                prefixes[node_id] = log.committed_prefix_uids()
        return prefixes

    def logs_agree(self) -> bool:
        """True when every pair of replicas agrees on the common committed prefix."""
        from repro.checkers.invariants import check_prefix_agreement

        return not check_prefix_agreement(self)

    def total_completed_requests(self) -> int:
        return sum(client.stats.received for client in self.clients)

    def crash_node(self, node_id: int) -> None:
        self.nodes[node_id].crash()

    def recover_node(self, node_id: int) -> None:
        self.nodes[node_id].recover()


@dataclass
class ClusterBuilder:
    """Fluent builder for :class:`Cluster` instances.

    Example::

        cluster = (ClusterBuilder()
                   .protocol("pigpaxos")
                   .nodes(25)
                   .relay_groups(3)
                   .clients(100)
                   .seed(7)
                   .build())
        cluster.run(5.0)
    """

    _protocol: str = "pigpaxos"
    _num_nodes: int = 5
    _topology: Optional[Topology] = None
    _protocol_config: Optional[ProtocolConfig] = None
    _cpu_model: NodeCPUModel = field(default_factory=NodeCPUModel)
    _seed: int = 0
    _num_clients: int = 10
    _workload: WorkloadSpec = field(default_factory=WorkloadSpec.paper_default)
    _fault_schedule: Optional[FaultSchedule] = None
    _client_start_time: float = 0.05
    _client_timeout: float = 2.0
    _num_relay_groups: Optional[int] = None
    _use_region_groups: bool = False
    _overlay_config: Optional[OverlayConfig] = None
    _drop_probability: float = 0.0
    _size_model: SizeModel = field(default_factory=SizeModel)
    _history_recorder: Optional[object] = None
    _num_shards: int = 1

    # ------------------------------------------------------------------ fluent setters
    def protocol(self, name: str) -> "ClusterBuilder":
        if name not in PROTOCOLS:
            raise ConfigurationError(f"unknown protocol {name!r}; expected one of {PROTOCOLS}")
        self._protocol = name
        return self

    def nodes(self, count: int) -> "ClusterBuilder":
        self._num_nodes = count
        return self

    def topology(self, topology: Topology) -> "ClusterBuilder":
        self._topology = topology
        return self

    def protocol_config(self, config: ProtocolConfig) -> "ClusterBuilder":
        self._protocol_config = config
        return self

    def cpu_model(self, model: NodeCPUModel) -> "ClusterBuilder":
        self._cpu_model = model
        return self

    def seed(self, seed: int) -> "ClusterBuilder":
        self._seed = seed
        return self

    def clients(self, count: int, workload: Optional[WorkloadSpec] = None) -> "ClusterBuilder":
        self._num_clients = count
        if workload is not None:
            self._workload = workload
        return self

    def workload(self, spec: WorkloadSpec) -> "ClusterBuilder":
        self._workload = spec
        return self

    def faults(self, schedule: FaultSchedule) -> "ClusterBuilder":
        self._fault_schedule = schedule
        return self

    def relay_groups(self, count: int) -> "ClusterBuilder":
        self._num_relay_groups = count
        return self

    def region_relay_groups(self, enabled: bool = True) -> "ClusterBuilder":
        self._use_region_groups = enabled
        return self

    def overlay(self, config) -> "ClusterBuilder":
        """Choose the wide-cast fan-out overlay (Paxos and EPaxos).

        Accepts an :class:`~repro.overlay.config.OverlayConfig`, a kind
        string (``"direct"``/``"relay"``/``"thrifty"``) or a mapping of
        OverlayConfig fields.  Takes precedence over
        ``ProtocolConfig.overlay``.  PigPaxos *is* the relay overlay and is
        configured via :class:`~repro.core.config.PigPaxosConfig` instead.
        """
        self._overlay_config = OverlayConfig.coerce(config)
        return self

    def message_drop_probability(self, probability: float) -> "ClusterBuilder":
        self._drop_probability = probability
        return self

    def client_start_time(self, start_time: float) -> "ClusterBuilder":
        self._client_start_time = start_time
        return self

    def history_recorder(self, recorder) -> "ClusterBuilder":
        """Record every client operation into ``recorder`` (see repro.checkers)."""
        self._history_recorder = recorder
        return self

    def client_timeout(self, timeout: float) -> "ClusterBuilder":
        """Client request timeout before re-sending to a rotated target."""
        self._client_timeout = timeout
        return self

    def shards(self, count: int) -> "ClusterBuilder":
        """Split the keyspace across ``count`` independent consensus groups.

        Every physical node hosts one replica per group; group leaders are
        spread round-robin across the nodes and clients route each command
        by its key (see :mod:`repro.shard`).  ``1`` (the default) is the
        unsharded deployment, byte-identical to the historical behaviour.
        """
        if count < 1:
            raise ConfigurationError(f"shards must be >= 1, got {count}")
        self._num_shards = count
        return self

    # ------------------------------------------------------------------ build
    def build(self) -> Cluster:
        topology = self._topology or lan_topology(self._num_nodes)
        num_shards = self._num_shards
        if num_shards > 1:
            self._validate_sharding(topology)
        sim = Simulator(seed=self._seed)
        faults = NetworkFaults(drop_probability=self._drop_probability)
        latency_override = None
        if num_shards > 1:
            # Faults and latency are properties of the physical fabric:
            # fold every shard endpoint onto its host node before link,
            # partition and delay decisions.
            faults.endpoint_key = physical_node
            latency_override = ShardAwareLatency(topology.latency)
        network = SimNetwork(
            sim,
            topology,
            size_model=self._size_model,
            faults=faults,
            latency_model=latency_override,
        )

        node_ids = list(topology.node_ids)
        leaders = round_robin_leaders(num_shards, node_ids) if num_shards > 1 else None
        nodes: Dict[int, SimNode] = {}
        for node_id in node_ids:
            node = SimNode(
                node_id=node_id,
                sim=sim,
                network=network,
                cpu=self._cpu_model,
                all_nodes=topology.node_ids,
            )
            if leaders is None:
                node.host(self._make_replica(topology))
            else:
                node.host(self._make_replica(topology, initial_leader=leaders[0]))
            nodes[node_id] = node

        shard_instances: List[ShardReplicaHost] = []
        router: Optional[ShardRouter] = None
        if num_shards > 1:
            region_map = topology.region_map()
            zone_map = topology.zone_map()
            groups: List[Sequence[int]] = [tuple(node_ids)]
            for shard in range(1, num_shards):
                members = tuple(shard_endpoint(shard, n) for n in node_ids)
                shard_regions = {
                    shard_endpoint(shard, n): region_map[n]
                    for n in node_ids
                    if n in region_map
                }
                shard_zones = {
                    shard_endpoint(shard, n): zone_map[n]
                    for n in node_ids
                    if n in zone_map
                }
                for node_id in node_ids:
                    instance = ShardReplicaHost(
                        host=nodes[node_id], shard=shard, all_nodes=members
                    )
                    instance.host_replica(
                        self._make_replica(
                            topology,
                            initial_leader=leaders[shard],
                            region_of=shard_regions,
                            zone_of=shard_zones,
                        )
                    )
                    nodes[node_id].add_shard_sibling(instance)
                    shard_instances.append(instance)
                groups.append(members)
            router = ShardRouter(
                ShardMap(num_shards, self._workload.num_keys), groups, leaders
            )

        target_policy = "random" if self._protocol == "epaxos" else "leader"
        clients: List[ClosedLoopClient] = []
        for index in range(self._num_clients):
            client = ClosedLoopClient(
                client_id=CLIENT_ID_BASE + index,
                sim=sim,
                network=network,
                spec=self._workload,
                targets=list(topology.node_ids),
                target_policy=target_policy,
                request_timeout=self._client_timeout,
                start_time=self._client_start_time,
                recorder=self._history_recorder,
                router=router,
            )
            clients.append(client)

        return Cluster(
            protocol=self._protocol,
            sim=sim,
            network=network,
            topology=topology,
            nodes=nodes,
            clients=clients,
            fault_schedule=self._fault_schedule,
            history_recorder=self._history_recorder,
            num_shards=num_shards,
            shard_instances=shard_instances,
            router=router,
        )

    def _validate_sharding(self, topology: Topology) -> None:
        """Reject builder settings that cannot host multiple shards.

        The compatibility contract for ``shards > 1``:

        * Key-range routing needs at least one key per shard.
        * Shard endpoint ids are ``shard * SHARD_ENDPOINT_STRIDE + node``,
          so node ids must sit below the stride.
        * Leader placement is per-group round-robin, so an explicit
          ``initial_leader`` override is contradictory and refused.
        * Relay overlays (PigPaxos and the relay/thrifty overlay configs)
          are *supported* -- each shard instance gets its own overlay with a
          shard-qualified region map -- but an explicitly requested
          ``relay_groups`` may not exceed ``num_nodes - 1``, since every
          group needs at least one follower.
        """
        node_ids = list(topology.node_ids)
        if self._num_shards > self._workload.num_keys:
            raise ConfigurationError(
                f"cannot split {self._workload.num_keys} keys across "
                f"{self._num_shards} shards; shards must be <= workload num_keys"
            )
        if min(node_ids) < 0 or max(node_ids) >= SHARD_ENDPOINT_STRIDE:
            raise ConfigurationError(
                f"sharding requires node ids in [0, {SHARD_ENDPOINT_STRIDE}); "
                f"got range [{min(node_ids)}, {max(node_ids)}]"
            )
        config = self._protocol_config
        if (
            config is not None
            and self._protocol != "epaxos"
            and config.initial_leader not in (None, 0)
        ):
            raise ConfigurationError(
                "initial_leader cannot be combined with shards > 1: leader "
                "placement is per-group round-robin across the node set"
            )
        # Only the *explicit* builder-level request is rejected here: a
        # config-level count (PigPaxosConfig.num_relay_groups, overlay
        # num_groups) may simply be the dataclass default, and the overlay
        # planner clamps it to the follower count exactly as it does on
        # unsharded clusters -- sharding must not be stricter than the
        # machinery it multiplies.
        relay_groups = self._num_relay_groups
        if relay_groups is not None and relay_groups > len(node_ids) - 1:
            raise ConfigurationError(
                f"relay_groups={relay_groups} needs at least one follower per "
                f"group, but a sharded group on {len(node_ids)} nodes has only "
                f"{len(node_ids) - 1} followers"
            )

    def _resolve_overlay_config(self, config: Optional[ProtocolConfig]) -> Optional[OverlayConfig]:
        """Builder-level overlay choice wins over ProtocolConfig.overlay."""
        if self._overlay_config is not None:
            return self._overlay_config
        if config is not None and config.overlay is not None:
            return config.overlay
        return None

    def _make_replica(
        self,
        topology: Topology,
        initial_leader: Optional[int] = None,
        region_of: Optional[Dict[int, str]] = None,
        zone_of: Optional[Dict[int, str]] = None,
    ):
        """Construct one replica instance.

        ``initial_leader``, ``region_of`` and ``zone_of`` are the sharding
        hooks: a sharded build passes each group's round-robin leader
        endpoint and region/zone maps re-keyed to the group's endpoint ids.
        ``None`` (the unsharded path) preserves the historical behaviour
        exactly, including the shared-config-object semantics.
        """
        regions = region_of if region_of is not None else topology.region_map()
        zones = zone_of if zone_of is not None else topology.zone_map()
        if self._protocol == "paxos":
            config = self._protocol_config or ProtocolConfig()
            overlay_config = self._resolve_overlay_config(config)
            if overlay_config is not None and overlay_config.kind == "relay":
                raise ConfigurationError(
                    "paxos with a relay overlay is PigPaxos; use protocol "
                    "'pigpaxos' (configured via PigPaxosConfig) instead"
                )
            if (
                config.recovery_timeout not in (None, DEFAULT_RECOVERY_TIMEOUT)
                or config.leader_retry_timeout is not None
            ):
                # The shared class default counts as "unset" for the Paxos
                # family; only a deliberate override is an error.
                raise ConfigurationError(
                    "recovery_timeout and leader_retry_timeout are EPaxos "
                    "knobs (PigPaxos has its own leader retry); plain paxos "
                    "would silently ignore them"
                )
            if initial_leader is not None:
                config = replace(config, initial_leader=initial_leader)
            overlay = build_overlay(overlay_config)
            return MultiPaxosReplica(config=config, overlay=overlay)
        if self._protocol == "pigpaxos":
            config = self._protocol_config
            if config is None or not isinstance(config, PigPaxosConfig):
                config = PigPaxosConfig()
            if self._overlay_config is not None or config.overlay is not None:
                raise ConfigurationError(
                    "pigpaxos is the relay overlay; tune it via PigPaxosConfig "
                    "(num_relay_groups, relay_timeout, ...) rather than an "
                    "overlay config"
                )
            if self._num_relay_groups is not None:
                config.num_relay_groups = self._num_relay_groups
            if self._use_region_groups:
                config.use_region_groups = True
            if initial_leader is not None:
                config = replace(config, initial_leader=initial_leader)
            return PigPaxosReplica(config=config, region_of=regions, zone_of=zones)
        if self._protocol == "epaxos":
            # EPaxos is leaderless: ``initial_leader`` is deliberately
            # ignored (sharded groups balance through the clients'
            # random-target policy instead).
            config = self._protocol_config
            overlay_config = self._resolve_overlay_config(config)
            overlay = build_overlay(overlay_config, region_of=regions, zone_of=zones)
            if config is None:
                return EPaxosReplica(overlay=overlay)
            # EPaxos consumes only the shared session_window, overlay,
            # recovery_timeout, leader_retry_timeout and batching knobs;
            # reject a config that sets anything else rather than silently
            # ignore it.
            if type(config) is not ProtocolConfig or config != ProtocolConfig(
                session_window=config.session_window,
                overlay=config.overlay,
                recovery_timeout=config.recovery_timeout,
                leader_retry_timeout=config.leader_retry_timeout,
                batch_max_commands=config.batch_max_commands,
                batch_max_delay=config.batch_max_delay,
                pipeline_depth=config.pipeline_depth,
            ):
                raise ConfigurationError(
                    "epaxos only consumes ProtocolConfig.session_window, "
                    ".overlay, .recovery_timeout, .leader_retry_timeout and "
                    "the batching knobs; other protocol-config fields would "
                    "be silently ignored"
                )
            return EPaxosReplica(
                session_window=config.session_window,
                overlay=overlay,
                recovery_timeout=config.recovery_timeout,
                leader_retry_timeout=config.leader_retry_timeout,
                batch_max_commands=config.batch_max_commands,
                batch_max_delay=config.batch_max_delay,
                pipeline_depth=config.pipeline_depth,
            )
        raise ConfigurationError(f"unknown protocol {self._protocol!r}")


def build_cluster(
    protocol: str = "pigpaxos",
    num_nodes: int = 5,
    num_clients: int = 10,
    seed: int = 0,
    relay_groups: Optional[int] = None,
    workload: Optional[WorkloadSpec] = None,
    topology: Optional[Topology] = None,
    protocol_config: Optional[ProtocolConfig] = None,
    cpu_model: Optional[NodeCPUModel] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    use_region_groups: bool = False,
    overlay=None,
    shards: int = 1,
) -> Cluster:
    """One-call convenience wrapper around :class:`ClusterBuilder`."""
    builder = ClusterBuilder().protocol(protocol).nodes(num_nodes).clients(num_clients).seed(seed)
    if shards != 1:
        builder.shards(shards)
    if relay_groups is not None:
        builder.relay_groups(relay_groups)
    if overlay is not None:
        builder.overlay(overlay)
    if workload is not None:
        builder.workload(workload)
    if topology is not None:
        builder.topology(topology)
    if protocol_config is not None:
        builder.protocol_config(protocol_config)
    if cpu_model is not None:
        builder.cpu_model(cpu_model)
    if fault_schedule is not None:
        builder.faults(fault_schedule)
    if use_region_groups:
        builder.region_relay_groups(True)
    return builder.build()
