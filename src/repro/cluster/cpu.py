"""Per-node CPU cost model.

The simulator's stand-in for the paper's m5a.large instances.  A node is a
single-server queue; the costs below are the service times of the work items
that queue on it.  The defaults were calibrated (see EXPERIMENTS.md) so that
the simulated 25-node Multi-Paxos cluster saturates around the ~2,000 req/s
the paper reports and the leader's per-request cost is dominated by the
2(N-1) messages it exchanges -- the exact bottleneck structure of the
paper's analytical model (Section 6.1).

``epaxos_bookkeeping_cost`` deserves a note: a pure message-count model makes
EPaxos look artificially good because its messages are spread over all nodes.
The paper (and the authors' earlier Paxi study) attribute EPaxos' poor
throughput to per-command dependency bookkeeping and conflict resolution
performed at *every* node; this constant stands in for that work and is
calibrated against the published EPaxos saturation points.  The substitution
is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NodeCPUModel:
    """Service times (seconds) for the work items processed by a node."""

    recv_per_message: float = 7.5e-6
    send_per_message: float = 7.5e-6
    per_byte: float = 1.0e-9
    execute_per_command: float = 20e-6
    graph_per_vertex: float = 8e-6
    client_request_extra: float = 25e-6
    epaxos_bookkeeping_cost: float = 550e-6

    def __post_init__(self) -> None:
        for name in (
            "recv_per_message",
            "send_per_message",
            "per_byte",
            "execute_per_command",
            "graph_per_vertex",
            "client_request_extra",
            "epaxos_bookkeeping_cost",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    # ------------------------------------------------------------------ costs
    def receive_cost(self, size_bytes: int, is_client_request: bool = False) -> float:
        cost = self.recv_per_message + self.per_byte * size_bytes
        if is_client_request:
            cost += self.client_request_extra
        return cost

    def send_cost(self, size_bytes: int) -> float:
        return self.send_per_message + self.per_byte * size_bytes

    def execution_cost(self, commands: int) -> float:
        return self.execute_per_command * commands

    def graph_cost(self, vertices: int) -> float:
        return self.graph_per_vertex * vertices

    def scaled(self, factor: float) -> "NodeCPUModel":
        """A uniformly slower/faster copy of this model (sluggish-node faults)."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return NodeCPUModel(
            recv_per_message=self.recv_per_message * factor,
            send_per_message=self.send_per_message * factor,
            per_byte=self.per_byte * factor,
            execute_per_command=self.execute_per_command * factor,
            graph_per_vertex=self.graph_per_vertex * factor,
            client_request_extra=self.client_request_extra * factor,
            epaxos_bookkeeping_cost=self.epaxos_bookkeeping_cost * factor,
        )
