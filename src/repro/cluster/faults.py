"""Fault schedules: scripted crashes, recoveries and slowdowns.

The paper's Figure 13 crashes a node in one relay group for a fixed window
and samples throughput over one-second intervals around it; a
:class:`FaultSchedule` expresses exactly that kind of script and the cluster
builder arms it on the simulator before the run starts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    CRASH = "crash"
    RECOVER = "recover"
    SLUGGISH = "sluggish"
    SEVER_LINK = "sever_link"
    HEAL_LINK = "heal_link"
    PARTITION = "partition"
    HEAL_PARTITION = "heal_partition"


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault, applied at virtual time ``at``."""

    at: float
    kind: FaultKind
    node: Optional[int] = None
    peer: Optional[int] = None
    factor: float = 1.0
    groups: tuple = ()

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("fault time must be non-negative")


class FaultSchedule:
    """A list of fault events, built fluently and applied by the cluster builder."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def crash(self, node: int, at: float) -> "FaultSchedule":
        self.events.append(FaultEvent(at=at, kind=FaultKind.CRASH, node=node))
        return self

    def recover(self, node: int, at: float) -> "FaultSchedule":
        self.events.append(FaultEvent(at=at, kind=FaultKind.RECOVER, node=node))
        return self

    def crash_window(self, node: int, start: float, end: float) -> "FaultSchedule":
        """Crash ``node`` at ``start`` and recover it at ``end`` (Figure 13's shape)."""
        if end <= start:
            raise ConfigurationError("crash window end must be after start")
        return self.crash(node, start).recover(node, end)

    def sluggish(self, node: int, at: float, factor: float, until: Optional[float] = None) -> "FaultSchedule":
        self.events.append(FaultEvent(at=at, kind=FaultKind.SLUGGISH, node=node, factor=factor))
        if until is not None:
            self.events.append(FaultEvent(at=until, kind=FaultKind.SLUGGISH, node=node, factor=1.0))
        return self

    def sever_link(self, a: int, b: int, at: float, until: Optional[float] = None) -> "FaultSchedule":
        self.events.append(FaultEvent(at=at, kind=FaultKind.SEVER_LINK, node=a, peer=b))
        if until is not None:
            self.events.append(FaultEvent(at=until, kind=FaultKind.HEAL_LINK, node=a, peer=b))
        return self

    def partition(self, groups, at: float, until: Optional[float] = None) -> "FaultSchedule":
        groups = tuple(tuple(group) for group in groups)
        self.events.append(FaultEvent(at=at, kind=FaultKind.PARTITION, groups=groups))
        if until is not None:
            self.events.append(FaultEvent(at=until, kind=FaultKind.HEAL_PARTITION))
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(sorted(self.events, key=lambda event: event.at))
