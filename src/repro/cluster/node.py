"""The simulated consensus node.

``SimNode`` is both a network :class:`~repro.net.network.Endpoint` and the
:class:`~repro.protocol.base.NodeContext` its replica runs against.  Its CPU
is a single-server queue implemented with a ``busy_until`` reservation: every
received message, sent message, executed command and unit of protocol
bookkeeping reserves service time, so a node that must touch many messages
per round saturates and its queueing delay shows up in client latency --
exactly the leader bottleneck the paper studies.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import Any, Callable, List, Optional, Sequence

from repro.cluster.cpu import NodeCPUModel

#: Sentinel distinguishing "type not yet sized" from "type has no payload".
_UNSIZED = object()
from repro.net.message import Envelope
from repro.net.network import SimNetwork
from repro.net.transport import SimTransport
from repro.protocol.base import Replica, TimerLike
from repro.protocol.messages import ClientRequest
from repro.shard.addressing import SHARD_ENDPOINT_STRIDE
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRegistry


class SimNode:
    """A consensus node: CPU queue + transport + hosted replica."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: SimNetwork,
        cpu: Optional[NodeCPUModel] = None,
        all_nodes: Optional[Sequence[int]] = None,
    ) -> None:
        self.endpoint_id = node_id
        self._sim = sim
        self._network = network
        self._cpu = cpu or NodeCPUModel()
        self._all_nodes: List[int] = list(all_nodes or [])
        self._replica: Optional[Replica] = None
        self._replica_on_message: Optional[Callable[[int, Any], None]] = None
        self._transport = SimTransport(network, node_id, send_hook=self._charged_send)
        self._rng = sim.random.stream(f"node-{node_id}")

        self._busy_until = 0.0
        self._crashed = False
        self._sluggish_factor = 1.0
        self._busy_time_total = 0.0
        # CPU-model constants bound once for the inlined send/receive paths
        # (the model object is immutable; sluggish faults only scale
        # ``_sluggish_factor``).
        self._recv_per_message = self._cpu.recv_per_message
        self._send_per_message = self._cpu.send_per_message
        self._per_byte = self._cpu.per_byte
        self._client_request_extra = self._cpu.client_request_extra
        self._network_send = network.send
        self._size_of = network.size_model.size_of
        self._payload_fns = network.size_model._payload_fns
        self._header_bytes = network.size_model.header_bytes
        self._messages_in = sim.metrics.counter(f"node.{node_id}.messages_in")
        self._messages_out = sim.metrics.counter(f"node.{node_id}.messages_out")
        self._bytes_in = sim.metrics.counter(f"node.{node_id}.bytes_in")
        self._bytes_out = sim.metrics.counter(f"node.{node_id}.bytes_out")
        # Replica instances for shards >= 1 co-hosted on this machine
        # (sharded deployments only; empty and untouched otherwise).
        self._shard_siblings: List["ShardReplicaHost"] = []

        network.register(self)

    # ------------------------------------------------------------------ wiring
    def host(self, replica: Replica) -> None:
        """Attach a protocol replica to this node."""
        self._replica = replica
        self._replica_on_message = replica.on_message
        replica.bind(self)

    @property
    def replica(self) -> Replica:
        if self._replica is None:
            raise RuntimeError(f"node {self.endpoint_id} has no replica attached")
        return self._replica

    def add_shard_sibling(self, sibling: "ShardReplicaHost") -> None:
        """Track a co-hosted shard instance so faults propagate to it."""
        self._shard_siblings.append(sibling)

    @property
    def shard_siblings(self) -> Sequence["ShardReplicaHost"]:
        return self._shard_siblings

    def start(self) -> None:
        self.replica.start()

    # ------------------------------------------------------------------ NodeContext API
    @property
    def node_id(self) -> int:
        return self.endpoint_id

    @property
    def all_nodes(self) -> Sequence[int]:
        return self._all_nodes

    def set_all_nodes(self, node_ids: Sequence[int]) -> None:
        self._all_nodes = list(node_ids)

    @property
    def now(self) -> float:
        return self._sim._now

    @property
    def rng(self) -> random.Random:
        return self._rng

    @property
    def metrics(self) -> MetricsRegistry:
        return self._sim.metrics

    def send(self, dst: int, message: Any) -> None:
        """Charge CPU for the send, then hand the message to the network.

        This is the replica-facing hot path: it performs the charged send
        inline (the equivalent of routing through ``SimTransport`` with the
        :meth:`_charged_send` hook, minus two call hops) and passes the
        already-computed wire size to the network so it is not re-derived.
        """
        if self._crashed:
            return
        # Inlined SizeModel.size_of (shared per-type cache; cold misses fall
        # back to the model so the cache fills through one code path).
        fn = self._payload_fns.get(type(message), _UNSIZED)
        if fn is _UNSIZED:
            size = self._size_of(message)
        elif fn is None:
            size = self._header_bytes
        else:
            payload = int(fn(message))
            size = self._header_bytes + (payload if payload > 0 else 0)
        # Inlined _reserve(send_cost(size)) -- keep the arithmetic order
        # identical so reservation times stay bit-for-bit reproducible.
        cost = (self._send_per_message + self._per_byte * size) * self._sluggish_factor
        sim = self._sim
        now = sim._now
        busy = self._busy_until
        start = now if now > busy else busy
        ready_at = start + cost
        self._busy_until = ready_at
        self._busy_time_total += cost
        self._messages_out.value += 1
        self._bytes_out.value += size
        # Inlined EventQueue.push_call -- canonical entry layout lives there.
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        heappush(queue._heap, (ready_at, 0, seq, self._network_send, (self.endpoint_id, dst, message, size)))
        queue._live += 1

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> TimerLike:
        return self._sim.schedule(delay, self._guarded, callback, args)

    def _guarded(self, callback: Callable[..., Any], args: tuple) -> None:
        """Timer callbacks registered by the replica are dropped while crashed."""
        if self._crashed:
            return
        callback(*args)

    def charge_execution(self, commands: int = 1) -> None:
        self._reserve(self._cpu.execution_cost(commands))

    def charge_graph_work(self, vertices: int) -> None:
        if vertices > 0:
            self._reserve(self._cpu.graph_cost(vertices))

    def charge_overhead(self, units: float = 1.0) -> None:
        """Charge protocol bookkeeping (used by EPaxos per handled instance)."""
        self._reserve(self._cpu.epaxos_bookkeeping_cost * units)

    def charge_seconds(self, seconds: float) -> None:
        self._reserve(seconds)

    # ------------------------------------------------------------------ CPU model
    @property
    def cpu(self) -> NodeCPUModel:
        return self._cpu

    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def busy_time_total(self) -> float:
        """Cumulative CPU-seconds consumed; busy_time_total / elapsed = utilization."""
        return self._busy_time_total

    def _reserve(self, cost: float) -> float:
        """Reserve ``cost`` seconds on the node's CPU; returns the completion time."""
        cost *= self._sluggish_factor
        start = max(self._sim.now, self._busy_until)
        self._busy_until = start + cost
        self._busy_time_total += cost
        return self._busy_until

    # ------------------------------------------------------------------ Endpoint API
    def is_reachable(self) -> bool:
        return not self._crashed

    def deliver(self, envelope: Envelope) -> None:
        if self._crashed:
            return
        size = envelope.size_bytes
        # Inlined _reserve(receive_cost(...)) -- arithmetic order preserved.
        cost = self._recv_per_message + self._per_byte * size
        if type(envelope.message) is ClientRequest:
            cost += self._client_request_extra
        cost *= self._sluggish_factor
        sim = self._sim
        now = sim._now
        busy = self._busy_until
        start = now if now > busy else busy
        ready_at = start + cost
        self._busy_until = ready_at
        self._busy_time_total += cost
        self._messages_in.value += 1
        self._bytes_in.value += size
        # Inlined EventQueue.push_call -- canonical entry layout lives there.
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        heappush(queue._heap, (ready_at, 0, seq, self._handle, (envelope,)))
        queue._live += 1

    def _handle(self, envelope: Envelope) -> None:
        if self._crashed or self._replica is None:
            return
        self._replica_on_message(envelope.src, envelope.message)

    def _charged_send(self, dst: int, message: Any) -> bool:
        """SimTransport hook: charge CPU for the send, then hand to the network."""
        self.send(dst, message)
        return True

    # ------------------------------------------------------------------ faults
    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Silently stop processing and emitting messages (paper's crash model).

        A machine crash takes down *every* replica instance it hosts: the
        shard siblings share this node's ``_crashed`` flag (their reachability
        and guards read it), so only their replica-level crash hooks need
        explicit propagation.
        """
        if self._crashed:
            return
        self._crashed = True
        self.metrics.counter("faults.crashes").increment()
        if self._replica is not None:
            self._replica.on_crash()
        for sibling in self._shard_siblings:
            sibling.replica.on_crash()

    def recover(self) -> None:
        if not self._crashed:
            return
        self._crashed = False
        self._busy_until = self._sim.now
        self.metrics.counter("faults.recoveries").increment()
        if self._replica is not None:
            self._replica.on_recover()
        for sibling in self._shard_siblings:
            sibling.replica.on_recover()

    def set_sluggish(self, factor: float) -> None:
        """Make the node's CPU ``factor`` times slower (1.0 restores normal speed)."""
        if factor <= 0:
            raise ValueError("sluggish factor must be positive")
        self._sluggish_factor = factor
        self.metrics.counter("faults.sluggish_changes").increment()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self._crashed else "up"
        return f"SimNode({self.endpoint_id}, {state})"


class ShardReplicaHost:
    """One shard's replica instance co-hosted on an existing :class:`SimNode`.

    In a sharded deployment every physical node runs one replica *per
    consensus group*.  Shard 0's replica is hosted directly by the
    ``SimNode`` (that path is literally the unsharded deployment); shards
    >= 1 get one of these per node.  The host is a full network
    :class:`~repro.net.network.Endpoint` and
    :class:`~repro.protocol.base.NodeContext` registered under the shard's
    endpoint id (``shard * SHARD_ENDPOINT_STRIDE + node_id``), but it owns
    **no CPU of its own**: every receive/send/execute reserves time on the
    *physical* node's single-server queue, so co-hosted groups contend for
    the machine exactly like co-located processes would -- the contention
    the multi-group scaling curve has to respect to be honest.

    Fault coupling follows from the same principle: crashed/sluggish state
    lives on the host node (a machine crash takes down all its groups), and
    the per-node traffic counters (``node.<id>.messages_*``) aggregate
    every hosted instance so ``bottleneck_node`` stays a statement about
    physical machines.  Only the RNG stream (``node-<endpoint_id>``) and
    the replica's protocol state are per-shard.
    """

    def __init__(self, host: SimNode, shard: int, all_nodes: Sequence[int]) -> None:
        self.shard = shard
        self.endpoint_id = shard * SHARD_ENDPOINT_STRIDE + host.endpoint_id
        self._host = host
        self._sim = host._sim
        self._network = host._network
        self._all_nodes: List[int] = list(all_nodes)
        self._replica: Optional[Replica] = None
        self._replica_on_message: Optional[Callable[[int, Any], None]] = None
        self._rng = self._sim.random.stream(f"node-{self.endpoint_id}")
        self._network.register(self)

    # ------------------------------------------------------------------ wiring
    def host_replica(self, replica: Replica) -> None:
        self._replica = replica
        self._replica_on_message = replica.on_message
        replica.bind(self)

    @property
    def replica(self) -> Replica:
        if self._replica is None:
            raise RuntimeError(f"shard host {self.endpoint_id} has no replica attached")
        return self._replica

    @property
    def host_node(self) -> SimNode:
        return self._host

    def start(self) -> None:
        self.replica.start()

    # ------------------------------------------------------------------ NodeContext API
    @property
    def node_id(self) -> int:
        return self.endpoint_id

    @property
    def all_nodes(self) -> Sequence[int]:
        return self._all_nodes

    @property
    def now(self) -> float:
        return self._sim._now

    @property
    def rng(self) -> random.Random:
        return self._rng

    @property
    def metrics(self) -> MetricsRegistry:
        return self._sim.metrics

    def send(self, dst: int, message: Any) -> None:
        host = self._host
        if host._crashed:
            return
        size = self._network.size_model.size_of(message)
        ready_at = host._reserve(host.cpu.send_cost(size))
        host._messages_out.value += 1
        host._bytes_out.value += size
        self._sim.post_at(ready_at, self._network.send, (self.endpoint_id, dst, message, size))

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> TimerLike:
        return self._sim.schedule(delay, self._guarded, callback, args)

    def _guarded(self, callback: Callable[..., Any], args: tuple) -> None:
        if self._host._crashed:
            return
        callback(*args)

    def charge_execution(self, commands: int = 1) -> None:
        self._host.charge_execution(commands)

    def charge_graph_work(self, vertices: int) -> None:
        self._host.charge_graph_work(vertices)

    def charge_overhead(self, units: float = 1.0) -> None:
        self._host.charge_overhead(units)

    def charge_seconds(self, seconds: float) -> None:
        self._host.charge_seconds(seconds)

    # ------------------------------------------------------------------ Endpoint API
    def is_reachable(self) -> bool:
        return not self._host._crashed

    def deliver(self, envelope: Envelope) -> None:
        host = self._host
        if host._crashed:
            return
        size = envelope.size_bytes
        ready_at = host._reserve(
            host.cpu.receive_cost(size, type(envelope.message) is ClientRequest)
        )
        host._messages_in.value += 1
        host._bytes_in.value += size
        self._sim.post_at(ready_at, self._handle, (envelope,))

    def _handle(self, envelope: Envelope) -> None:
        if self._host._crashed or self._replica is None:
            return
        self._replica_on_message(envelope.src, envelope.message)

    # ------------------------------------------------------------------ faults
    @property
    def crashed(self) -> bool:
        return self._host._crashed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self._host._crashed else "up"
        return f"ShardReplicaHost(shard={self.shard}, node={self._host.endpoint_id}, {state})"
