"""Topology presets matching the paper's deployments.

* :func:`lan_topology` -- a single datacenter/availability zone, used by the
  5/9/25-node experiments (Figures 7, 8, 10, 11, 12, 13).
* :func:`wan_topology` -- nodes spread over named regions with a
  region-to-region latency matrix, used by the 15-node Virginia/California/
  Oregon experiment (Figure 9).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.latency import DEFAULT_WAN_MATRIX, NormalLatency, WANMatrixLatency
from repro.net.topology import Region, Topology

#: The three AWS regions used in the paper's WAN experiment (Figure 9).
PAPER_WAN_REGION_NAMES = ("virginia", "california", "oregon")


def lan_topology(
    num_nodes: int,
    mean_latency: float = 0.00025,
    jitter: float = 0.00005,
    bandwidth_bytes_per_sec: Optional[float] = 1.25e9,
) -> Topology:
    """A single-datacenter topology with normally distributed link latency."""
    if num_nodes < 1:
        raise ConfigurationError("num_nodes must be >= 1")
    return Topology(
        node_ids=list(range(num_nodes)),
        latency=NormalLatency(mean=mean_latency, stddev=jitter, floor=mean_latency / 5),
        bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
    )


def paper_wan_regions(num_nodes: int) -> Dict[str, List[int]]:
    """Assign ``num_nodes`` round-robin to the paper's three WAN regions."""
    assignment: Dict[str, List[int]] = {name: [] for name in PAPER_WAN_REGION_NAMES}
    for node in range(num_nodes):
        assignment[PAPER_WAN_REGION_NAMES[node % len(PAPER_WAN_REGION_NAMES)]].append(node)
    return assignment


def wan_topology(
    region_nodes: Optional[Dict[str, Sequence[int]]] = None,
    num_nodes: Optional[int] = None,
    matrix: Optional[Dict] = None,
    bandwidth_bytes_per_sec: Optional[float] = 1.25e9,
) -> Topology:
    """A multi-region topology.

    Either pass an explicit ``region_nodes`` mapping (region name -> node ids)
    or just ``num_nodes`` to use the paper's three-region round-robin layout.
    """
    if region_nodes is None:
        if num_nodes is None:
            raise ConfigurationError("wan_topology needs region_nodes or num_nodes")
        region_nodes = paper_wan_regions(num_nodes)
    node_region: Dict[int, str] = {}
    regions: List[Region] = []
    all_nodes: List[int] = []
    # lint: ok(no-unordered-iteration) region order is the caller's declared layout (paper's region order); sorting would scramble it
    for name, nodes in region_nodes.items():
        nodes = list(nodes)
        if not nodes:
            continue
        regions.append(Region(name=name, nodes=tuple(nodes)))
        all_nodes.extend(nodes)
        for node in nodes:
            node_region[node] = name
    if not all_nodes:
        raise ConfigurationError("wan topology has no nodes")
    latency = WANMatrixLatency(
        node_region=node_region,
        matrix=dict(matrix) if matrix is not None else dict(DEFAULT_WAN_MATRIX),
    )
    return Topology(
        node_ids=sorted(all_nodes),
        latency=latency,
        bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
        regions=regions,
    )
