"""Topology presets matching (and extrapolating) the paper's deployments.

* :func:`lan_topology` -- a single datacenter/availability zone, used by the
  5/9/25-node experiments (Figures 7, 8, 10, 11, 12, 13).
* :func:`wan_topology` -- nodes spread over named regions with a
  region-to-region latency matrix, used by the 15-node Virginia/California/
  Oregon experiment (Figure 9).
* :func:`hierarchical_topology` / :func:`planet_topology` -- planet-scale
  region -> zone -> node layouts (50/75/100 nodes and the 9..81-node
  scaling curve) that go beyond the paper's 25-node ceiling.  The latency
  ordering is hierarchical: intra-zone < intra-region < cross-region.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.net.latency import DEFAULT_WAN_MATRIX, NormalLatency, WANMatrixLatency
from repro.net.topology import Region, Topology, Zone

#: The three AWS regions used in the paper's WAN experiment (Figure 9).
PAPER_WAN_REGION_NAMES = ("virginia", "california", "oregon")


def lan_topology(
    num_nodes: int,
    mean_latency: float = 0.00025,
    jitter: float = 0.00005,
    bandwidth_bytes_per_sec: Optional[float] = 1.25e9,
) -> Topology:
    """A single-datacenter topology with normally distributed link latency."""
    if num_nodes < 1:
        raise ConfigurationError("num_nodes must be >= 1")
    return Topology(
        node_ids=list(range(num_nodes)),
        latency=NormalLatency(mean=mean_latency, stddev=jitter, floor=mean_latency / 5),
        bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
    )


def paper_wan_regions(num_nodes: int) -> Dict[str, List[int]]:
    """Assign ``num_nodes`` round-robin to the paper's three WAN regions."""
    assignment: Dict[str, List[int]] = {name: [] for name in PAPER_WAN_REGION_NAMES}
    for node in range(num_nodes):
        assignment[PAPER_WAN_REGION_NAMES[node % len(PAPER_WAN_REGION_NAMES)]].append(node)
    return assignment


def wan_topology(
    region_nodes: Optional[Dict[str, Sequence[int]]] = None,
    num_nodes: Optional[int] = None,
    matrix: Optional[Dict] = None,
    bandwidth_bytes_per_sec: Optional[float] = 1.25e9,
) -> Topology:
    """A multi-region topology.

    Either pass an explicit ``region_nodes`` mapping (region name -> node ids)
    or just ``num_nodes`` to use the paper's three-region round-robin layout.
    """
    if region_nodes is None:
        if num_nodes is None:
            raise ConfigurationError("wan_topology needs region_nodes or num_nodes")
        region_nodes = paper_wan_regions(num_nodes)
    node_region: Dict[int, str] = {}
    regions: List[Region] = []
    all_nodes: List[int] = []
    # lint: ok(no-unordered-iteration) region order is the caller's declared layout (paper's region order); sorting would scramble it
    for name, nodes in region_nodes.items():
        nodes = list(nodes)
        if not nodes:
            continue
        regions.append(Region(name=name, nodes=tuple(nodes)))
        all_nodes.extend(nodes)
        for node in nodes:
            node_region[node] = name
    if not all_nodes:
        raise ConfigurationError("wan topology has no nodes")
    latency = WANMatrixLatency(
        node_region=node_region,
        matrix=dict(matrix) if matrix is not None else dict(DEFAULT_WAN_MATRIX),
    )
    return Topology(
        node_ids=sorted(all_nodes),
        latency=latency,
        bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
        regions=regions,
    )


# --------------------------------------------------------------------------
# Planet-scale hierarchical layouts (region -> zone -> node)
# --------------------------------------------------------------------------

#: Region roster for the planet-scale layouts: the paper's three US regions
#: plus Frankfurt and Tokyo, so 50/75/100-node clusters span real WAN
#: distances instead of piling more nodes into three datacenters.
PLANET_REGION_NAMES = ("virginia", "california", "oregon", "frankfurt", "tokyo")

#: One-way latencies (seconds) between the planet regions; intra-region
#: entries are the *cross-zone* latency inside one region (two availability
#: zones of the same region, ~1.5 ms one-way).  Same-zone links are cheaper
#: still (``PLANET_ZONE_ONE_WAY``).  Cross-region values extend the paper's
#: matrix with publicly reported RTTs divided by two.
PLANET_INTRA_REGION_ONE_WAY = 0.0015
PLANET_ZONE_ONE_WAY = 0.0001
PLANET_WAN_MATRIX: Dict[Tuple[str, str], float] = {
    ("virginia", "virginia"): PLANET_INTRA_REGION_ONE_WAY,
    ("california", "california"): PLANET_INTRA_REGION_ONE_WAY,
    ("oregon", "oregon"): PLANET_INTRA_REGION_ONE_WAY,
    ("frankfurt", "frankfurt"): PLANET_INTRA_REGION_ONE_WAY,
    ("tokyo", "tokyo"): PLANET_INTRA_REGION_ONE_WAY,
    ("virginia", "california"): 0.031,
    ("virginia", "oregon"): 0.034,
    ("california", "oregon"): 0.010,
    ("virginia", "frankfurt"): 0.044,
    ("california", "frankfurt"): 0.073,
    ("oregon", "frankfurt"): 0.079,
    ("virginia", "tokyo"): 0.083,
    ("california", "tokyo"): 0.055,
    ("oregon", "tokyo"): 0.049,
    ("frankfurt", "tokyo"): 0.118,
}


def hierarchical_topology(
    region_zone_nodes: Mapping[str, Mapping[str, Sequence[int]]],
    matrix: Optional[Dict] = None,
    intra_region_one_way: float = PLANET_INTRA_REGION_ONE_WAY,
    zone_one_way: float = PLANET_ZONE_ONE_WAY,
    bandwidth_bytes_per_sec: Optional[float] = 1.25e9,
) -> Topology:
    """A region -> zone -> node topology from an explicit placement map.

    ``region_zone_nodes`` maps region name -> zone name -> node ids.  The
    latency model is three-tier: nodes sharing a zone see ``zone_one_way``,
    nodes sharing only a region see ``intra_region_one_way`` (via the
    matrix diagonal), and cross-region pairs use the matrix.
    """
    node_region: Dict[int, str] = {}
    node_zone: Dict[int, str] = {}
    regions: List[Region] = []
    all_nodes: List[int] = []
    # lint: ok(no-unordered-iteration) region/zone order is the caller's declared layout; sorting would scramble it
    for region_name, zones in region_zone_nodes.items():
        region_nodes: List[int] = []
        zone_objs: List[Zone] = []
        # lint: ok(no-unordered-iteration) region/zone order is the caller's declared layout; sorting would scramble it
        for zone_name, nodes in zones.items():
            nodes = list(nodes)
            if not nodes:
                continue
            zone_objs.append(Zone(name=zone_name, nodes=tuple(nodes)))
            region_nodes.extend(nodes)
            for node in nodes:
                node_zone[node] = zone_name
        if not region_nodes:
            continue
        regions.append(
            Region(name=region_name, nodes=tuple(region_nodes), zones=tuple(zone_objs))
        )
        all_nodes.extend(region_nodes)
        for node in region_nodes:
            node_region[node] = region_name
    if not all_nodes:
        raise ConfigurationError("hierarchical topology has no nodes")
    full_matrix = dict(matrix) if matrix is not None else dict(PLANET_WAN_MATRIX)
    for name in region_zone_nodes:
        full_matrix.setdefault((name, name), intra_region_one_way)
    latency = WANMatrixLatency(
        node_region=node_region,
        matrix=full_matrix,
        local_one_way=intra_region_one_way,
        node_zone=node_zone,
        zone_one_way=zone_one_way,
    )
    return Topology(
        node_ids=sorted(all_nodes),
        latency=latency,
        bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
        regions=regions,
    )


def planet_zone_layout(
    num_nodes: int, num_regions: int = 3, zones_per_region: int = 3
) -> Dict[str, Dict[str, List[int]]]:
    """Deal ``num_nodes`` into a balanced region -> zone -> node placement.

    Nodes go round-robin across regions (matching :func:`paper_wan_regions`,
    so a planet layout restricted to three one-zone regions degenerates to
    the paper's WAN layout), then round-robin across the zones within each
    region.  Zone names are globally unique (``virginia-z0`` ...).
    """
    if not 1 <= num_regions <= len(PLANET_REGION_NAMES):
        raise ConfigurationError(
            f"num_regions must be in 1..{len(PLANET_REGION_NAMES)}, got {num_regions}"
        )
    if zones_per_region < 1:
        raise ConfigurationError("zones_per_region must be >= 1")
    if num_nodes < 1:
        raise ConfigurationError("num_nodes must be >= 1")
    names = PLANET_REGION_NAMES[:num_regions]
    layout: Dict[str, Dict[str, List[int]]] = {
        name: {f"{name}-z{z}": [] for z in range(zones_per_region)} for name in names
    }
    for node in range(num_nodes):
        region = names[node % num_regions]
        position = node // num_regions
        zone = f"{region}-z{position % zones_per_region}"
        layout[region][zone].append(node)
    return layout


def planet_topology(
    num_nodes: int,
    num_regions: int = 3,
    zones_per_region: int = 3,
    matrix: Optional[Dict] = None,
    bandwidth_bytes_per_sec: Optional[float] = 1.25e9,
) -> Topology:
    """A planet-scale hierarchical topology for 50/75/100-node experiments.

    The default three-region/three-zone shape carries the 9..81-node
    bottleneck scaling curve; pass ``num_regions=5`` for the full planet
    roster (e.g. ``planet_topology(50, num_regions=5)``,
    ``planet_topology(75, num_regions=5)``, ``planet_topology(100,
    num_regions=5)``).
    """
    return hierarchical_topology(
        planet_zone_layout(num_nodes, num_regions, zones_per_region),
        matrix=matrix,
        bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
    )
