"""PigPaxos -- the paper's primary contribution.

PigPaxos keeps Multi-Paxos' decision making untouched and replaces the
leader's direct fan-out/fan-in with a relay/aggregate overlay:

* followers are partitioned into *relay groups* (hash/round-robin based, or
  aligned with WAN regions);
* each round the leader picks one *random* node per group as the relay;
* the relay forwards the leader's message to its group peers, collects their
  responses under a tight timeout (optionally only a threshold of them), and
  returns a single aggregated message to the leader;
* the leader retries a round with freshly chosen relays if it cannot reach a
  quorum in time (relay failure handling, paper Figure 5b).

The implementation subclasses :class:`repro.paxos.replica.MultiPaxosReplica`
and overrides only the fan-out hooks, mirroring the paper's claim that the
whole protocol change fits in the message-passing layer.
"""

from repro.core.config import PigPaxosConfig
from repro.core.groups import (
    RelayGroupPlan,
    contiguous_groups,
    hash_groups,
    region_groups,
    round_robin_groups,
)
from repro.core.messages import PigRelayRequest, PigAggregate, RelaySubtree
from repro.core.replica import PigPaxosReplica

__all__ = [
    "PigPaxosConfig",
    "RelayGroupPlan",
    "contiguous_groups",
    "hash_groups",
    "region_groups",
    "round_robin_groups",
    "PigRelayRequest",
    "PigAggregate",
    "RelaySubtree",
    "PigPaxosReplica",
]
