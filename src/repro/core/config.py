"""Configuration of the PigPaxos communication overlay."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.protocol.config import DEFAULT_RECOVERY_TIMEOUT, ProtocolConfig


@dataclass
class PigPaxosConfig(ProtocolConfig):
    """PigPaxos knobs on top of the common protocol configuration.

    Attributes:
        num_relay_groups: Number of relay groups the followers are divided
            into.  The paper's Figure 7 sweeps 2..6 on a 25-node cluster and
            finds 2-3 best; ``sqrt(N)`` is the "obvious" but worse strategy.
        relay_timeout: How long a relay waits for its group peers before
            flushing whatever it has collected to the leader (the paper's
            fault experiment uses 50 ms).
        relay_timeout_decay: Multiplier applied to the timeout per extra tree
            level below the first (deeper relays must respond sooner so their
            parents can meet their own deadline -- paper footnote 1).
        leader_retry_timeout: How long the leader waits for a quorum on a
            round before re-sending it through freshly selected relays
            (relay-failure recovery, Figure 5b).
        group_response_threshold: Optional fraction (0 < x <= 1) of each
            group that a relay waits for before flushing early (the partial
            response collection optimization in Section 4.2).  ``None`` means
            wait for the whole group (the paper's default).
        relay_levels: Depth of the relay tree.  1 is the paper's single relay
            layer; 2 nests sub-relays inside each group (Section 6.3).
        use_region_groups: Align groups with topology regions when regions
            are available (the WAN deployment of Figure 9).
        fixed_relays: Disable random rotation and always use the first member
            of each group as its relay (ablation: shows relay hotspots).
        group_seed_rotation: When True relays are picked with the leader's
            per-round RNG; kept as a switch so the ablation benchmark can
            document the effect of rotation separately from fixed_relays.
    """

    num_relay_groups: int = 3
    relay_timeout: float = 0.05
    relay_timeout_decay: float = 0.5
    leader_retry_timeout: float = 0.15
    group_response_threshold: Optional[float] = None
    relay_levels: int = 1
    use_region_groups: bool = False
    fixed_relays: bool = False
    group_seed_rotation: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.recovery_timeout not in (None, DEFAULT_RECOVERY_TIMEOUT):
            # The class default is "unset" here: recovery_timeout defaults
            # on for EPaxos, and PigPaxos must stay constructible with the
            # shared default while still refusing a deliberate override.
            raise ConfigurationError(
                "recovery_timeout is an EPaxos knob (dependency-graph "
                "instance recovery); PigPaxos would silently ignore it"
            )
        if self.num_relay_groups < 1:
            raise ConfigurationError("num_relay_groups must be >= 1")
        if self.relay_timeout <= 0:
            raise ConfigurationError("relay_timeout must be positive")
        if self.leader_retry_timeout <= self.relay_timeout:
            raise ConfigurationError(
                "leader_retry_timeout must exceed relay_timeout, otherwise the leader "
                "retries before relays have had a chance to flush"
            )
        if self.group_response_threshold is not None and not 0.0 < self.group_response_threshold <= 1.0:
            raise ConfigurationError("group_response_threshold must be in (0, 1]")
        if self.relay_levels < 1:
            raise ConfigurationError("relay_levels must be >= 1")
