"""Backwards-compatible re-export of the relay-group machinery.

The relay-group partitioners and per-round tree builder started life here as
PigPaxos internals; they now live in :mod:`repro.overlay.groups` where both
protocol families (PigPaxos and relay-overlay EPaxos) share them.  Existing
imports of ``repro.core.groups`` keep working through this shim.
"""

from repro.overlay.groups import (
    HierarchicalGroupPlan,
    RelayGroupPlan,
    contiguous_groups,
    hash_groups,
    region_groups,
    round_robin_groups,
)

__all__ = [
    "HierarchicalGroupPlan",
    "RelayGroupPlan",
    "contiguous_groups",
    "hash_groups",
    "region_groups",
    "round_robin_groups",
]
