"""PigPaxos overlay messages (aliases of the generic overlay wire format).

The PigPaxos overlay wraps ordinary Paxos messages: ``PigRelayRequest``
carries the inner message (P1a, P2a, Heartbeat) plus the subtree the
recipient is responsible for; ``PigAggregate`` carries the inner responses
(P1b/P2b) collected within that subtree back towards the leader.

Since the relay machinery was generalised into :mod:`repro.overlay` (so
EPaxos PreAccept/Accept rounds can ride the same trees), these names are
plain aliases of :class:`~repro.overlay.messages.RelayRequest` and
:class:`~repro.overlay.messages.RelayAggregate` -- one wire format, two
protocol families.
"""

from __future__ import annotations

from repro.overlay.messages import RelayAggregate, RelayRequest, RelaySubtree

PigRelayRequest = RelayRequest
PigAggregate = RelayAggregate

__all__ = ["PigAggregate", "PigRelayRequest", "RelaySubtree"]
