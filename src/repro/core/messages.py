"""PigPaxos overlay messages.

The overlay wraps ordinary Paxos messages.  ``PigRelayRequest`` carries the
inner message (P1a, P2a, Heartbeat) plus the subtree the recipient is
responsible for; ``PigAggregate`` carries the inner responses (P1b/P2b)
collected within that subtree back towards the leader.

Aggregation saves per-message header overhead and -- crucially for the
paper's WAN argument (Section 6.4) -- reduces the number of messages the
leader sends and receives, but it does not shrink the payloads themselves:
``PigAggregate.payload_bytes`` is the sum of its children's payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.net.message import Message


@dataclass(frozen=True)
class RelaySubtree:
    """One node of the relay tree, with the subtrees it must fan out to."""

    node_id: int
    children: Tuple["RelaySubtree", ...] = ()

    def size(self) -> int:
        """Total number of nodes in this subtree (including this node)."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def all_nodes(self) -> Tuple[int, ...]:
        nodes = [self.node_id]
        for child in self.children:
            nodes.extend(child.all_nodes())
        return tuple(nodes)


@dataclass(frozen=True)
class PigRelayRequest(Message):
    """A wrapped fan-out message travelling down the relay tree.

    Attributes:
        inner: The ordinary Paxos message being disseminated.
        children: Subtrees this recipient must forward the message to.
        agg_id: Aggregation session id; the recipient's PigAggregate reply
            carries the same id so the parent can match it.
        timeout: How long the recipient may wait for its children before
            flushing a partial aggregate.
        expects_response: False for pure fan-out traffic (heartbeats /
            commits) where the leader does not need the fan-in leg.
    """

    inner: Message
    children: Tuple[RelaySubtree, ...]
    agg_id: int
    timeout: float
    expects_response: bool = True

    def payload_bytes(self) -> int:
        inner_payload = self.inner.payload_bytes()
        # The membership list adds ~4 bytes per node id mentioned in the tree.
        membership = 4 * sum(subtree.size() for subtree in self.children)
        return inner_payload + membership


@dataclass(frozen=True)
class PigAggregate(Message):
    """Aggregated responses travelling back up the relay tree."""

    agg_id: int
    responses: Tuple[Message, ...]
    origin: int = -1
    complete: bool = True

    def payload_bytes(self) -> int:
        return sum(response.payload_bytes() + 8 for response in self.responses)
