"""The PigPaxos replica.

``PigPaxosReplica`` is :class:`~repro.paxos.replica.MultiPaxosReplica`
hosting a :class:`~repro.overlay.relay.RelayFanout` overlay.  Decision
making (ballots, quorums, the log, the state machine, leader election,
commit piggybacking) is inherited unchanged, which is precisely the
property the paper relies on to reuse Paxos' correctness argument: only the
message-passing layer differs.

The relay machinery itself (per-round relay trees, timed aggregation with
early-threshold flushing, late-response forwarding, dynamic reshuffling)
lives in :mod:`repro.overlay.relay`, where EPaxos shares it.  What remains
here is the one genuinely PigPaxos-specific behaviour -- the *leader round
retry* of Figure 5b: a phase-2 round that fails to reach a quorum within
``leader_retry_timeout`` is re-sent through freshly chosen relays -- plus
thin delegation so existing callers (tests, benchmarks, the scenario
runner's reshuffle event) keep their entry points.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import PigPaxosConfig
from repro.overlay.groups import RelayGroupPlan
from repro.overlay.relay import RelayFanout
from repro.paxos.replica import MultiPaxosReplica, _Proposal
from repro.protocol.messages import P2a
from repro.quorum.systems import QuorumSystem


class PigPaxosReplica(MultiPaxosReplica):
    """Multi-Paxos with relay/aggregate communication (PigPaxos)."""

    protocol_name = "pigpaxos"

    def __init__(
        self,
        config: Optional[PigPaxosConfig] = None,
        quorum: Optional[QuorumSystem] = None,
        region_of: Optional[Dict[int, str]] = None,
        zone_of: Optional[Dict[int, str]] = None,
    ) -> None:
        cfg = config or PigPaxosConfig()
        overlay = RelayFanout(
            num_groups=cfg.num_relay_groups,
            use_region_groups=cfg.use_region_groups,
            region_of=region_of,
            zone_of=zone_of,
            relay_timeout=cfg.relay_timeout,
            timeout_decay=cfg.relay_timeout_decay,
            response_threshold=cfg.group_response_threshold,
            levels=cfg.relay_levels,
            fixed_relays=cfg.fixed_relays,
        )
        super().__init__(config=cfg, quorum=quorum, overlay=overlay)
        self.pig_config: PigPaxosConfig = self.config  # typed alias
        self._relay: RelayFanout = overlay

    # ------------------------------------------------------------------ groups
    def relay_group_plan(self) -> RelayGroupPlan:
        """The current partition of this leader's followers into relay groups."""
        return self._relay.plan()

    def reshuffle_groups(self) -> RelayGroupPlan:
        """Dynamically reconfigure relay groups (Section 4.1)."""
        return self._relay.reshuffle()

    def set_group_plan(self, groups: List[List[int]]) -> None:
        """Install an explicit group layout (used by tests and ablations)."""
        self._relay.set_plan(groups)

    # ------------------------------------------------------------------ fan-out
    def _pig_fanout(self, inner, expects_response: bool, exclude: Optional[set] = None) -> List[int]:
        """Send ``inner`` down one freshly built relay tree per group."""
        relays = self._relay.wide_cast(
            inner, expects_response=expects_response, exclude=exclude
        )
        self.count("pig_rounds")
        return list(relays)

    def _fanout_phase2(self, p2a: P2a, proposal: _Proposal) -> None:
        super()._fanout_phase2(p2a, proposal)
        self._arm_proposal_retry(proposal, p2a)

    def _arm_proposal_retry(self, proposal: _Proposal, p2a: P2a) -> None:
        if proposal.retry_timer is not None:
            proposal.retry_timer.cancel()
        proposal.retry_timer = self.ctx.schedule(
            self.pig_config.leader_retry_timeout, self._retry_proposal, proposal, p2a
        )

    def _retry_proposal(self, proposal: _Proposal, p2a: P2a) -> None:
        """Leader timeout (Fig. 5b): re-send the round through fresh relays."""
        if proposal.committed or not self.is_leader or p2a.ballot != self.ballot:
            return
        self.count("leader_round_retries")
        self._pig_fanout(p2a, expects_response=True)
        self._arm_proposal_retry(proposal, p2a)

    # ------------------------------------------------------------------ introspection
    def status(self) -> Dict[str, object]:
        info = super().status()
        info["relay_groups"] = (
            [list(group) for group in self.relay_group_plan().groups] if self.is_leader else None
        )
        info["open_sessions"] = self._relay.open_sessions
        return info
