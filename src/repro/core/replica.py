"""The PigPaxos replica.

``PigPaxosReplica`` subclasses the Multi-Paxos replica and overrides only the
communication fan-out hooks.  Decision making (ballots, quorums, the log, the
state machine, leader election, commit piggybacking) is inherited unchanged,
which is precisely the property the paper relies on to reuse Paxos'
correctness argument.

Three roles appear below:

* **leader**: wraps its P1a/P2a/heartbeat fan-out into per-round relay trees
  (one random relay per group) and unwraps the aggregates it receives; a
  round that fails to reach a quorum in time is retried through freshly
  chosen relays.
* **relay** (any follower picked for a round): processes the inner message as
  an ordinary follower, forwards it to its subtree, and aggregates responses
  under a tight timeout (optionally flushing early at a threshold).
* **follower**: processes the inner message and replies to whoever forwarded
  it (its relay), not to the leader.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import PigPaxosConfig
from repro.core.groups import (
    RelayGroupPlan,
    contiguous_groups,
    region_groups,
    round_robin_groups,
)
from repro.core.messages import PigAggregate, PigRelayRequest, RelaySubtree
from repro.net.message import Message
from repro.paxos.replica import MultiPaxosReplica, _Proposal
from repro.protocol.base import TimerLike
from repro.protocol.messages import Heartbeat, P1a, P2a
from repro.quorum.systems import QuorumSystem


@dataclass
class _AggregationSession:
    """State a relay keeps while gathering responses for one round."""

    agg_id: int
    parent: int
    expected_children: int
    responses: List[Message] = field(default_factory=list)
    children_heard: int = 0
    children_seen: set = field(default_factory=set)
    threshold: Optional[int] = None
    timer: Optional[TimerLike] = None
    flushed: bool = False


class PigPaxosReplica(MultiPaxosReplica):
    """Multi-Paxos with relay/aggregate communication (PigPaxos)."""

    protocol_name = "pigpaxos"

    def __init__(
        self,
        config: Optional[PigPaxosConfig] = None,
        quorum: Optional[QuorumSystem] = None,
        region_of: Optional[Dict[int, str]] = None,
    ) -> None:
        super().__init__(config=config or PigPaxosConfig(), quorum=quorum)
        self.pig_config: PigPaxosConfig = self.config  # typed alias
        self._region_of = dict(region_of or {})
        self._plan: Optional[RelayGroupPlan] = None
        self._plan_leader: Optional[int] = None
        self._sessions: Dict[int, _AggregationSession] = {}
        self._agg_counter = 0
        # Parents of recently flushed sessions, so late child responses can
        # still be forwarded towards the leader instead of being dropped.
        self._flushed_parents: Dict[int, int] = {}

    #: How many flushed sessions to remember for late-response forwarding.
    _FLUSHED_SESSION_MEMORY = 256

    # ------------------------------------------------------------------ groups
    def relay_group_plan(self) -> RelayGroupPlan:
        """The current partition of this leader's followers into relay groups."""
        if self._plan is None or self._plan_leader != self.node_id:
            self._plan = self._build_plan()
            self._plan_leader = self.node_id
        return self._plan

    def _build_plan(self) -> RelayGroupPlan:
        followers = sorted(self.peers)
        cfg = self.pig_config
        if cfg.use_region_groups and self._region_of:
            groups = region_groups(followers, self._region_of)
        else:
            groups = round_robin_groups(followers, cfg.num_relay_groups)
        return RelayGroupPlan(groups=groups)

    def reshuffle_groups(self) -> RelayGroupPlan:
        """Dynamically reconfigure relay groups (Section 4.1)."""
        plan = self.relay_group_plan().reshuffle(self.ctx.rng)
        self._plan = plan
        self.count("group_reshuffles")
        return plan

    def set_group_plan(self, groups: List[List[int]]) -> None:
        """Install an explicit group layout (used by tests and ablations)."""
        self._plan = RelayGroupPlan(groups=[list(g) for g in groups])
        self._plan_leader = self.node_id

    # ------------------------------------------------------------------ fan-out overrides
    def _fanout_phase1(self, p1a: P1a) -> None:
        self._pig_fanout(p1a, expects_response=True)

    def _fanout_phase2(self, p2a: P2a, proposal: _Proposal) -> None:
        self._pig_fanout(p2a, expects_response=True)
        self._arm_proposal_retry(proposal, p2a)

    def _fanout_heartbeat(self, heartbeat: Heartbeat) -> None:
        self._pig_fanout(heartbeat, expects_response=False)

    def _pig_fanout(self, inner: Message, expects_response: bool, exclude: Optional[set] = None) -> List[int]:
        """Send ``inner`` down one freshly built relay tree per group."""
        cfg = self.pig_config
        plan = self.relay_group_plan()
        rng = self.ctx.rng if cfg.group_seed_rotation else None
        trees = plan.build_trees(
            rng=rng or self.ctx.rng,
            levels=cfg.relay_levels,
            fixed_relays=cfg.fixed_relays,
            exclude=exclude,
        )
        self._agg_counter += 1
        agg_id = self.node_id * 1_000_000_000 + self._agg_counter
        relays: List[int] = []
        for tree in trees:
            request = PigRelayRequest(
                inner=inner,
                children=tree.children,
                agg_id=agg_id,
                timeout=cfg.relay_timeout,
                expects_response=expects_response,
            )
            self.send(tree.node_id, request)
            relays.append(tree.node_id)
        self.count("pig_rounds")
        return relays

    def _arm_proposal_retry(self, proposal: _Proposal, p2a: P2a) -> None:
        if proposal.retry_timer is not None:
            proposal.retry_timer.cancel()
        proposal.retry_timer = self.ctx.schedule(
            self.pig_config.leader_retry_timeout, self._retry_proposal, proposal, p2a
        )

    def _retry_proposal(self, proposal: _Proposal, p2a: P2a) -> None:
        """Leader timeout (Fig. 5b): re-send the round through fresh relays."""
        if proposal.committed or not self.is_leader or p2a.ballot != self.ballot:
            return
        self.count("leader_round_retries")
        self._pig_fanout(p2a, expects_response=True)
        self._arm_proposal_retry(proposal, p2a)

    # ------------------------------------------------------------------ message dispatch
    def _handlers(self) -> Dict[type, object]:
        handlers = super()._handlers()
        handlers[PigRelayRequest] = self._on_relay_request
        handlers[PigAggregate] = self._on_aggregate
        return handlers

    # ------------------------------------------------------------------ relay / follower role
    def _process_inner(self, src: int, inner: Message) -> Optional[Message]:
        """Apply the wrapped message as a follower and return the response (if any)."""
        if isinstance(inner, P2a):
            return self._process_p2a(inner)
        if isinstance(inner, P1a):
            return self._process_p1a(inner)
        if isinstance(inner, Heartbeat):
            self._on_heartbeat(src, inner)
            return None
        # Fall back to ordinary handling for anything else wrapped in a relay
        # request (e.g. explicit Commit messages).
        self.on_message(src, inner)
        return None

    def _on_relay_request(self, src: int, msg: PigRelayRequest) -> None:
        own_response = self._process_inner(src, msg.inner)

        if not msg.expects_response:
            # Pure fan-out traffic (heartbeats): forward and stop.
            for child in msg.children:
                self._forward_to_child(child, msg)
            return

        if not msg.children:
            # Leaf follower: answer the relay immediately.
            responses = (own_response,) if own_response is not None else ()
            self.send(src, PigAggregate(agg_id=msg.agg_id, responses=responses, origin=self.node_id))
            return

        # Relay role: open an aggregation session, forward to the subtree.
        session = _AggregationSession(
            agg_id=msg.agg_id,
            parent=src,
            expected_children=len(msg.children),
            threshold=self._threshold_for(len(msg.children)),
        )
        if own_response is not None:
            session.responses.append(own_response)
        self._sessions[msg.agg_id] = session
        session.timer = self.ctx.schedule(msg.timeout, self._session_timeout, msg.agg_id)
        for child in msg.children:
            self._forward_to_child(child, msg)
        self.count("relay_rounds")

    def _forward_to_child(self, child: RelaySubtree, msg: PigRelayRequest) -> None:
        child_timeout = max(msg.timeout * self.pig_config.relay_timeout_decay, 0.001)
        self.send(
            child.node_id,
            PigRelayRequest(
                inner=msg.inner,
                children=child.children,
                agg_id=msg.agg_id,
                timeout=child_timeout,
                expects_response=msg.expects_response,
            ),
        )

    def _threshold_for(self, num_children: int) -> Optional[int]:
        fraction = self.pig_config.group_response_threshold
        if fraction is None:
            return None
        return max(1, math.ceil(fraction * num_children))

    def _on_aggregate(self, src: int, msg: PigAggregate) -> None:
        session = self._sessions.get(msg.agg_id)
        if session is not None and not session.flushed:
            # Count distinct children only: a child relay that flushed early
            # may send a second aggregate when its own stragglers arrive, and
            # double-counting it would flush this session "complete" while a
            # different child never reported.
            if msg.origin not in session.children_seen:
                session.children_seen.add(msg.origin)
                session.children_heard += 1
            session.responses.extend(msg.responses)
            done = session.children_heard >= session.expected_children
            early = session.threshold is not None and session.children_heard >= session.threshold
            if done or early:
                self._flush_session(session, complete=done)
            return

        parent = self._flushed_parents.get(msg.agg_id)
        if parent is not None:
            # Late child responses for a session this relay already flushed
            # (timeout or early threshold).  The leader may still need these
            # votes to reach quorum, so forward them up the tree rather than
            # swallowing them; duplicates are idempotent at the leader.
            if msg.responses:
                self.count("late_responses_forwarded")
                self.send(
                    parent,
                    PigAggregate(
                        agg_id=msg.agg_id,
                        responses=msg.responses,
                        origin=self.node_id,
                        complete=False,
                    ),
                )
            else:
                self.count("late_aggregates_dropped")
            return

        if msg.responses:
            # No session was ever open for this id: we are the top of the
            # tree (the leader, or a phase-1 candidate that is not leader
            # yet).  Unwrap and feed each vote into ordinary handling; stale
            # votes are ignored there.
            for response in msg.responses:
                super().on_message(src, response)
        else:
            self.count("late_aggregates_dropped")

    def _session_timeout(self, agg_id: int) -> None:
        session = self._sessions.get(agg_id)
        if session is None or session.flushed:
            return
        self.count("relay_timeouts")
        self._flush_session(session, complete=False)

    def _flush_session(self, session: _AggregationSession, complete: bool) -> None:
        session.flushed = True
        if session.timer is not None:
            session.timer.cancel()
        self._sessions.pop(session.agg_id, None)
        self._flushed_parents[session.agg_id] = session.parent
        while len(self._flushed_parents) > self._FLUSHED_SESSION_MEMORY:
            self._flushed_parents.pop(next(iter(self._flushed_parents)))
        aggregate = PigAggregate(
            agg_id=session.agg_id,
            responses=tuple(session.responses),
            origin=self.node_id,
            complete=complete,
        )
        self.send(session.parent, aggregate)

    # ------------------------------------------------------------------ crash / recover
    def on_crash(self) -> None:
        super().on_crash()
        for session in self._sessions.values():
            if session.timer is not None:
                session.timer.cancel()
        self._sessions.clear()
        self._flushed_parents.clear()

    # ------------------------------------------------------------------ introspection
    def status(self) -> Dict[str, object]:
        info = super().status()
        info["relay_groups"] = [list(group) for group in self.relay_group_plan().groups] if self.is_leader else None
        info["open_sessions"] = len(self._sessions)
        return info
