"""EPaxos baseline (Egalitarian Paxos).

Every node can act as a command leader: it pre-accepts a command with a
sequence number and a dependency set computed from key conflicts, tries the
fast path through a super-majority quorum, falls back to an explicit accept
round when replicas report different dependencies, and finally commits.
Execution orders commands by traversing the dependency graph (strongly
connected components, sequence-number tiebreak).

The paper uses EPaxos as the "no dedicated leader" comparison point and
observes that with a small key space (1000 keys picked uniformly) its
conflict-resolution and dependency-graph work drains every node, capping
throughput well below Multi-Paxos (Figures 8 and 10).
"""

from repro.epaxos.replica import EPaxosReplica
from repro.epaxos.messages import (
    EPreAccept,
    EPreAcceptReply,
    EAccept,
    EAcceptReply,
    ECommit,
)
from repro.epaxos.graph import DependencyGraph

__all__ = [
    "EPaxosReplica",
    "EPreAccept",
    "EPreAcceptReply",
    "EAccept",
    "EAcceptReply",
    "ECommit",
    "DependencyGraph",
]
