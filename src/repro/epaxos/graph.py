"""Dependency-graph execution order for EPaxos.

Committed instances form a directed graph (an edge from A to B when A depends
on B).  Execution finds strongly connected components with an iterative
Tarjan algorithm and executes them in reverse topological order; within a
component, instances execute in (seq, instance id) order.  An instance whose
transitive dependencies include an uncommitted instance is not executable
yet.

The number of vertices visited while attempting to execute is reported back
to the caller so the node model can charge CPU for it -- this re-traversal
cost under high conflict is a large part of why EPaxos underperforms in the
paper's small-key-space workload.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

InstanceId = Tuple[int, int]


class DependencyGraph:
    """Execution planner over committed EPaxos instances."""

    def __init__(self) -> None:
        self._deps: Dict[InstanceId, FrozenSet[InstanceId]] = {}
        self._seq: Dict[InstanceId, int] = {}
        self._committed: Set[InstanceId] = set()
        self._executed: Set[InstanceId] = set()

    # ------------------------------------------------------------------ updates
    def add_committed(self, instance: InstanceId, seq: int, deps: FrozenSet[InstanceId]) -> None:
        self._deps[instance] = deps
        self._seq[instance] = seq
        self._committed.add(instance)

    def mark_executed(self, instance: InstanceId) -> None:
        self._executed.add(instance)

    def is_committed(self, instance: InstanceId) -> bool:
        return instance in self._committed

    def is_executed(self, instance: InstanceId) -> bool:
        return instance in self._executed

    @property
    def committed_count(self) -> int:
        return len(self._committed)

    @property
    def executed_count(self) -> int:
        return len(self._executed)

    # ---------------------------------------------------------- introspection
    def deps_of(self, instance: InstanceId) -> FrozenSet[InstanceId]:
        """The committed dependency set of ``instance`` (empty if unknown)."""
        return self._deps.get(instance, frozenset())

    def seq_of(self, instance: InstanceId) -> int:
        """The committed sequence number of ``instance`` (0 if unknown)."""
        return self._seq.get(instance, 0)

    def committed_instances(self) -> FrozenSet[InstanceId]:
        """All instances this graph has seen commit (used by the checkers)."""
        return frozenset(self._committed)

    # ------------------------------------------------------------------ planning
    def execution_order(self, root: InstanceId) -> Tuple[List[InstanceId], int]:
        """Plan an execution order for ``root``.

        Returns ``(order, visited)`` where ``order`` lists the instances to
        execute (dependencies first, ``root`` last, executed ones excluded)
        and ``visited`` counts graph vertices touched while planning (used
        for CPU accounting).  ``order`` is empty when some transitive
        dependency is not committed yet, in which case execution must be
        retried after more commits arrive.
        """
        if root in self._executed or root not in self._committed:
            return [], 0

        # Iterative Tarjan SCC restricted to the closure reachable from root.
        index_counter = 0
        indices: Dict[InstanceId, int] = {}
        lowlink: Dict[InstanceId, int] = {}
        on_stack: Set[InstanceId] = set()
        stack: List[InstanceId] = []
        sccs: List[List[InstanceId]] = []
        visited = 0

        # Explicit DFS stack of (node, iterator over remaining deps).
        work: List[Tuple[InstanceId, List[InstanceId], int]] = []

        def relevant_deps(node: InstanceId) -> Optional[List[InstanceId]]:
            """Dependencies that still matter (not yet executed)."""
            deps = []
            for dep in self._deps.get(node, frozenset()):
                if dep in self._executed:
                    continue
                if dep not in self._committed:
                    return None  # blocked on an uncommitted dependency
                deps.append(dep)
            return deps

        initial_deps = relevant_deps(root)
        if initial_deps is None:
            return [], 1

        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        visited += 1
        work.append((root, initial_deps, 0))

        blocked = False
        while work:
            node, deps, next_index = work.pop()
            advanced = False
            while next_index < len(deps):
                dep = deps[next_index]
                next_index += 1
                if dep not in indices:
                    dep_deps = relevant_deps(dep)
                    if dep_deps is None:
                        blocked = True
                        break
                    indices[dep] = lowlink[dep] = index_counter
                    index_counter += 1
                    stack.append(dep)
                    on_stack.add(dep)
                    visited += 1
                    work.append((node, deps, next_index))
                    work.append((dep, dep_deps, 0))
                    advanced = True
                    break
                if dep in on_stack:
                    lowlink[node] = min(lowlink[node], indices[dep])
            if blocked:
                break
            if advanced:
                continue
            # node finished
            if lowlink[node] == indices[node]:
                component: List[InstanceId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

        if blocked:
            return [], visited

        order: List[InstanceId] = []
        for component in sccs:  # Tarjan emits components in reverse topological order
            component.sort(key=lambda inst: (self._seq.get(inst, 0), inst))
            order.extend(inst for inst in component if inst not in self._executed)
        return order, visited
