"""EPaxos wire messages.

Instances are identified by ``(replica_id, instance_number)``.  Dependency
sets and sequence numbers ride along with every message, which is why EPaxos
messages grow with the conflict rate -- an effect the wire-size model charges
for via ``payload_bytes``.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.net.message import Message
from repro.statemachine.command import Command

InstanceId = Tuple[int, int]


def _deps_bytes(deps: FrozenSet[InstanceId]) -> int:
    # Each dependency is a (replica, instance) pair: ~12 bytes encoded.
    return 12 * len(deps)


class EPreAccept(Message):
    """PreAccept sent by the command leader to the other replicas.

    Like the Paxos phase-2 types, the per-round EPaxos messages are plain
    slotted classes (immutable by convention): one is allocated per replica
    per round, and the frozen-dataclass constructor is ~2.5x slower.
    """

    __slots__ = ("instance", "command", "seq", "deps")

    def __init__(self, instance: InstanceId, command: Command, seq: int,
                 deps: FrozenSet[InstanceId]) -> None:
        self.instance = instance
        self.command = command
        self.seq = seq
        self.deps = deps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EPreAccept(instance={self.instance} seq={self.seq})"

    def payload_bytes(self) -> int:
        return self.command.payload_bytes() + _deps_bytes(self.deps)


class EPreAcceptReply(Message):
    """A replica's (possibly updated) view of the instance's seq and deps."""

    __slots__ = ("instance", "voter", "ok", "seq", "deps", "changed")

    def __init__(self, instance: InstanceId, voter: int, ok: bool, seq: int,
                 deps: FrozenSet[InstanceId], changed: bool) -> None:
        self.instance = instance
        self.voter = voter
        self.ok = ok
        self.seq = seq
        self.deps = deps
        self.changed = changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EPreAcceptReply(instance={self.instance} voter={self.voter} changed={self.changed})"

    def payload_bytes(self) -> int:
        return _deps_bytes(self.deps)


class EAccept(Message):
    """Slow-path accept carrying the union of dependencies."""

    __slots__ = ("instance", "command", "seq", "deps")

    def __init__(self, instance: InstanceId, command: Command, seq: int,
                 deps: FrozenSet[InstanceId]) -> None:
        self.instance = instance
        self.command = command
        self.seq = seq
        self.deps = deps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EAccept(instance={self.instance} seq={self.seq})"

    def payload_bytes(self) -> int:
        return self.command.payload_bytes() + _deps_bytes(self.deps)


class EAcceptReply(Message):
    """Acknowledgement of the slow-path accept."""

    __slots__ = ("instance", "voter", "ok")

    def __init__(self, instance: InstanceId, voter: int, ok: bool) -> None:
        self.instance = instance
        self.voter = voter
        self.ok = ok

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EAcceptReply(instance={self.instance} voter={self.voter})"


class ECommit(Message):
    """Commit notification broadcast to every replica."""

    __slots__ = ("instance", "command", "seq", "deps")

    def __init__(self, instance: InstanceId, command: Command, seq: int,
                 deps: FrozenSet[InstanceId]) -> None:
        self.instance = instance
        self.command = command
        self.seq = seq
        self.deps = deps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ECommit(instance={self.instance} seq={self.seq})"

    def payload_bytes(self) -> int:
        return self.command.payload_bytes() + _deps_bytes(self.deps)
