"""EPaxos wire messages.

Instances are identified by ``(replica_id, instance_number)``.  Dependency
sets and sequence numbers ride along with every message, which is why EPaxos
messages grow with the conflict rate -- an effect the wire-size model charges
for via ``payload_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.net.message import Message
from repro.statemachine.command import Command, CommandResult

InstanceId = Tuple[int, int]


def _deps_bytes(deps: FrozenSet[InstanceId]) -> int:
    # Each dependency is a (replica, instance) pair: ~12 bytes encoded.
    return 12 * len(deps)


@dataclass(frozen=True)
class EPreAccept(Message):
    """PreAccept sent by the command leader to the other replicas."""

    instance: InstanceId
    command: Command
    seq: int
    deps: FrozenSet[InstanceId]

    def payload_bytes(self) -> int:
        return self.command.payload_bytes() + _deps_bytes(self.deps)


@dataclass(frozen=True)
class EPreAcceptReply(Message):
    """A replica's (possibly updated) view of the instance's seq and deps."""

    instance: InstanceId
    voter: int
    ok: bool
    seq: int
    deps: FrozenSet[InstanceId]
    changed: bool

    def payload_bytes(self) -> int:
        return _deps_bytes(self.deps)


@dataclass(frozen=True)
class EAccept(Message):
    """Slow-path accept carrying the union of dependencies."""

    instance: InstanceId
    command: Command
    seq: int
    deps: FrozenSet[InstanceId]

    def payload_bytes(self) -> int:
        return self.command.payload_bytes() + _deps_bytes(self.deps)


@dataclass(frozen=True)
class EAcceptReply(Message):
    """Acknowledgement of the slow-path accept."""

    instance: InstanceId
    voter: int
    ok: bool


@dataclass(frozen=True)
class ECommit(Message):
    """Commit notification broadcast to every replica."""

    instance: InstanceId
    command: Command
    seq: int
    deps: FrozenSet[InstanceId]

    def payload_bytes(self) -> int:
        return self.command.payload_bytes() + _deps_bytes(self.deps)
