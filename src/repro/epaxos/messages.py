"""EPaxos wire messages.

Instances are identified by ``(replica_id, instance_number)``.  Dependency
sets and sequence numbers ride along with every message, which is why EPaxos
messages grow with the conflict rate -- an effect the wire-size model charges
for via ``payload_bytes``.

Every voting message also carries a per-instance *ballot*: a
``(number, replica_id)`` pair ordered lexicographically.  An instance's
original command leader runs at the default ballot ``(0, leader_id)``; the
explicit-prepare recovery path (:class:`EPrepare`/:class:`EPrepareReply`)
claims higher ballots so that a survivor finishing -- or no-op'ing -- a
crashed leader's instance can never race the original round into committing
two different values.  Ballots are fixed-width protocol metadata, so they
are covered by the header estimate in :class:`~repro.net.sizes.SizeModel`
and do not contribute to ``payload_bytes``.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.net.message import Message
from repro.statemachine.command import Command

InstanceId = Tuple[int, int]

#: Per-instance ballot: (number, replica_id), compared lexicographically.
Ballot = Tuple[int, int]


def initial_ballot(instance: InstanceId) -> Ballot:
    """The default ballot an instance's original command leader runs at."""
    return (0, instance[0])


def _deps_bytes(deps: FrozenSet[InstanceId]) -> int:
    # Each dependency is a (replica, instance) pair: ~12 bytes encoded.
    return 12 * len(deps)


class EPreAccept(Message):
    """PreAccept sent by the command leader to the other replicas.

    Like the Paxos phase-2 types, the per-round EPaxos messages are plain
    slotted classes (immutable by convention): one is allocated per replica
    per round, and the frozen-dataclass constructor is ~2.5x slower.
    """

    __slots__ = ("instance", "command", "seq", "deps", "ballot")

    def __init__(self, instance: InstanceId, command: Command, seq: int,
                 deps: FrozenSet[InstanceId], ballot: Optional[Ballot] = None) -> None:
        self.instance = instance
        self.command = command
        self.seq = seq
        self.deps = deps
        self.ballot = ballot if ballot is not None else initial_ballot(instance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EPreAccept(instance={self.instance} seq={self.seq} ballot={self.ballot})"

    def payload_bytes(self) -> int:
        return self.command.payload_bytes() + _deps_bytes(self.deps)


class EPreAcceptReply(Message):
    """A replica's (possibly updated) view of the instance's seq and deps."""

    __slots__ = ("instance", "voter", "ok", "seq", "deps", "changed", "ballot")

    def __init__(self, instance: InstanceId, voter: int, ok: bool, seq: int,
                 deps: FrozenSet[InstanceId], changed: bool,
                 ballot: Optional[Ballot] = None) -> None:
        self.instance = instance
        self.voter = voter
        self.ok = ok
        self.seq = seq
        self.deps = deps
        self.changed = changed
        self.ballot = ballot if ballot is not None else initial_ballot(instance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EPreAcceptReply(instance={self.instance} voter={self.voter} changed={self.changed})"

    def payload_bytes(self) -> int:
        return _deps_bytes(self.deps)


class EAccept(Message):
    """Slow-path accept carrying the union of dependencies.

    Also the phase-2 vehicle of the recovery path: a recovery coordinator
    finishes (or no-ops) an orphaned instance by winning an Accept round at
    a ballot above the default one.
    """

    __slots__ = ("instance", "command", "seq", "deps", "ballot")

    def __init__(self, instance: InstanceId, command: Command, seq: int,
                 deps: FrozenSet[InstanceId], ballot: Optional[Ballot] = None) -> None:
        self.instance = instance
        self.command = command
        self.seq = seq
        self.deps = deps
        self.ballot = ballot if ballot is not None else initial_ballot(instance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EAccept(instance={self.instance} seq={self.seq} ballot={self.ballot})"

    def payload_bytes(self) -> int:
        return self.command.payload_bytes() + _deps_bytes(self.deps)


class EAcceptReply(Message):
    """Acknowledgement (or ballot rejection) of the slow-path accept."""

    __slots__ = ("instance", "voter", "ok", "ballot")

    def __init__(self, instance: InstanceId, voter: int, ok: bool,
                 ballot: Optional[Ballot] = None) -> None:
        self.instance = instance
        self.voter = voter
        self.ok = ok
        self.ballot = ballot if ballot is not None else initial_ballot(instance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EAcceptReply(instance={self.instance} voter={self.voter} ok={self.ok})"


class EPrepare(Message):
    """Explicit-prepare probe opening the recovery of one instance.

    Sent by a replica whose execution has been blocked on an uncommitted
    dependency past ``ProtocolConfig.recovery_timeout``.  Claims ``ballot``
    (strictly above the default ballot) at every reachable replica so the
    coordinator can learn the instance's most advanced surviving state and
    finish it -- or, when no survivor has ever heard of the command, commit
    a no-op in its place.  Hand-slotted like the other per-round types.
    """

    __slots__ = ("instance", "ballot")

    def __init__(self, instance: InstanceId, ballot: Ballot) -> None:
        self.instance = instance
        self.ballot = ballot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EPrepare(instance={self.instance} ballot={self.ballot})"


class EPrepareReply(Message):
    """One replica's recorded state for an instance under recovery.

    ``status`` is the replica's local view (``"unknown"`` when it has never
    seen the instance's command); ``attr_ballot`` is the ballot at which the reported
    attributes were written (the recovery decision table must prefer the
    most recent accept); ``changed`` reports whether the replica's original
    PreAccept answer modified the leader's proposed attributes -- the
    fast-path-possible test counts only *unchanged* default-ballot replies.
    """

    __slots__ = ("instance", "voter", "ok", "ballot", "status", "seq",
                 "deps", "command", "attr_ballot", "changed")

    def __init__(self, instance: InstanceId, voter: int, ok: bool, ballot: Ballot,
                 status: str, seq: int, deps: FrozenSet[InstanceId],
                 command: Optional[Command], attr_ballot: Ballot,
                 changed: bool) -> None:
        self.instance = instance
        self.voter = voter
        self.ok = ok
        self.ballot = ballot
        self.status = status
        self.seq = seq
        self.deps = deps
        self.command = command
        self.attr_ballot = attr_ballot
        self.changed = changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EPrepareReply(instance={self.instance} voter={self.voter} "
            f"ok={self.ok} status={self.status!r})"
        )

    def payload_bytes(self) -> int:
        command_bytes = self.command.payload_bytes() if self.command is not None else 0
        return command_bytes + _deps_bytes(self.deps)


class ECommit(Message):
    """Commit notification broadcast to every replica."""

    __slots__ = ("instance", "command", "seq", "deps")

    def __init__(self, instance: InstanceId, command: Command, seq: int,
                 deps: FrozenSet[InstanceId]) -> None:
        self.instance = instance
        self.command = command
        self.seq = seq
        self.deps = deps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ECommit(instance={self.instance} seq={self.seq})"

    def payload_bytes(self) -> int:
        return self.command.payload_bytes() + _deps_bytes(self.deps)
