"""EPaxos replica.

Implements the commit protocol of Egalitarian Paxos (Moraru et al., SOSP'13)
at the level of detail the paper's comparison needs:

* every replica is an opportunistic command leader for the client requests it
  receives;
* PreAccept computes a sequence number and dependency set from per-key
  conflict tracking, and is sent to all other replicas;
* the fast path commits after a super-majority of unchanged replies; any
  changed reply forces the slow path (an Accept round on the union of
  dependencies followed by commit);
* commits are broadcast to everyone and executed by walking the dependency
  graph (SCCs, sequence-number order).

Simplifications relative to the full protocol (documented in DESIGN.md):
explicit failure recovery of instances (the "explicit prepare" path) is not
implemented because the paper's EPaxos experiments run without node failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.epaxos.graph import DependencyGraph
from repro.epaxos.messages import (
    EAccept,
    EAcceptReply,
    ECommit,
    EPreAccept,
    EPreAcceptReply,
    InstanceId,
)
from repro.protocol.base import Replica
from repro.protocol.messages import ClientReply, ClientRequest
from repro.quorum.systems import FastQuorum
from repro.statemachine.command import Command
from repro.statemachine.kvstore import KVStore

_PREACCEPTED = "preaccepted"
_ACCEPTED = "accepted"
_COMMITTED = "committed"
_EXECUTED = "executed"


@dataclass
class _Instance:
    """A replica's view of one EPaxos instance."""

    instance: InstanceId
    command: Command
    seq: int
    deps: FrozenSet[InstanceId]
    status: str = _PREACCEPTED
    # Command-leader bookkeeping:
    leader_here: bool = False
    client_id: Optional[int] = None
    request_id: int = 0
    preaccept_replies: int = 0
    preaccept_changed: bool = False
    merged_seq: int = 0
    merged_deps: FrozenSet[InstanceId] = frozenset()
    accept_replies: int = 0


class EPaxosReplica(Replica):
    """An EPaxos node: opportunistic command leader + acceptor + executor."""

    protocol_name = "epaxos"

    def __init__(self, quorum: Optional[FastQuorum] = None) -> None:
        super().__init__()
        self._quorum = quorum
        self.store = KVStore()
        self.instances: Dict[InstanceId, _Instance] = {}
        self.graph = DependencyGraph()
        self._next_instance = 0
        # Per-key conflict index: key -> latest instance touching that key.
        self._key_index: Dict[str, InstanceId] = {}
        self._pending_execution: Set[InstanceId] = set()

    # ------------------------------------------------------------------ setup
    @property
    def quorum(self) -> FastQuorum:
        if self._quorum is None:
            self._quorum = FastQuorum(self.cluster_size)
        return self._quorum

    def start(self) -> None:
        """EPaxos needs no leader election; nothing to bootstrap."""

    # ------------------------------------------------------------------ dispatch
    def on_message(self, src: int, message: Any) -> None:
        if isinstance(message, ClientRequest):
            self._on_client_request(src, message)
        elif isinstance(message, EPreAccept):
            self._on_preaccept(src, message)
        elif isinstance(message, EPreAcceptReply):
            self._on_preaccept_reply(src, message)
        elif isinstance(message, EAccept):
            self._on_accept(src, message)
        elif isinstance(message, EAcceptReply):
            self._on_accept_reply(src, message)
        elif isinstance(message, ECommit):
            self._on_commit(src, message)
        else:
            self.count("unknown_message")

    # ------------------------------------------------------------------ conflict tracking
    def _conflicts_for(self, command: Command, exclude: Optional[InstanceId] = None) -> Tuple[int, FrozenSet[InstanceId]]:
        """Sequence number and dependency set implied by the local key index."""
        deps: Set[InstanceId] = set()
        seq = 1
        last = self._key_index.get(command.key)
        if last is not None and last != exclude:
            deps.add(last)
            last_instance = self.instances.get(last)
            if last_instance is not None:
                seq = max(seq, last_instance.seq + 1)
        return seq, frozenset(deps)

    def _record_key(self, command: Command, instance: InstanceId) -> None:
        self._key_index[command.key] = instance

    # ------------------------------------------------------------------ command leader path
    def _on_client_request(self, src: int, msg: ClientRequest) -> None:
        self.count("client_requests")
        command = msg.command
        self._next_instance += 1
        instance_id: InstanceId = (self.node_id, self._next_instance)
        seq, deps = self._conflicts_for(command)
        instance = _Instance(
            instance=instance_id,
            command=command,
            seq=seq,
            deps=deps,
            status=_PREACCEPTED,
            leader_here=True,
            client_id=command.client_id if command.client_id >= 0 else src,
            request_id=command.request_id,
            merged_seq=seq,
            merged_deps=deps,
        )
        self.instances[instance_id] = instance
        self._record_key(command, instance_id)
        self.count("instances_led")
        # Dependency bookkeeping / conflict tracking cost (see NodeCPUModel docs).
        self.ctx.charge_overhead(1.0)

        if self.cluster_size == 1:
            self._commit_instance(instance, seq, deps)
            return
        preaccept = EPreAccept(instance=instance_id, command=command, seq=seq, deps=deps)
        self.broadcast(self.peers, preaccept)

    def _on_preaccept_reply(self, src: int, msg: EPreAcceptReply) -> None:
        instance = self.instances.get(msg.instance)
        if instance is None or not instance.leader_here or instance.status != _PREACCEPTED:
            return
        instance.preaccept_replies += 1
        instance.merged_seq = max(instance.merged_seq, msg.seq)
        instance.merged_deps = instance.merged_deps | msg.deps
        if msg.changed:
            instance.preaccept_changed = True

        # +1 accounts for the command leader's own vote.
        if instance.preaccept_replies + 1 >= self.quorum.fast_path_size:
            if not instance.preaccept_changed:
                self.count("fast_path_commits")
                self._commit_instance(instance, instance.seq, instance.deps)
            else:
                self.count("slow_path_rounds")
                instance.status = _ACCEPTED
                instance.seq = instance.merged_seq
                instance.deps = instance.merged_deps
                instance.accept_replies = 0
                accept = EAccept(
                    instance=instance.instance,
                    command=instance.command,
                    seq=instance.seq,
                    deps=instance.deps,
                )
                self.broadcast(self.peers, accept)

    def _on_accept_reply(self, src: int, msg: EAcceptReply) -> None:
        instance = self.instances.get(msg.instance)
        if instance is None or not instance.leader_here or instance.status != _ACCEPTED:
            return
        if not msg.ok:
            return
        instance.accept_replies += 1
        if instance.accept_replies + 1 >= self.quorum.phase2_size:
            self._commit_instance(instance, instance.seq, instance.deps)

    def _commit_instance(self, instance: _Instance, seq: int, deps: FrozenSet[InstanceId]) -> None:
        if instance.status in (_COMMITTED, _EXECUTED):
            return
        instance.status = _COMMITTED
        instance.seq = seq
        instance.deps = deps
        self.graph.add_committed(instance.instance, seq, deps)
        self.count("instances_committed")
        if self.peers:
            commit = ECommit(instance=instance.instance, command=instance.command, seq=seq, deps=deps)
            self.broadcast(self.peers, commit)
        self._pending_execution.add(instance.instance)
        self._try_execute()

    # ------------------------------------------------------------------ acceptor path
    def _on_preaccept(self, src: int, msg: EPreAccept) -> None:
        local_seq, local_deps = self._conflicts_for(msg.command, exclude=msg.instance)
        merged_seq = max(msg.seq, local_seq)
        merged_deps = msg.deps | local_deps
        changed = merged_seq != msg.seq or merged_deps != msg.deps
        instance = _Instance(
            instance=msg.instance,
            command=msg.command,
            seq=merged_seq,
            deps=merged_deps,
            status=_PREACCEPTED,
        )
        existing = self.instances.get(msg.instance)
        if existing is None or existing.status == _PREACCEPTED:
            self.instances[msg.instance] = instance
        self._record_key(msg.command, msg.instance)
        self.count("preaccepts_handled")
        # Dependency bookkeeping / conflict tracking cost (see NodeCPUModel docs).
        self.ctx.charge_overhead(1.0)
        reply = EPreAcceptReply(
            instance=msg.instance,
            voter=self.node_id,
            ok=True,
            seq=merged_seq,
            deps=merged_deps,
            changed=changed,
        )
        self.send(src, reply)

    def _on_accept(self, src: int, msg: EAccept) -> None:
        instance = self.instances.get(msg.instance)
        if instance is None:
            instance = _Instance(instance=msg.instance, command=msg.command, seq=msg.seq, deps=msg.deps)
            self.instances[msg.instance] = instance
        if instance.status not in (_COMMITTED, _EXECUTED):
            instance.seq = msg.seq
            instance.deps = msg.deps
            instance.status = _ACCEPTED
        self._record_key(msg.command, msg.instance)
        self.send(src, EAcceptReply(instance=msg.instance, voter=self.node_id, ok=True))

    def _on_commit(self, src: int, msg: ECommit) -> None:
        instance = self.instances.get(msg.instance)
        if instance is None:
            instance = _Instance(instance=msg.instance, command=msg.command, seq=msg.seq, deps=msg.deps)
            self.instances[msg.instance] = instance
        if instance.status == _EXECUTED:
            return
        instance.seq = msg.seq
        instance.deps = msg.deps
        instance.status = _COMMITTED
        self._record_key(msg.command, msg.instance)
        self.graph.add_committed(msg.instance, msg.seq, msg.deps)
        self._pending_execution.add(msg.instance)
        self._try_execute()

    # ------------------------------------------------------------------ execution
    def _try_execute(self) -> None:
        """Attempt to execute every committed-but-unexecuted instance we know of."""
        if not self._pending_execution:
            return
        progressed = True
        total_visited = 0
        while progressed:
            progressed = False
            for instance_id in sorted(self._pending_execution):
                order, visited = self.graph.execution_order(instance_id)
                total_visited += visited
                if not order:
                    continue
                for ready_id in order:
                    self._execute_instance(ready_id)
                    self._pending_execution.discard(ready_id)
                progressed = True
        if total_visited:
            self.ctx.charge_graph_work(total_visited)

    def _execute_instance(self, instance_id: InstanceId) -> None:
        instance = self.instances.get(instance_id)
        if instance is None or instance.status == _EXECUTED:
            return
        result = self.store.apply(instance.command)
        self.ctx.charge_execution(1)
        instance.status = _EXECUTED
        self.graph.mark_executed(instance_id)
        self.count("instances_executed")
        if instance.leader_here and instance.client_id is not None:
            reply = ClientReply(
                command_uid=instance.command.uid,
                request_id=instance.request_id,
                client_id=instance.client_id,
                success=True,
                result=result,
            )
            self.send(instance.client_id, reply)
            self.count("client_replies")

    # ------------------------------------------------------------------ introspection
    def status(self) -> Dict[str, object]:
        return {
            "node": self.node_id,
            "instances": len(self.instances),
            "committed": self.graph.committed_count,
            "executed": self.graph.executed_count,
            "pending_execution": len(self._pending_execution),
            "kv_size": len(self.store),
        }
