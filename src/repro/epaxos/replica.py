"""EPaxos replica.

Implements the commit protocol of Egalitarian Paxos (Moraru et al., SOSP'13)
at the level of detail the paper's comparison needs:

* every replica is an opportunistic command leader for the client requests it
  receives;
* PreAccept computes a sequence number and dependency set from per-key
  conflict tracking, and is sent to all other replicas;
* the fast path commits after a super-majority of unchanged replies; any
  changed reply forces the slow path (an Accept round on the union of
  dependencies followed by commit);
* commits are broadcast to everyone and executed by walking the dependency
  graph (SCCs, sequence-number order).

Robustness under the adversarial harness (duplicated, dropped and reordered
messages; crashed nodes): PreAccept/Accept replies are deduplicated per
voter, the per-key conflict index is updated monotonically so stale
redeliveries cannot drop dependency edges, and execution is at-most-once per
client session (a retried command that lands in a second instance applies
once and answers from the cached result).

Communication fan-out is pluggable (:mod:`repro.overlay`): PreAccept and
Accept rounds, and the commit notifications, route through the replica's
:class:`~repro.overlay.base.FanoutOverlay`.  ``DirectFanout`` reproduces
the classic all-to-all broadcast; ``RelayFanout`` sends each round leader →
relays → group members and aggregates the replies back up (the paper's
PigPaxos overlay applied to the leaderless protocol); ``ThriftyFanout``
targets only a fast-quorum-sized subset and falls back to a full broadcast
on timeout.  Commit notifications are never thinned -- every replica needs
them or its dependency graph stalls -- so only the voting legs are
overlay-optimised.

Simplifications relative to the full protocol (documented in DESIGN.md):
explicit failure recovery of instances (the "explicit prepare" path) is not
implemented because the paper's EPaxos experiments run without node failures;
a crash therefore degrades liveness of instances the dead node led (their
dependents stay blocked) but never safety.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.epaxos.graph import DependencyGraph
from repro.epaxos.messages import (
    EAccept,
    EAcceptReply,
    ECommit,
    EPreAccept,
    EPreAcceptReply,
    InstanceId,
)
from repro.net.message import Message
from repro.overlay.base import FanoutOverlay
from repro.overlay.messages import OverlayMessage
from repro.protocol.base import Replica
from repro.protocol.messages import ClientReply, ClientRequest
from repro.quorum.systems import FastQuorum
from repro.statemachine.command import Command, CommandResult
from repro.statemachine.kvstore import KVStore
from repro.statemachine.sessions import DEFAULT_SESSION_WINDOW, ClientSessionCache

_PREACCEPTED = "preaccepted"
_ACCEPTED = "accepted"
_COMMITTED = "committed"
_EXECUTED = "executed"


@dataclass
class _Instance:
    """A replica's view of one EPaxos instance."""

    instance: InstanceId
    command: Command
    seq: int
    deps: FrozenSet[InstanceId]
    status: str = _PREACCEPTED
    # Command-leader bookkeeping.  Votes are tracked as *sets of voter ids*,
    # never integer counters: the network may retransmit or duplicate a
    # reply, and a duplicated vote must not fake a quorum.
    leader_here: bool = False
    client_id: Optional[int] = None
    request_id: int = 0
    preaccept_voters: Set[int] = field(default_factory=set)
    preaccept_changed: bool = False
    merged_seq: int = 0
    merged_deps: FrozenSet[InstanceId] = frozenset()
    accept_voters: Set[int] = field(default_factory=set)


class EPaxosReplica(Replica):
    """An EPaxos node: opportunistic command leader + acceptor + executor."""

    protocol_name = "epaxos"

    #: Per-key bound on remembered client sessions; far above any plausible
    #: number of distinct clients concurrently retrying on one key.
    MAX_CLIENTS_PER_KEY = 1024

    def __init__(
        self,
        quorum: Optional[FastQuorum] = None,
        session_window: int = DEFAULT_SESSION_WINDOW,
        overlay: Optional[FanoutOverlay] = None,
    ) -> None:
        super().__init__(overlay=overlay)
        self._quorum = quorum
        self.store = KVStore()
        self.instances: Dict[InstanceId, _Instance] = {}
        self.graph = DependencyGraph()
        self._next_instance = 0
        # Per-key conflict index: key -> {origin replica -> highest instance
        # number from that origin touching the key}.  One slot per origin
        # (the canonical EPaxos dependency shape): a single "latest
        # instance" pointer cannot represent two conflicting same-seq
        # instances from different leaders, and whichever it dropped lost
        # its dependency edge.  Updated monotonically (see
        # :meth:`_record_key`).
        self._key_index: Dict[str, Dict[int, int]] = {}
        self._pending_execution: Set[InstanceId] = set()
        # Client sessions make execution at-most-once: a client retry that
        # lands on a different opportunistic leader creates a *second*
        # instance carrying the same command, and both instances commit and
        # execute everywhere.  The two instances carry the same key, so they
        # conflict and execute in the same relative order on every replica --
        # filtering the duplicate at apply time therefore keeps all state
        # machines identical.  Unlike Multi-Paxos (total order), EPaxos only
        # orders *conflicting* commands, so every eviction decision must
        # depend solely on same-key events or it diverges across replicas
        # (cross-key interleaving legally differs).  Hence one
        # ClientSessionCache *per key*: both its inner request window and
        # its outer client LRU are driven only by that key's applies, which
        # are identically ordered everywhere.  Memory stays proportional to
        # the store itself: keys x bounded sessions x bounded window.
        self._session_window = session_window
        self._client_sessions: Dict[str, ClientSessionCache] = {}
        # Execution order as applied locally, for the cross-replica
        # execution-consistency checker (repro.checkers.invariants).
        self.executed_order: List[InstanceId] = []

    # ------------------------------------------------------------------ setup
    @property
    def quorum(self) -> FastQuorum:
        if self._quorum is None:
            self._quorum = FastQuorum(self.cluster_size)
        return self._quorum

    def start(self) -> None:
        """EPaxos needs no leader election; nothing to bootstrap."""

    def reshuffle_groups(self) -> None:
        """Re-deal this replica's relay groups (no-op for non-relay overlays)."""
        self._overlay.reshuffle()

    # ------------------------------------------------------------------ dispatch
    def on_message(self, src: int, message: Any) -> None:
        # Type-keyed dispatch table built on first use; the isinstance
        # fallback only handles overlay wrapper subtypes not in the table.
        try:
            handler = self._cached_handlers.get(type(message))
        except AttributeError:
            self._cached_handlers = {
                ClientRequest: self._on_client_request,
                EPreAccept: self._on_preaccept,
                EPreAcceptReply: self._on_preaccept_reply,
                EAccept: self._on_accept,
                EAcceptReply: self._on_accept_reply,
                ECommit: self._on_commit,
            }
            request_handler = getattr(self._overlay, "_on_relay_request", None)
            aggregate_handler = getattr(self._overlay, "_on_aggregate", None)
            if request_handler is not None and aggregate_handler is not None:
                from repro.overlay.messages import RelayAggregate, RelayRequest

                self._cached_handlers[RelayRequest] = request_handler
                self._cached_handlers[RelayAggregate] = aggregate_handler
            handler = self._cached_handlers.get(type(message))
        if handler is not None:
            handler(src, message)
        elif isinstance(message, OverlayMessage):
            if not self._overlay.handle_message(src, message):
                self.count("unknown_message")
        else:
            self.count("unknown_message")

    # ------------------------------------------------------------------ overlay host hooks
    def process_for_overlay(self, src: int, inner: Message) -> Optional[Message]:
        """Apply a relayed inner message locally; return the vote (if any).

        Called by the relay overlay on relays and leaf followers so the
        PreAccept/Accept vote can be aggregated up the tree instead of sent
        straight back to the command leader.
        """
        if isinstance(inner, EPreAccept):
            return self._handle_preaccept(inner)
        if isinstance(inner, EAccept):
            return self._handle_accept(inner)
        if isinstance(inner, ECommit):
            self._on_commit(src, inner)
            return None
        self.on_message(src, inner)
        return None

    # ------------------------------------------------------------------ conflict tracking
    def _conflicts_for(self, command: Command, exclude: Optional[InstanceId] = None) -> Tuple[int, FrozenSet[InstanceId]]:
        """Sequence number and dependency set implied by the local key index."""
        deps: Set[InstanceId] = set()
        seq = 1
        index = self._key_index.get(command.key)
        if index:
            for origin, number in index.items():
                last: InstanceId = (origin, number)
                if last == exclude:
                    continue
                deps.add(last)
                last_instance = self.instances.get(last)
                if last_instance is not None:
                    seq = max(seq, last_instance.seq + 1)
        return seq, frozenset(deps)

    def _record_key(self, command: Command, instance: InstanceId) -> None:
        """Record ``instance`` as its origin's latest instance on the key.

        Instance numbers from one origin are assigned in creation order, so
        per origin "highest number" is both the newest instance and the one
        with the highest sequence number -- which makes the update rule
        monotonic for free.  Messages can be retransmitted, duplicated or
        delivered late: a stale PreAccept/Commit for an *old* instance must
        not overwrite a newer index entry, or every subsequent command on
        that key silently loses its dependency edge to the newer instance
        (and can regress its sequence number).
        """
        origin, number = instance
        index = self._key_index.setdefault(command.key, {})
        current = index.get(origin)
        if current is not None and current >= number:
            if current > number:
                self.count("key_index_stale_updates_skipped")
            return
        index[origin] = number

    # ------------------------------------------------------------------ command leader path
    def _on_client_request(self, src: int, msg: ClientRequest) -> None:
        self.count("client_requests")
        command = msg.command
        self._next_instance += 1
        instance_id: InstanceId = (self.node_id, self._next_instance)
        seq, deps = self._conflicts_for(command)
        instance = _Instance(
            instance=instance_id,
            command=command,
            seq=seq,
            deps=deps,
            status=_PREACCEPTED,
            leader_here=True,
            client_id=command.client_id if command.client_id >= 0 else src,
            request_id=command.request_id,
            merged_seq=seq,
            merged_deps=deps,
        )
        self.instances[instance_id] = instance
        self._record_key(command, instance_id)
        self.count("instances_led")
        # Dependency bookkeeping / conflict tracking cost (see NodeCPUModel docs).
        self.ctx.charge_overhead(1.0)

        if self.cluster_size == 1:
            self._commit_instance(instance, seq, deps)
            return
        preaccept = EPreAccept(instance=instance_id, command=command, seq=seq, deps=deps)
        self._overlay.wide_cast(
            preaccept,
            round_id=("pre", instance_id),
            quorum_size=self.quorum.fast_path_size,
        )

    @staticmethod
    def _register_vote(voters: Set[int], voter: int) -> bool:
        """Record ``voter``; False when this voter already voted (duplicate)."""
        if voter in voters:
            return False
        voters.add(voter)
        return True

    def _on_preaccept_reply(self, src: int, msg: EPreAcceptReply) -> None:
        instance = self.instances.get(msg.instance)
        if instance is None or not instance.leader_here or instance.status != _PREACCEPTED:
            return
        if msg.voter == self.node_id or not self._register_vote(instance.preaccept_voters, msg.voter):
            self.count("duplicate_preaccept_replies")
            return
        instance.merged_seq = max(instance.merged_seq, msg.seq)
        instance.merged_deps = instance.merged_deps | msg.deps
        if msg.changed:
            instance.preaccept_changed = True

        # +1 accounts for the command leader's own vote.
        if len(instance.preaccept_voters) + 1 >= self.quorum.fast_path_size:
            if not instance.preaccept_changed:
                self.count("fast_path_commits")
                self._commit_instance(instance, instance.seq, instance.deps)
            else:
                self.count("slow_path_rounds")
                self._overlay.complete_round(("pre", instance.instance))
                instance.status = _ACCEPTED
                instance.seq = instance.merged_seq
                instance.deps = instance.merged_deps
                instance.accept_voters = set()
                accept = EAccept(
                    instance=instance.instance,
                    command=instance.command,
                    seq=instance.seq,
                    deps=instance.deps,
                )
                self._overlay.wide_cast(
                    accept,
                    round_id=("acc", instance.instance),
                    quorum_size=self.quorum.phase2_size,
                )

    def _on_accept_reply(self, src: int, msg: EAcceptReply) -> None:
        instance = self.instances.get(msg.instance)
        if instance is None or not instance.leader_here or instance.status != _ACCEPTED:
            return
        if not msg.ok:
            return
        if msg.voter == self.node_id or not self._register_vote(instance.accept_voters, msg.voter):
            self.count("duplicate_accept_replies")
            return
        if len(instance.accept_voters) + 1 >= self.quorum.phase2_size:
            self._commit_instance(instance, instance.seq, instance.deps)

    def _commit_instance(self, instance: _Instance, seq: int, deps: FrozenSet[InstanceId]) -> None:
        if instance.status in (_COMMITTED, _EXECUTED):
            return
        self._overlay.complete_round(("pre", instance.instance))
        self._overlay.complete_round(("acc", instance.instance))
        instance.status = _COMMITTED
        instance.seq = seq
        instance.deps = deps
        self.graph.add_committed(instance.instance, seq, deps)
        self.count("instances_committed")
        if self.peers:
            # Commits are fire-and-forget and must reach *every* replica
            # (a missed commit stalls every dependent instance), so the
            # overlay never thins them -- relay trees forward them, thrifty
            # falls back to plain broadcast.
            commit = ECommit(instance=instance.instance, command=instance.command, seq=seq, deps=deps)
            self._overlay.wide_cast(commit, expects_response=False)
        self._pending_execution.add(instance.instance)
        self._try_execute()

    # ------------------------------------------------------------------ acceptor path
    def _handle_preaccept(self, msg: EPreAccept) -> EPreAcceptReply:
        """Acceptor logic for a PreAccept; returns the vote without sending it."""
        local_seq, local_deps = self._conflicts_for(msg.command, exclude=msg.instance)
        merged_seq = max(msg.seq, local_seq)
        merged_deps = msg.deps | local_deps
        changed = merged_seq != msg.seq or merged_deps != msg.deps
        instance = _Instance(
            instance=msg.instance,
            command=msg.command,
            seq=merged_seq,
            deps=merged_deps,
            status=_PREACCEPTED,
        )
        existing = self.instances.get(msg.instance)
        if existing is None or existing.status == _PREACCEPTED:
            self.instances[msg.instance] = instance
        self._record_key(msg.command, msg.instance)
        self.count("preaccepts_handled")
        # Dependency bookkeeping / conflict tracking cost (see NodeCPUModel docs).
        self.ctx.charge_overhead(1.0)
        return EPreAcceptReply(
            instance=msg.instance,
            voter=self.node_id,
            ok=True,
            seq=merged_seq,
            deps=merged_deps,
            changed=changed,
        )

    def _on_preaccept(self, src: int, msg: EPreAccept) -> None:
        self.send(src, self._handle_preaccept(msg))

    def _handle_accept(self, msg: EAccept) -> EAcceptReply:
        """Acceptor logic for a slow-path Accept; returns the vote without sending it."""
        instance = self.instances.get(msg.instance)
        if instance is None:
            instance = _Instance(instance=msg.instance, command=msg.command, seq=msg.seq, deps=msg.deps)
            self.instances[msg.instance] = instance
        if instance.status not in (_COMMITTED, _EXECUTED):
            instance.seq = msg.seq
            instance.deps = msg.deps
            instance.status = _ACCEPTED
        self._record_key(msg.command, msg.instance)
        return EAcceptReply(instance=msg.instance, voter=self.node_id, ok=True)

    def _on_accept(self, src: int, msg: EAccept) -> None:
        self.send(src, self._handle_accept(msg))

    def _on_commit(self, src: int, msg: ECommit) -> None:
        instance = self.instances.get(msg.instance)
        if instance is None:
            instance = _Instance(instance=msg.instance, command=msg.command, seq=msg.seq, deps=msg.deps)
            self.instances[msg.instance] = instance
        if instance.status == _EXECUTED:
            return
        instance.seq = msg.seq
        instance.deps = msg.deps
        instance.status = _COMMITTED
        self._record_key(msg.command, msg.instance)
        self.graph.add_committed(msg.instance, msg.seq, msg.deps)
        self._pending_execution.add(msg.instance)
        self._try_execute()

    # ------------------------------------------------------------------ execution
    def _try_execute(self) -> None:
        """Attempt to execute every committed-but-unexecuted instance we know of."""
        if not self._pending_execution:
            return
        progressed = True
        total_visited = 0
        while progressed:
            progressed = False
            for instance_id in sorted(self._pending_execution):
                order, visited = self.graph.execution_order(instance_id)
                total_visited += visited
                if not order:
                    continue
                for ready_id in order:
                    self._execute_instance(ready_id)
                    self._pending_execution.discard(ready_id)
                progressed = True
        if total_visited:
            self.ctx.charge_graph_work(total_visited)

    def _apply_command(self, command) -> CommandResult:
        """Apply ``command`` with at-most-once client-session filtering.

        The same client command can be committed in *two instances*: the
        client retries a timed-out request against a different replica,
        which becomes a second opportunistic leader for it.  Both instances
        commit and execute on every replica, but applying the command twice
        would clobber writes ordered between them.  Duplicate instances
        carry the same key, so they conflict and execute in the same
        relative order everywhere -- filtering here keeps all state machines
        identical, and the cached result lets the duplicate's leader still
        answer its client correctly.
        """
        try:
            client_id = command.client_id
            request_id = command.request_id
        except AttributeError:
            return self.store.apply(command)
        if client_id is None or client_id < 0 or request_id <= 0:
            return self.store.apply(command)
        # Per-key cache: see __init__ for why eviction must be driven by
        # same-key events only under EPaxos' partial order.
        sessions = self._client_sessions.get(command.key)
        if sessions is None:
            sessions = self._client_sessions[command.key] = ClientSessionCache(
                window=self._session_window, max_clients=self.MAX_CLIENTS_PER_KEY
            )
        cached = sessions.get(client_id, request_id)
        if cached is not None:
            self.count("duplicate_commands_skipped")
            return cached
        result = self.store.apply(command)
        sessions.put(client_id, request_id, result)
        return result

    def _execute_instance(self, instance_id: InstanceId) -> None:
        instance = self.instances.get(instance_id)
        if instance is None or instance.status == _EXECUTED:
            return
        result = self._apply_command(instance.command)
        self.ctx.charge_execution(1)
        instance.status = _EXECUTED
        self.graph.mark_executed(instance_id)
        self.executed_order.append(instance_id)
        self.count("instances_executed")
        if instance.leader_here and instance.client_id is not None:
            reply = ClientReply(
                command_uid=instance.command.uid,
                request_id=instance.request_id,
                client_id=instance.client_id,
                success=True,
                result=result,
            )
            self.send(instance.client_id, reply)
            self.count("client_replies")

    # ------------------------------------------------------------------ introspection
    def status(self) -> Dict[str, object]:
        return {
            "node": self.node_id,
            "overlay": self._overlay.name,
            "instances": len(self.instances),
            "committed": self.graph.committed_count,
            "executed": self.graph.executed_count,
            "pending_execution": len(self._pending_execution),
            "kv_size": len(self.store),
            "sessions": sum(len(cache) for cache in self._client_sessions.values()),
        }
