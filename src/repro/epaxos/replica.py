"""EPaxos replica.

Implements the commit protocol of Egalitarian Paxos (Moraru et al., SOSP'13)
at the level of detail the paper's comparison needs:

* every replica is an opportunistic command leader for the client requests it
  receives;
* PreAccept computes a sequence number and dependency set from per-key
  conflict tracking, and is sent to all other replicas;
* the fast path commits after a super-majority of unchanged replies; any
  changed reply forces the slow path (an Accept round on the union of
  dependencies followed by commit);
* commits are broadcast to everyone and executed by walking the dependency
  graph (SCCs, sequence-number order).

Robustness under the adversarial harness (duplicated, dropped and reordered
messages; crashed nodes): PreAccept/Accept replies are deduplicated per
voter, the per-key conflict index is updated monotonically so stale
redeliveries cannot drop dependency edges, and execution is at-most-once per
client session (a retried command that lands in a second instance applies
once and answers from the cached result).

Communication fan-out is pluggable (:mod:`repro.overlay`): PreAccept and
Accept rounds, and the commit notifications, route through the replica's
:class:`~repro.overlay.base.FanoutOverlay`.  ``DirectFanout`` reproduces
the classic all-to-all broadcast; ``RelayFanout`` sends each round leader →
relays → group members and aggregates the replies back up (the paper's
PigPaxos overlay applied to the leaderless protocol); ``ThriftyFanout``
targets only a fast-quorum-sized subset and falls back to a full broadcast
on timeout.  Commit notifications are never thinned -- every replica needs
them or its dependency graph stalls -- so only the voting legs are
overlay-optimised.

Failure recovery (the "explicit prepare" path of Moraru et al., Section
4.7) is implemented with per-instance ballots: a replica whose execution
stays blocked on an uncommitted dependency past
``ProtocolConfig.recovery_timeout`` claims a higher ballot at a majority via
``EPrepare`` and applies the standard decision table to the replies -- adopt
any commit it learns of, finish any accept it finds, re-run phase 2 with the
attributes of a possible fast-path commit (enough identical unchanged
default-ballot PreAccepts), re-run PreAccept on the slow path when only
partial PreAccept evidence survives, and otherwise commit a dependency-
preserving no-op so the orphan can never block the cluster forever.  The
recovery deadline is tracked *lazily* from ``_try_execute`` -- a run in
which no instance ever blocks past the deadline schedules no extra events
and stays bit-for-bit identical to a recovery-free build -- and the knob
defaults to ``None`` (disabled) so existing scenarios keep their recorded
fingerprints.  Reads still execute through the full commit path (no read
leases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.epaxos.graph import DependencyGraph
from repro.epaxos.messages import (
    Ballot,
    EAccept,
    EAcceptReply,
    ECommit,
    EPreAccept,
    EPreAcceptReply,
    EPrepare,
    EPrepareReply,
    InstanceId,
    initial_ballot,
)
from repro.net.message import Message
from repro.overlay.base import FanoutOverlay
from repro.overlay.messages import OverlayMessage
from repro.protocol.base import Replica, build_batch_metrics
from repro.protocol.config import DEFAULT_RECOVERY_TIMEOUT
from repro.protocol.messages import ClientReply, ClientRequest
from repro.quorum.systems import FastQuorum
from repro.statemachine.command import Command, CommandBatch, CommandResult, NoOp
from repro.statemachine.kvstore import KVStore
from repro.statemachine.sessions import DEFAULT_SESSION_WINDOW, ClientSessionCache

_PREACCEPTED = "preaccepted"
_ACCEPTED = "accepted"
_COMMITTED = "committed"
_EXECUTED = "executed"
#: Placeholder status for a ballot-promise on an instance whose command this
#: replica has never seen (created by an EPrepare probing an unknown
#: instance).  Never reported as decided, skipped by every checker.
_UNKNOWN = "unknown"


@dataclass
class _Instance:
    """A replica's view of one EPaxos instance."""

    instance: InstanceId
    command: Optional[Command]
    seq: int
    deps: FrozenSet[InstanceId]
    status: str = _PREACCEPTED
    # Command-leader bookkeeping.  Votes are tracked as *sets of voter ids*,
    # never integer counters: the network may retransmit or duplicate a
    # reply, and a duplicated vote must not fake a quorum.
    leader_here: bool = False
    client_id: Optional[int] = None
    request_id: int = 0
    preaccept_voters: Set[int] = field(default_factory=set)
    preaccept_changed: bool = False
    merged_seq: int = 0
    merged_deps: FrozenSet[InstanceId] = frozenset()
    accept_voters: Set[int] = field(default_factory=set)
    # Ballot state for explicit-prepare recovery.  ``ballot`` is the highest
    # ballot this replica has seen (promised) for the instance;
    # ``attr_ballot`` is the ballot at which seq/deps/command were last
    # written (a bare EPrepare bumps the former but not the latter).
    # ``local_changed`` records whether this replica's PreAccept answer
    # modified the proposed attributes -- the recovery fast-path-possible
    # test needs it.  Defaults are normalised to the instance's default
    # ballot in __post_init__ so plain construction stays correct.
    ballot: Optional[Ballot] = None
    attr_ballot: Optional[Ballot] = None
    local_changed: bool = False
    retry_timer: Optional[object] = None
    #: For :class:`CommandBatch` instances led here: one (client_id,
    #: request_id) pair per sub-command, in batch order, so execution can
    #: reply per command (``client_id``/``request_id`` stay unset then).
    batch_clients: Optional[Tuple[Tuple[int, int], ...]] = None

    def __post_init__(self) -> None:
        if self.ballot is None:
            self.ballot = initial_ballot(self.instance)
        if self.attr_ballot is None:
            self.attr_ballot = self.ballot


@dataclass
class _Recovery:
    """Coordinator state for one in-flight explicit-prepare recovery."""

    instance: InstanceId
    ballot: Ballot
    phase: str = "prepare"  # "prepare" | "preaccept" | "accept"
    #: Prepare replies keyed by voter (per-voter, duplicates idempotent).
    replies: Dict[int, EPrepareReply] = field(default_factory=dict)
    #: Vote sets for the re-run PreAccept / final Accept phases.
    preaccept_voters: Set[int] = field(default_factory=set)
    accept_voters: Set[int] = field(default_factory=set)
    #: Attributes being driven to commit (set when leaving the prepare phase).
    command: Optional[Command] = None
    seq: int = 0
    deps: FrozenSet[InstanceId] = frozenset()
    noop: bool = False
    #: Highest conflicting ballot observed in nacks (retry bumps past it).
    preempted_by: Optional[Ballot] = None
    timer: Optional[object] = None


class EPaxosReplica(Replica):
    """An EPaxos node: opportunistic command leader + acceptor + executor."""

    protocol_name = "epaxos"

    #: Per-key bound on remembered client sessions; far above any plausible
    #: number of distinct clients concurrently retrying on one key.
    MAX_CLIENTS_PER_KEY = 1024

    def __init__(
        self,
        quorum: Optional[FastQuorum] = None,
        session_window: int = DEFAULT_SESSION_WINDOW,
        overlay: Optional[FanoutOverlay] = None,
        recovery_timeout: Optional[float] = DEFAULT_RECOVERY_TIMEOUT,
        leader_retry_timeout: Optional[float] = None,
        batch_max_commands: int = 1,
        batch_max_delay: Optional[float] = None,
        pipeline_depth: Optional[int] = None,
    ) -> None:
        super().__init__(overlay=overlay)
        self._quorum = quorum
        self.store = KVStore()
        self.instances: Dict[InstanceId, _Instance] = {}
        self.graph = DependencyGraph()
        self._next_instance = 0
        # Per-key conflict index: key -> {origin replica -> highest instance
        # number from that origin touching the key}.  One slot per origin
        # (the canonical EPaxos dependency shape): a single "latest
        # instance" pointer cannot represent two conflicting same-seq
        # instances from different leaders, and whichever it dropped lost
        # its dependency edge.  Updated monotonically (see
        # :meth:`_record_key`).
        self._key_index: Dict[str, Dict[int, int]] = {}
        self._pending_execution: Set[InstanceId] = set()
        # Client sessions make execution at-most-once: a client retry that
        # lands on a different opportunistic leader creates a *second*
        # instance carrying the same command, and both instances commit and
        # execute everywhere.  The two instances carry the same key, so they
        # conflict and execute in the same relative order on every replica --
        # filtering the duplicate at apply time therefore keeps all state
        # machines identical.  Unlike Multi-Paxos (total order), EPaxos only
        # orders *conflicting* commands, so every eviction decision must
        # depend solely on same-key events or it diverges across replicas
        # (cross-key interleaving legally differs).  Hence one
        # ClientSessionCache *per key*: both its inner request window and
        # its outer client LRU are driven only by that key's applies, which
        # are identically ordered everywhere.  Memory stays proportional to
        # the store itself: keys x bounded sessions x bounded window.
        self._session_window = session_window
        self._client_sessions: Dict[str, ClientSessionCache] = {}
        # Execution order as applied locally, for the cross-replica
        # execution-consistency checker (repro.checkers.invariants).
        self.executed_order: List[InstanceId] = []
        # Explicit-prepare recovery (on by default since the fuzzing PR;
        # None restores the historical degraded mode).  The
        # deadline is tracked lazily: _try_execute stamps the first virtual
        # time it finds execution blocked on an uncommitted dependency and
        # only *checks* the stamp on later passes -- no timer is ever
        # scheduled for an instance that is not already blocked.
        self._recovery_timeout = recovery_timeout
        self._first_blocked: Dict[InstanceId, float] = {}
        #: Deadline timers for stamped deps, so recovery still fires when
        #: the cluster goes quiet (no further commits re-entering
        #: _try_execute).  Armed only for instances that are already
        #: blocked, never speculatively.
        self._blocked_timers: Dict[InstanceId, object] = {}
        #: Next virtual time the blocked-dependency sweep may run.  The
        #: sweep walks pending x deps, so it is throttled to a quarter of
        #: the recovery deadline -- stamps land at most deadline/4 late,
        #: recovery fires within 1.25x the knob, and the per-commit cost
        #: between sweeps is a single comparison (the PR-4 rule: no
        #: per-message rescans on hot paths).
        self._next_blocked_scan = 0.0
        self._recoveries: Dict[InstanceId, _Recovery] = {}
        # Leader-side round retry (the PigPaxos Fig-5b behaviour, optional
        # here): an in-flight PreAccept/Accept round is re-wide_cast after
        # this long without a quorum.  None (default) keeps the historical
        # rely-on-client-retries behaviour.
        self._leader_retry_timeout = leader_retry_timeout
        # Command batching (PR 9): this replica, as an opportunistic leader,
        # buffers pairwise non-conflicting client commands and leads one
        # instance for the whole batch.  A conflicting arrival flushes the
        # buffer first (batch order would otherwise have to encode the
        # conflict ordering the instance graph exists to provide); the
        # buffer also flushes at batch_max_commands or after batch_max_delay.
        # With the delay unset, commands propose immediately and batching is
        # effectively off (EPaxos has no pipeline to park commands behind,
        # so a delay bound is what creates batching opportunities here).
        # ``pipeline_depth`` is accepted for config uniformity and ignored:
        # instances are not a pipeline.  All off (zero events, zero metric
        # registrations) at the default batch_max_commands == 1.
        del pipeline_depth
        self._batch_max_commands = batch_max_commands
        self._batch_max_delay = batch_max_delay
        self._batch_enabled = batch_max_commands > 1
        self._batch_buffer: List[Tuple[Command, int]] = []
        self._batch_timer: Optional[object] = None
        self._batch_metrics = None

    # ------------------------------------------------------------------ setup
    @property
    def quorum(self) -> FastQuorum:
        if self._quorum is None:
            self._quorum = FastQuorum(self.cluster_size)
        return self._quorum

    def start(self) -> None:
        """EPaxos needs no leader election; nothing to bootstrap."""

    def reshuffle_groups(self) -> None:
        """Re-deal this replica's relay groups (no-op for non-relay overlays)."""
        self._overlay.reshuffle()

    # ------------------------------------------------------------------ dispatch
    def on_message(self, src: int, message: Any) -> None:
        # Type-keyed dispatch table built on first use; the isinstance
        # fallback only handles overlay wrapper subtypes not in the table.
        try:
            handler = self._cached_handlers.get(type(message))
        except AttributeError:
            self._cached_handlers = {
                ClientRequest: self._on_client_request,
                EPreAccept: self._on_preaccept,
                EPreAcceptReply: self._on_preaccept_reply,
                EAccept: self._on_accept,
                EAcceptReply: self._on_accept_reply,
                ECommit: self._on_commit,
                EPrepare: self._on_prepare,
                EPrepareReply: self._on_prepare_reply,
            }
            request_handler = getattr(self._overlay, "_on_relay_request", None)
            aggregate_handler = getattr(self._overlay, "_on_aggregate", None)
            if request_handler is not None and aggregate_handler is not None:
                from repro.overlay.messages import RelayAggregate, RelayRequest

                self._cached_handlers[RelayRequest] = request_handler
                self._cached_handlers[RelayAggregate] = aggregate_handler
            handler = self._cached_handlers.get(type(message))
        if handler is not None:
            handler(src, message)
        elif isinstance(message, OverlayMessage):
            if not self._overlay.handle_message(src, message):
                self.count("unknown_message")
        else:
            self.count("unknown_message")

    # ------------------------------------------------------------------ overlay host hooks
    def process_for_overlay(self, src: int, inner: Message) -> Optional[Message]:
        """Apply a relayed inner message locally; return the vote (if any).

        Called by the relay overlay on relays and leaf followers so the
        PreAccept/Accept vote can be aggregated up the tree instead of sent
        straight back to the command leader.
        """
        if isinstance(inner, EPreAccept):
            return self._handle_preaccept(inner)
        if isinstance(inner, EAccept):
            return self._handle_accept(inner)
        if isinstance(inner, EPrepare):
            return self._handle_prepare(inner)
        if isinstance(inner, ECommit):
            self._on_commit(src, inner)
            return None
        self.on_message(src, inner)
        return None

    # ------------------------------------------------------------------ conflict tracking
    def _conflicts_for(self, command: Command, exclude: Optional[InstanceId] = None) -> Tuple[int, FrozenSet[InstanceId]]:
        """Sequence number and dependency set implied by the local key index."""
        if type(command) is CommandBatch:
            # A batch depends on everything any of its commands depends on;
            # its sequence number must exceed every conflicting instance's.
            # Acceptors recompute this on PreAccept exactly like for a plain
            # command, so the merged attributes stay key-accurate.
            seq = 1
            merged: Set[InstanceId] = set()
            for sub in command.commands:
                sub_seq, sub_deps = self._conflicts_for(sub, exclude)
                seq = max(seq, sub_seq)
                merged |= sub_deps
            return seq, frozenset(merged)
        deps: Set[InstanceId] = set()
        seq = 1
        index = self._key_index.get(command.key)
        if index:
            # lint: ok(no-unordered-iteration) accumulates into a set and a max(); order-insensitive
            for origin, number in index.items():
                last: InstanceId = (origin, number)
                if last == exclude:
                    continue
                deps.add(last)
                last_instance = self.instances.get(last)
                if last_instance is not None:
                    seq = max(seq, last_instance.seq + 1)
        return seq, frozenset(deps)

    def _record_key(self, command: Command, instance: InstanceId) -> None:
        """Record ``instance`` as its origin's latest instance on the key.

        Instance numbers from one origin are assigned in creation order, so
        per origin "highest number" is both the newest instance and the one
        with the highest sequence number -- which makes the update rule
        monotonic for free.  Messages can be retransmitted, duplicated or
        delivered late: a stale PreAccept/Commit for an *old* instance must
        not overwrite a newer index entry, or every subsequent command on
        that key silently loses its dependency edge to the newer instance
        (and can regress its sequence number).
        """
        if type(command) is CommandBatch:
            # The batch's instance is the latest same-origin instance on
            # *every* key it touches; later commands on any of those keys
            # must depend on it.
            for sub in command.commands:
                self._record_key(sub, instance)
            return
        origin, number = instance
        key = getattr(command, "key", None)
        if key is None:
            # Recovery no-ops touch no key: nothing to conflict with.
            return
        index = self._key_index.setdefault(key, {})
        current = index.get(origin)
        if current is not None and current >= number:
            if current > number:
                self.count("key_index_stale_updates_skipped")
            return
        index[origin] = number

    # ------------------------------------------------------------------ command leader path
    def _on_client_request(self, src: int, msg: ClientRequest) -> None:
        self.count("client_requests")
        command = msg.command
        client_id = command.client_id if command.client_id >= 0 else src
        if self._batch_enabled:
            self._buffer_for_batch(command, client_id)
            return
        self._lead_instance(command, client_id, command.request_id)

    # ------------------------------------------------------------------ batching
    def _batch_counters(self):
        """Lazily bound ``batch.*`` metrics (batching-enabled runs only)."""
        if self._batch_metrics is None:
            self._batch_metrics = build_batch_metrics(self.ctx.metrics)
        return self._batch_metrics

    def _buffer_for_batch(self, command: Command, client_id: int) -> None:
        """Queue a command for this leader's next batched instance.

        Flush triggers (counted under ``batch.flush.<trigger>``): a
        **conflict**ing arrival flushes the standing buffer before being
        queued itself (batches hold pairwise non-conflicting commands only,
        so the instance graph keeps providing all conflict ordering); the
        buffer reaching batch_max_commands flushes on **size**; a partial
        buffer flushes after batch_max_delay (**delay**) -- or, with no
        delay bound configured, **immediate**ly, which degenerates to the
        unbatched behaviour.
        """
        buffer = self._batch_buffer
        if buffer and any(command.conflicts_with(queued) for queued, _ in buffer):
            self._flush_batch("conflict")
        self._batch_buffer.append((command, client_id))
        if len(self._batch_buffer) >= self._batch_max_commands:
            self._flush_batch("size")
        elif self._batch_max_delay is not None:
            if self._batch_timer is None:
                self._batch_timer = self.ctx.schedule(
                    self._batch_max_delay, self._batch_delay_fired
                )
        else:
            self._flush_batch("immediate")

    def _batch_delay_fired(self) -> None:
        self._batch_timer = None
        self._flush_batch("delay")

    def _flush_batch(self, trigger: str) -> None:
        buffer = self._batch_buffer
        if not buffer:
            return
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        flushed = list(buffer)
        buffer.clear()
        by_trigger, commands_batched, occupancy = self._batch_counters()
        by_trigger[trigger].value += 1
        commands_batched.value += len(flushed)
        occupancy.observe(len(flushed))
        if len(flushed) == 1:
            command, client_id = flushed[0]
            self._lead_instance(command, client_id, command.request_id)
            return
        batch = CommandBatch(command for command, _ in flushed)
        batch_clients = tuple(
            (client_id, command.request_id) for command, client_id in flushed
        )
        self._lead_instance(batch, None, 0, batch_clients=batch_clients)

    def _lead_instance(
        self,
        command: Command,
        client_id: Optional[int],
        request_id: int,
        batch_clients: Optional[Tuple[Tuple[int, int], ...]] = None,
    ) -> None:
        self._next_instance += 1
        instance_id: InstanceId = (self.node_id, self._next_instance)
        seq, deps = self._conflicts_for(command)
        instance = _Instance(
            instance=instance_id,
            command=command,
            seq=seq,
            deps=deps,
            status=_PREACCEPTED,
            leader_here=True,
            client_id=client_id,
            request_id=request_id,
            merged_seq=seq,
            merged_deps=deps,
            batch_clients=batch_clients,
        )
        self.instances[instance_id] = instance
        self._record_key(command, instance_id)
        self.count("instances_led")
        # Dependency bookkeeping / conflict tracking cost (see NodeCPUModel docs).
        self.ctx.charge_overhead(1.0)

        if self.cluster_size == 1:
            self._commit_instance(instance, seq, deps)
            return
        preaccept = EPreAccept(instance=instance_id, command=command, seq=seq, deps=deps)
        self._overlay.wide_cast(
            preaccept,
            round_id=("pre", instance_id),
            quorum_size=self.quorum.fast_path_size,
        )
        if self._leader_retry_timeout is not None:
            instance.retry_timer = self.ctx.schedule(
                self._leader_retry_timeout, self._retry_round, instance_id
            )

    def _retry_round(self, instance_id: InstanceId) -> None:
        """Leader-side round retry: re-wide_cast the in-flight phase.

        The EPaxos counterpart of PigPaxos' Fig-5b leader retry: when a
        round stalls (a relay died mid-round, a thrifty target was severed),
        the command leader re-sends the current phase's message through the
        overlay -- which builds fresh relay trees / resamples the thrifty
        subset -- instead of waiting for the client to time out and retry
        through a different leader.
        """
        instance = self.instances.get(instance_id)
        if (
            instance is None
            or not instance.leader_here
            or instance.status in (_COMMITTED, _EXECUTED)
            or instance.ballot != initial_ballot(instance_id)
        ):
            return
        self.count("leader_round_retries")
        if instance.status == _PREACCEPTED:
            message = EPreAccept(
                instance=instance_id, command=instance.command,
                seq=instance.seq, deps=instance.deps,
            )
            round_id, quorum_size = ("pre", instance_id), self.quorum.fast_path_size
        else:
            message = EAccept(
                instance=instance_id, command=instance.command,
                seq=instance.seq, deps=instance.deps,
            )
            round_id, quorum_size = ("acc", instance_id), self.quorum.phase2_size
        self._overlay.wide_cast(message, round_id=round_id, quorum_size=quorum_size)
        instance.retry_timer = self.ctx.schedule(
            self._leader_retry_timeout, self._retry_round, instance_id
        )

    @staticmethod
    def _register_vote(voters: Set[int], voter: int) -> bool:
        """Record ``voter``; False when this voter already voted (duplicate)."""
        if voter in voters:
            return False
        voters.add(voter)
        return True

    def _on_preaccept_reply(self, src: int, msg: EPreAcceptReply) -> None:
        recovery = self._recoveries.get(msg.instance)
        if recovery is not None and recovery.phase == "preaccept":
            if msg.ballot == recovery.ballot:
                self._on_recovery_preaccept_reply(recovery, msg)
                return
            if not msg.ok and msg.ballot > recovery.ballot:
                self._note_preempted(recovery, msg.ballot)
                return
        instance = self.instances.get(msg.instance)
        if instance is None or not instance.leader_here or instance.status != _PREACCEPTED:
            return
        if not msg.ok or msg.ballot != initial_ballot(msg.instance):
            # A nack (some recovery claimed a higher ballot at this voter)
            # or a stray recovery-round reply: never count it towards the
            # original round's quorum.  The instance will be finished by the
            # recovery coordinator; the client's retry path stays the net.
            self.count("preaccept_replies_rejected")
            return
        if msg.voter == self.node_id or not self._register_vote(instance.preaccept_voters, msg.voter):
            self.count("duplicate_preaccept_replies")
            return
        instance.merged_seq = max(instance.merged_seq, msg.seq)
        instance.merged_deps = instance.merged_deps | msg.deps
        if msg.changed:
            instance.preaccept_changed = True

        # +1 accounts for the command leader's own vote.
        if len(instance.preaccept_voters) + 1 >= self.quorum.fast_path_size:
            if not instance.preaccept_changed:
                self.count("fast_path_commits")
                self._commit_instance(instance, instance.seq, instance.deps)
            else:
                self.count("slow_path_rounds")
                self._overlay.complete_round(("pre", instance.instance))
                instance.status = _ACCEPTED
                instance.seq = instance.merged_seq
                instance.deps = instance.merged_deps
                instance.accept_voters = set()
                accept = EAccept(
                    instance=instance.instance,
                    command=instance.command,
                    seq=instance.seq,
                    deps=instance.deps,
                )
                self._overlay.wide_cast(
                    accept,
                    round_id=("acc", instance.instance),
                    quorum_size=self.quorum.phase2_size,
                )

    def _on_accept_reply(self, src: int, msg: EAcceptReply) -> None:
        recovery = self._recoveries.get(msg.instance)
        if recovery is not None and recovery.phase == "accept":
            if msg.ballot == recovery.ballot:
                self._on_recovery_accept_reply(recovery, msg)
                return
            if not msg.ok and msg.ballot > recovery.ballot:
                self._note_preempted(recovery, msg.ballot)
                return
        instance = self.instances.get(msg.instance)
        if instance is None or not instance.leader_here or instance.status != _ACCEPTED:
            return
        if not msg.ok or msg.ballot != initial_ballot(msg.instance):
            return
        if msg.voter == self.node_id or not self._register_vote(instance.accept_voters, msg.voter):
            self.count("duplicate_accept_replies")
            return
        if len(instance.accept_voters) + 1 >= self.quorum.phase2_size:
            self._commit_instance(instance, instance.seq, instance.deps)

    def _commit_instance(self, instance: _Instance, seq: int, deps: FrozenSet[InstanceId]) -> None:
        if instance.status in (_COMMITTED, _EXECUTED):
            return
        self._overlay.complete_round(("pre", instance.instance))
        self._overlay.complete_round(("acc", instance.instance))
        if instance.retry_timer is not None:
            instance.retry_timer.cancel()
            instance.retry_timer = None
        self._clear_recovery_state(instance.instance)
        instance.status = _COMMITTED
        instance.seq = seq
        instance.deps = deps
        self.graph.add_committed(instance.instance, seq, deps)
        self.count("instances_committed")
        if self.peers:
            # Commits are fire-and-forget and must reach *every* replica
            # (a missed commit stalls every dependent instance), so the
            # overlay never thins them -- relay trees forward them, thrifty
            # falls back to plain broadcast.
            commit = ECommit(instance=instance.instance, command=instance.command, seq=seq, deps=deps)
            self._overlay.wide_cast(commit, expects_response=False)
        self._pending_execution.add(instance.instance)
        self._try_execute()

    # ------------------------------------------------------------------ acceptor path
    def _handle_preaccept(self, msg: EPreAccept) -> EPreAcceptReply:
        """Acceptor logic for a PreAccept; returns the vote without sending it."""
        existing = self.instances.get(msg.instance)
        if existing is not None and msg.ballot < existing.ballot:
            # A recovery claimed a higher ballot here: the original round
            # (or a stale recovery round) must not make progress against it.
            self.count("preaccepts_rejected_ballot")
            return EPreAcceptReply(
                instance=msg.instance, voter=self.node_id, ok=False,
                seq=existing.seq, deps=existing.deps, changed=False,
                ballot=existing.ballot,
            )
        local_seq, local_deps = self._conflicts_for(msg.command, exclude=msg.instance)
        merged_seq = max(msg.seq, local_seq)
        merged_deps = msg.deps | local_deps
        changed = merged_seq != msg.seq or merged_deps != msg.deps
        if existing is None:
            self.instances[msg.instance] = _Instance(
                instance=msg.instance,
                command=msg.command,
                seq=merged_seq,
                deps=merged_deps,
                status=_PREACCEPTED,
                ballot=msg.ballot,
                attr_ballot=msg.ballot,
                local_changed=changed,
            )
        elif existing.status in (_PREACCEPTED, _UNKNOWN):
            # Update in place rather than replacing the object: a recovery
            # re-PreAccept reaching the still-alive original leader must not
            # clobber its leader bookkeeping (leader_here/client_id/retry
            # timer) -- the client still deserves its reply once the
            # recovered command commits.  For default-ballot duplicates the
            # written fields are identical to a replacement.
            existing.command = msg.command
            existing.seq = merged_seq
            existing.deps = merged_deps
            existing.status = _PREACCEPTED
            existing.ballot = msg.ballot
            existing.attr_ballot = msg.ballot
            existing.local_changed = changed
        elif msg.ballot > existing.ballot:
            # Accepted/committed state outlives any re-delivered PreAccept,
            # but the ballot promise is still honoured so later lower-ballot
            # rounds are rejected.  (The reply below reports the freshly
            # merged attributes exactly as it always has -- stale-phase
            # replies are ignored at their leader, and keeping the bytes
            # identical preserves recorded fingerprints.)
            existing.ballot = msg.ballot
        self._record_key(msg.command, msg.instance)
        self.count("preaccepts_handled")
        # Dependency bookkeeping / conflict tracking cost (see NodeCPUModel docs).
        self.ctx.charge_overhead(1.0)
        return EPreAcceptReply(
            instance=msg.instance,
            voter=self.node_id,
            ok=True,
            seq=merged_seq,
            deps=merged_deps,
            changed=changed,
            ballot=msg.ballot,
        )

    def _on_preaccept(self, src: int, msg: EPreAccept) -> None:
        self.send(src, self._handle_preaccept(msg))

    def _handle_accept(self, msg: EAccept) -> EAcceptReply:
        """Acceptor logic for a slow-path Accept; returns the vote without sending it."""
        instance = self.instances.get(msg.instance)
        if instance is None:
            instance = _Instance(
                instance=msg.instance, command=msg.command, seq=msg.seq,
                deps=msg.deps, ballot=msg.ballot, attr_ballot=msg.ballot,
            )
            self.instances[msg.instance] = instance
        elif msg.ballot < instance.ballot:
            self.count("accepts_rejected_ballot")
            return EAcceptReply(
                instance=msg.instance, voter=self.node_id, ok=False,
                ballot=instance.ballot,
            )
        if instance.status not in (_COMMITTED, _EXECUTED):
            instance.command = msg.command
            instance.seq = msg.seq
            instance.deps = msg.deps
            instance.status = _ACCEPTED
            instance.ballot = msg.ballot
            instance.attr_ballot = msg.ballot
        self._record_key(msg.command, msg.instance)
        return EAcceptReply(
            instance=msg.instance, voter=self.node_id, ok=True, ballot=msg.ballot
        )

    def _on_accept(self, src: int, msg: EAccept) -> None:
        self.send(src, self._handle_accept(msg))

    def _on_commit(self, src: int, msg: ECommit) -> None:
        instance = self.instances.get(msg.instance)
        if instance is None:
            instance = _Instance(instance=msg.instance, command=msg.command, seq=msg.seq, deps=msg.deps)
            self.instances[msg.instance] = instance
        if instance.status == _EXECUTED:
            return
        if (
            instance.status == _COMMITTED
            and instance.command is not None
            and getattr(instance.command, "uid", None) != getattr(msg.command, "uid", None)
        ):
            # Two different commits for one instance is a protocol-safety
            # violation (e.g. a broken recovery no-op'ing a decided
            # instance).  Keep the first commit rather than silently
            # converging on the last writer: the post-run instance-agreement
            # checker compares final states across replicas, and
            # overwriting here would destroy exactly the divergence it
            # exists to flag.
            self.count("conflicting_commit_overwrites_refused")
            return
        # Adopt the committed command too: a recovery may have finished this
        # instance with attributes (or a no-op) differing from the PreAccept
        # this replica recorded, and every checker compares decided
        # (seq, deps, command) triples across replicas.
        instance.command = msg.command
        instance.seq = msg.seq
        instance.deps = msg.deps
        instance.status = _COMMITTED
        if instance.retry_timer is not None:
            instance.retry_timer.cancel()
            instance.retry_timer = None
        self._clear_recovery_state(msg.instance)
        self._record_key(msg.command, msg.instance)
        self.graph.add_committed(msg.instance, msg.seq, msg.deps)
        self._pending_execution.add(msg.instance)
        self._try_execute()

    # ------------------------------------------------------------------ execution
    def _try_execute(self) -> None:
        """Attempt to execute every committed-but-unexecuted instance we know of."""
        if not self._pending_execution:
            return
        progressed = True
        total_visited = 0
        while progressed:
            progressed = False
            for instance_id in sorted(self._pending_execution):
                order, visited = self.graph.execution_order(instance_id)
                total_visited += visited
                if not order:
                    continue
                for ready_id in order:
                    self._execute_instance(ready_id)
                    self._pending_execution.discard(ready_id)
                progressed = True
        if total_visited:
            self.ctx.charge_graph_work(total_visited)
        if (
            self._recovery_timeout is not None
            and self._pending_execution
            and self.ctx.now >= self._next_blocked_scan
        ):
            self._next_blocked_scan = self.ctx.now + self._recovery_timeout * 0.25
            self._maybe_recover_blocked()

    # ------------------------------------------------------------------ explicit-prepare recovery
    def _maybe_recover_blocked(self) -> None:
        """Lazy recovery arming: stamp blocked deps, recover the overdue ones.

        Called from :meth:`_try_execute` -- throttled to once per quarter
        deadline -- and only when recovery is enabled and some instance is
        still pending.  Each *newly* blocked dependency gets a stamp plus
        one deadline timer, so recovery fires even if the cluster then goes
        completely quiet; dependencies that commit in time cancel the timer
        in :meth:`_clear_recovery_state` (or on the next sweep).  No event
        is ever scheduled for an instance that is not already blocked, so
        runs in which nothing blocks -- every fault-free run, and any run
        with the knob unset -- schedule nothing and keep their recorded
        fingerprints.
        """
        now = self.ctx.now
        blocked_now: Set[InstanceId] = set()
        committed = self.graph.is_committed
        deps_of = self.graph.deps_of
        # lint: ok(no-unordered-iteration) accumulates into the blocked_now set; consumers iterate it via sorted() below
        for pending_id in self._pending_execution:
            for dep in deps_of(pending_id):
                if not committed(dep):
                    blocked_now.add(dep)
        first_blocked = self._first_blocked
        for dep in [d for d in first_blocked if d not in blocked_now]:
            del first_blocked[dep]
            timer = self._blocked_timers.pop(dep, None)
            if timer is not None:
                timer.cancel()
        deadline = self._recovery_timeout
        for dep in sorted(blocked_now):
            since = first_blocked.get(dep)
            if since is None:
                first_blocked[dep] = now
                self._blocked_timers[dep] = self.ctx.schedule(
                    deadline, self._blocked_deadline, dep
                )
            elif now - since >= deadline and dep not in self._recoveries:
                # Opportunistic path: the deadline timer may already have
                # fired (and its recovery finished or been superseded); a
                # still-blocked overdue dep is re-recovered from here.
                self._start_recovery(dep)

    def _blocked_deadline(self, dep: InstanceId) -> None:
        """The deadline timer for a stamped dependency fired."""
        self._blocked_timers.pop(dep, None)
        if (
            dep in self._first_blocked
            and dep not in self._recoveries
            and not self.graph.is_committed(dep)
        ):
            self._start_recovery(dep)

    def _next_recovery_ballot(self, instance_id: InstanceId, floor: Optional[Ballot] = None) -> Ballot:
        """A ballot above everything this replica has seen for the instance."""
        number = 0
        instance = self.instances.get(instance_id)
        if instance is not None:
            number = instance.ballot[0]
        if floor is not None and floor[0] > number:
            number = floor[0]
        return (number + 1, self.node_id)

    def _start_recovery(self, instance_id: InstanceId, floor: Optional[Ballot] = None) -> None:
        """Open an explicit-prepare round for a stuck instance."""
        instance = self.instances.get(instance_id)
        if instance is not None and instance.status in (_COMMITTED, _EXECUTED):
            return
        ballot = self._next_recovery_ballot(instance_id, floor)
        recovery = _Recovery(instance=instance_id, ballot=ballot)
        self._recoveries[instance_id] = recovery
        self.count("recoveries_started")
        prepare = EPrepare(instance=instance_id, ballot=ballot)
        # Record the coordinator's own state first (it is one of the quorum).
        self._record_prepare_reply(recovery, self._handle_prepare(prepare))
        if self._recoveries.get(instance_id) is not recovery or recovery.phase != "prepare":
            # Our own reply alone already decided the round (tiny clusters).
            return
        self._overlay.wide_cast(
            prepare,
            round_id=("prep", instance_id, ballot),
            quorum_size=self.quorum.phase1_size,
        )
        recovery.timer = self.ctx.schedule(
            self._recovery_timeout, self._recovery_retry, instance_id, ballot
        )

    def _recovery_retry(self, instance_id: InstanceId, ballot: Ballot) -> None:
        """The recovery round itself stalled (or was preempted): run it again."""
        recovery = self._recoveries.get(instance_id)
        if recovery is None or recovery.ballot != ballot:
            return
        floor = recovery.preempted_by
        self._cancel_recovery_rounds(recovery)
        del self._recoveries[instance_id]
        self.count("recovery_retries")
        self._start_recovery(instance_id, floor=floor)

    def _note_preempted(self, recovery: _Recovery, ballot: Ballot) -> None:
        """A voter promised a higher ballot; remember it for the retry."""
        if recovery.preempted_by is None or ballot > recovery.preempted_by:
            recovery.preempted_by = ballot

    def _cancel_recovery_rounds(self, recovery: _Recovery) -> None:
        if recovery.timer is not None:
            recovery.timer.cancel()
            recovery.timer = None
        self._overlay.complete_round(("prep", recovery.instance, recovery.ballot))
        self._overlay.complete_round(("rpre", recovery.instance, recovery.ballot))
        self._overlay.complete_round(("racc", recovery.instance, recovery.ballot))

    def _clear_recovery_state(self, instance_id: InstanceId) -> None:
        """The instance got committed (here or elsewhere): stop recovering it."""
        self._first_blocked.pop(instance_id, None)
        timer = self._blocked_timers.pop(instance_id, None)
        if timer is not None:
            timer.cancel()
        recovery = self._recoveries.pop(instance_id, None)
        if recovery is not None:
            self._cancel_recovery_rounds(recovery)

    # ---------------------------------------------------- recovery: acceptor side
    def _handle_prepare(self, msg: EPrepare) -> EPrepareReply:
        """Promise ``msg.ballot`` and report this replica's instance state."""
        instance = self.instances.get(msg.instance)
        if instance is None:
            # Promise must survive: create a placeholder so a late
            # default-ballot PreAccept from the original leader is rejected.
            instance = _Instance(
                instance=msg.instance, command=None, seq=0, deps=frozenset(),
                status=_UNKNOWN, ballot=msg.ballot,
                attr_ballot=initial_ballot(msg.instance),
            )
            self.instances[msg.instance] = instance
        elif msg.ballot < instance.ballot:
            self.count("prepares_rejected_ballot")
            return EPrepareReply(
                instance=msg.instance, voter=self.node_id, ok=False,
                ballot=instance.ballot, status=instance.status,
                seq=instance.seq, deps=instance.deps, command=None,
                attr_ballot=instance.attr_ballot, changed=instance.local_changed,
            )
        else:
            instance.ballot = msg.ballot
        self.count("prepares_handled")
        status = _UNKNOWN if instance.command is None else instance.status
        return EPrepareReply(
            instance=msg.instance, voter=self.node_id, ok=True,
            ballot=msg.ballot, status=status,
            seq=instance.seq, deps=instance.deps, command=instance.command,
            attr_ballot=instance.attr_ballot, changed=instance.local_changed,
        )

    def _on_prepare(self, src: int, msg: EPrepare) -> None:
        self.send(src, self._handle_prepare(msg))

    # ------------------------------------------------- recovery: coordinator side
    def _on_prepare_reply(self, src: int, msg: EPrepareReply) -> None:
        recovery = self._recoveries.get(msg.instance)
        if recovery is None or recovery.phase != "prepare":
            return
        if not msg.ok:
            if msg.ballot > recovery.ballot:
                self._note_preempted(recovery, msg.ballot)
            return
        if msg.ballot != recovery.ballot:
            return
        self._record_prepare_reply(recovery, msg)

    def _record_prepare_reply(self, recovery: _Recovery, msg: EPrepareReply) -> None:
        if msg.voter in recovery.replies:
            self.count("duplicate_prepare_replies")
            return
        recovery.replies[msg.voter] = msg
        # A commit is final the moment we learn of it -- no need to wait for
        # the rest of the quorum.
        if msg.status in (_COMMITTED, _EXECUTED) and msg.command is not None:
            self.count("recoveries_adopted_commit")
            self._finish_recovery(recovery, msg.command, msg.seq, msg.deps)
            return
        if len(recovery.replies) >= self.quorum.phase1_size:
            self._decide_recovery(recovery)

    def _decide_recovery(self, recovery: _Recovery) -> None:
        """The standard explicit-prepare decision table (Moraru et al. 4.7).

        Applied to a majority of prepare replies, most- to least-advanced
        evidence:

        1. someone saw a commit            -> adopt it (handled on arrival);
        2. someone saw an accept           -> finish phase 2 with the
           highest-ballot accepted attributes;
        3. enough identical *unchanged* default-ballot PreAccepts (at least
           floor((f+1)/2), excluding the original leader) -> the original
           fast path may have committed with exactly these attributes, so
           finish phase 2 with them;
        4. any surviving PreAccept at all  -> re-run PreAccept at the
           recovery ballot (slow path only), letting acceptors recompute
           conflicts so no dependency edge is lost;
        5. nobody has ever seen the command -> commit a no-op that carries
           the instance's known dependency edges (none, when nothing
           survives) so dependents order exactly as the checkers require.
        """
        replies = sorted(recovery.replies.values(), key=lambda r: r.voter)
        accepted = [r for r in replies if r.status == _ACCEPTED and r.command is not None]
        if accepted:
            best = max(accepted, key=lambda r: (r.attr_ballot, -r.voter))
            self.count("recoveries_from_accept")
            self._recovery_accept(recovery, best.command, best.seq, best.deps)
            return
        preaccepted = [r for r in replies if r.status == _PREACCEPTED and r.command is not None]
        origin = recovery.instance[0]
        default = initial_ballot(recovery.instance)
        groups: Dict[Tuple[int, FrozenSet[InstanceId]], List[EPrepareReply]] = {}
        for reply in preaccepted:
            if reply.voter == origin or reply.attr_ballot != default or reply.changed:
                continue
            groups.setdefault((reply.seq, reply.deps), []).append(reply)
        threshold = max((self.quorum.f + 1) // 2, 1)
        winner = None
        for attrs in sorted(groups, key=lambda a: (-len(groups[a]), a[0], sorted(a[1]))):
            if len(groups[attrs]) >= threshold:
                winner = groups[attrs][0]
                break
        if winner is not None and self._fast_commit_disproved(recovery.instance, winner):
            # A committed conflicting instance with no dependency edge in
            # either direction proves the fast path never fired (two fast
            # quorums of conflicting commands always share a non-leader
            # voter, which would have forced an edge one way or the other),
            # so adopting the winner's edge-missing attributes would be
            # unsafe -- fall through to the re-run row, which recomputes
            # conflicts and restores the edge.
            self.count("recoveries_fast_path_disproved")
            winner = None
        if winner is not None:
            # The fast path may have committed exactly these attributes at
            # the crashed leader; committing anything else could contradict
            # a replica that already received its commit broadcast.
            self.count("recoveries_from_default_preaccepts")
            self._recovery_accept(recovery, winner.command, winner.seq, winner.deps)
            return
        if preaccepted:
            base_seq = max(r.seq for r in preaccepted)
            base_deps = frozenset().union(*(r.deps for r in preaccepted))
            self.count("recoveries_repreaccepted")
            self._recovery_preaccept(recovery, preaccepted[0].command, base_seq, base_deps)
            return
        self.count("recoveries_noop")
        self._recovery_accept(recovery, NoOp(), 1, frozenset(), noop=True)

    def _fast_commit_disproved(self, instance_id: InstanceId, reply: EPrepareReply) -> bool:
        """True when local state proves the instance never fast-committed.

        The quorum-of-default-PreAccepts row must adopt the reported
        attributes *exactly* because the crashed leader may have
        fast-committed them.  But if this replica has a committed
        conflicting instance W on the same key with no edge between W and
        the recovered instance in either direction, a fast commit is
        impossible (optimized fast quorums of conflicting commands
        intersect in a non-leader replica, whose vote forces an edge), and
        adopting the edge-missing attributes would lose the conflict
        ordering.  Local knowledge only -- a disproof visible solely at
        other replicas is not consulted; that residual corner is the
        documented TryPreAccept gap.
        """
        keys = self._keys_of(reply.command)
        if not keys:
            return False

        def covered(deps: FrozenSet[InstanceId], target: InstanceId) -> bool:
            # Deps keep only the *latest* interfering instance per origin,
            # so an edge to (o, m) with m >= n transitively implies the
            # edge to (o, n): both interfere on this key, hence (o, m)'s
            # own deps chain down through every earlier same-key (o, i).
            # Membership alone misses that and manufactured false
            # disproofs of genuinely fast-committed instances (found by
            # fuzzing, seed 462).
            origin, number = target
            return any(o == origin and m >= number for o, m in deps)

        graph = self.graph
        # lint: ok(no-unordered-iteration) pure existence scan (returns True on any hit); order-insensitive
        for other_id, other in self.instances.items():
            if other_id == instance_id or other.status not in (_COMMITTED, _EXECUTED):
                continue
            if keys.isdisjoint(self._keys_of(other.command)):
                continue
            if not covered(reply.deps, other_id) and not covered(
                graph.deps_of(other_id), instance_id
            ):
                return True
        return False

    @staticmethod
    def _keys_of(command) -> FrozenSet[str]:
        """The key set a command interferes on (empty for NoOp/None)."""
        if type(command) is CommandBatch:
            return frozenset(command.keys())
        key = getattr(command, "key", None)
        return frozenset() if key is None else frozenset((key,))

    def _recovery_preaccept(self, recovery: _Recovery, command: Command,
                            seq: int, deps: FrozenSet[InstanceId]) -> None:
        """Row 4: re-run PreAccept at the recovery ballot (slow path only)."""
        recovery.phase = "preaccept"
        recovery.command = command
        recovery.seq = seq
        recovery.deps = deps
        recovery.preaccept_voters = set()
        self._overlay.complete_round(("prep", recovery.instance, recovery.ballot))
        preaccept = EPreAccept(
            instance=recovery.instance, command=command, seq=seq, deps=deps,
            ballot=recovery.ballot,
        )
        # Local state first: the coordinator is one of the quorum and its
        # conflict index must contribute (and promise the attrs).
        own = self._handle_preaccept(preaccept)
        if not own.ok:
            # Our own acceptor already promised a higher ballot: this round
            # is dead on arrival.  Counting ourselves anyway would be a
            # phantom vote (quorum math assumes the coordinator accepted);
            # record the preemption and let the retry timer re-run at a
            # higher ballot.
            self._note_preempted(recovery, own.ballot)
            return
        recovery.seq = max(recovery.seq, own.seq)
        recovery.deps = recovery.deps | own.deps
        self._overlay.wide_cast(
            preaccept,
            round_id=("rpre", recovery.instance, recovery.ballot),
            quorum_size=self.quorum.phase1_size,
        )

    def _on_recovery_preaccept_reply(self, recovery: _Recovery, msg: EPreAcceptReply) -> None:
        if not msg.ok:
            return
        if msg.voter == self.node_id or not self._register_vote(recovery.preaccept_voters, msg.voter):
            self.count("duplicate_preaccept_replies")
            return
        recovery.seq = max(recovery.seq, msg.seq)
        recovery.deps = recovery.deps | msg.deps
        # +1 accounts for the coordinator's own vote.  Never the fast path:
        # a recovered instance always finishes through an explicit Accept.
        if len(recovery.preaccept_voters) + 1 >= self.quorum.phase1_size:
            self._overlay.complete_round(("rpre", recovery.instance, recovery.ballot))
            self._recovery_accept(recovery, recovery.command, recovery.seq, recovery.deps)

    def _recovery_accept(self, recovery: _Recovery, command: Command, seq: int,
                         deps: FrozenSet[InstanceId], noop: bool = False) -> None:
        """Finish the instance through phase 2 at the recovery ballot."""
        self._overlay.complete_round(("prep", recovery.instance, recovery.ballot))
        self._overlay.complete_round(("rpre", recovery.instance, recovery.ballot))
        recovery.phase = "accept"
        recovery.command = command
        recovery.seq = seq
        recovery.deps = deps
        recovery.noop = noop
        recovery.accept_voters = set()
        accept = EAccept(
            instance=recovery.instance, command=command, seq=seq, deps=deps,
            ballot=recovery.ballot,
        )
        # Accept locally first (the coordinator votes for itself).  A nack
        # means our own acceptor promised a higher ballot since this
        # recovery started; the implicit self-vote in the quorum count
        # below would then be phantom, so abort and let the retry timer
        # re-run at a higher ballot.
        own = self._handle_accept(accept)
        if not own.ok:
            self._note_preempted(recovery, own.ballot)
            return
        self._overlay.wide_cast(
            accept,
            round_id=("racc", recovery.instance, recovery.ballot),
            quorum_size=self.quorum.phase2_size,
        )

    def _on_recovery_accept_reply(self, recovery: _Recovery, msg: EAcceptReply) -> None:
        if not msg.ok:
            return
        if msg.voter == self.node_id or not self._register_vote(recovery.accept_voters, msg.voter):
            self.count("duplicate_accept_replies")
            return
        if len(recovery.accept_voters) + 1 >= self.quorum.phase2_size:
            self._finish_recovery(recovery, recovery.command, recovery.seq, recovery.deps)

    def _finish_recovery(self, recovery: _Recovery, command: Command, seq: int,
                         deps: FrozenSet[InstanceId]) -> None:
        """Commit the recovered decision and broadcast it like any commit."""
        noop = recovery.noop
        instance = self.instances.get(recovery.instance)
        if instance is None:
            instance = _Instance(
                instance=recovery.instance, command=command, seq=seq, deps=deps,
                ballot=recovery.ballot, attr_ballot=recovery.ballot,
            )
            self.instances[recovery.instance] = instance
        instance.command = command
        # _commit_instance pops the recovery (via _clear_recovery_state),
        # cancels the fallback rounds, broadcasts the ECommit through the
        # overlay and unblocks execution of every dependent.
        self._commit_instance(instance, seq, deps)
        self.count("recoveries_completed")
        if noop:
            self.count("recovery_noop_commits")

    def _apply_command(self, command) -> CommandResult:
        """Apply ``command`` with at-most-once client-session filtering.

        The same client command can be committed in *two instances*: the
        client retries a timed-out request against a different replica,
        which becomes a second opportunistic leader for it.  Both instances
        commit and execute on every replica, but applying the command twice
        would clobber writes ordered between them.  Duplicate instances
        carry the same key, so they conflict and execute in the same
        relative order everywhere -- filtering here keeps all state machines
        identical, and the cached result lets the duplicate's leader still
        answer its client correctly.
        """
        if type(command) is CommandBatch:
            # Unpack in batch order on every replica, each sub-command
            # through its own key's session cache below, so dedup decisions
            # depend only on same-key conflict-ordered events exactly as for
            # unbatched commands.  The result tuple feeds the per-command
            # replies at the batch's leader.
            return tuple(self._apply_command(sub) for sub in command.commands)
        try:
            client_id = command.client_id
            request_id = command.request_id
        except AttributeError:
            return self.store.apply(command)
        if client_id is None or client_id < 0 or request_id <= 0:
            return self.store.apply(command)
        # Per-key cache: see __init__ for why eviction must be driven by
        # same-key events only under EPaxos' partial order.
        sessions = self._client_sessions.get(command.key)
        if sessions is None:
            sessions = self._client_sessions[command.key] = ClientSessionCache(
                window=self._session_window, max_clients=self.MAX_CLIENTS_PER_KEY
            )
        cached = sessions.get(client_id, request_id)
        if cached is not None:
            self.count("duplicate_commands_skipped")
            return cached
        result = self.store.apply(command)
        sessions.put(client_id, request_id, result)
        return result

    def _execute_instance(self, instance_id: InstanceId) -> None:
        instance = self.instances.get(instance_id)
        if instance is None or instance.status == _EXECUTED:
            return
        result = self._apply_command(instance.command)
        self.ctx.charge_execution(
            len(instance.command) if type(instance.command) is CommandBatch else 1
        )
        instance.status = _EXECUTED
        self.graph.mark_executed(instance_id)
        self.executed_order.append(instance_id)
        self.count("instances_executed")
        if instance.leader_here and instance.batch_clients is not None:
            if (
                type(instance.command) is not CommandBatch
                or len(instance.command) != len(instance.batch_clients)
            ):
                # A recovery decided this instance with something other than
                # the batch we proposed (e.g. a dependency-preserving no-op
                # after a partition).  Stay silent; every client retries.
                self.count("orphaned_batch_replies_suppressed")
                return
            for (client_id, request_id), command, sub_result in zip(
                instance.batch_clients, instance.command.commands, result
            ):
                if client_id is None or client_id < 0:
                    continue
                self.send(client_id, ClientReply(
                    command_uid=command.uid,
                    request_id=request_id,
                    client_id=client_id,
                    success=True,
                    result=sub_result,
                ))
                self.count("client_replies")
            return
        if instance.leader_here and instance.client_id is not None and not isinstance(instance.command, NoOp):
            reply = ClientReply(
                command_uid=instance.command.uid,
                request_id=instance.request_id,
                client_id=instance.client_id,
                success=True,
                result=result,
            )
            self.send(instance.client_id, reply)
            self.count("client_replies")

    # ------------------------------------------------------------------ crash / recover
    def on_crash(self) -> None:
        # Instances/log/store model stable storage and survive; the batch
        # buffer is leader-volatile state -- buffered commands were never
        # proposed, so they are simply lost and their clients retry.
        super().on_crash()
        if self._batch_enabled:
            self._batch_buffer.clear()
            if self._batch_timer is not None:
                self._batch_timer.cancel()
                self._batch_timer = None

    # ------------------------------------------------------------------ introspection
    def status(self) -> Dict[str, object]:
        return {
            "node": self.node_id,
            "overlay": self._overlay.name,
            "instances": len(self.instances),
            "committed": self.graph.committed_count,
            "executed": self.graph.executed_count,
            "pending_execution": len(self._pending_execution),
            "recoveries_in_flight": len(self._recoveries),
            "kv_size": len(self.store),
            "sessions": sum(len(cache) for cache in self._client_sessions.values()),
        }
