"""Exception hierarchy for the PigPaxos reproduction library.

All library-specific exceptions derive from :class:`ReproError` so callers can
catch everything raised by the library with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """A cluster, protocol, or workload configuration is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class NetworkError(ReproError):
    """A simulated network operation could not be carried out."""


class ProtocolError(ReproError):
    """A consensus protocol reached an inconsistent internal state."""


class QuorumError(ReproError):
    """A quorum system was configured or queried incorrectly."""


class StateMachineError(ReproError):
    """The replicated log or key-value store was driven incorrectly."""


class WorkloadError(ReproError):
    """A workload specification or client was configured incorrectly."""


class BenchmarkError(ReproError):
    """A benchmark run could not be completed."""


class RuntimeTransportError(ReproError):
    """The asyncio (real network) runtime hit a transport-level problem."""
