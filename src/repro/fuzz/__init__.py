"""Grammar-driven fault-schedule fuzzing for the scenario engine.

The fuzz tier sits on top of the deterministic scenario engine
(:mod:`repro.scenarios`) and turns it into a property-based testing rig:

* :mod:`repro.fuzz.grammar` -- samples random-but-valid scenarios (cluster
  shape, protocol x overlay, workload mix, timed fault schedule) from a
  seeded RNG.  Same fuzz seed => bit-identical ``Scenario``.
* :mod:`repro.fuzz.shrink` -- minimizes any checker-violating scenario to
  a small repro and renders it as a library-ready ``Scenario(...)``
  literal for check-in.
* :mod:`repro.fuzz.mutations` -- re-seeds three known (fixed) EPaxos bugs
  so the fleet can prove it actually finds and shrinks real violations.
* :mod:`repro.fuzz.fleet` -- drives many seeds, optionally across worker
  processes and under a wall-clock budget, shrinking every finding.

CLI entry point: ``python -m repro.fuzz --help``.
"""

from repro.fuzz.fleet import FleetFinding, FleetReport, run_fleet
from repro.fuzz.grammar import (
    CLUSTER_SHAPES,
    DEFAULT_PROFILE,
    FuzzProfile,
    generate_scenario,
)
from repro.fuzz.mutations import MUTATIONS, apply_mutation
from repro.fuzz.shrink import (
    ShrinkResult,
    scenario_literal,
    shrink,
    violating_checkers,
)

__all__ = [
    "CLUSTER_SHAPES",
    "DEFAULT_PROFILE",
    "FleetFinding",
    "FleetReport",
    "FuzzProfile",
    "MUTATIONS",
    "ShrinkResult",
    "apply_mutation",
    "generate_scenario",
    "run_fleet",
    "scenario_literal",
    "shrink",
    "violating_checkers",
]
