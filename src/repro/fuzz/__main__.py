"""CLI for the fuzz tier.

Single-seed replay (deterministic: the same ``--seed`` always regenerates
the same schedule)::

    PYTHONPATH=src python -m repro.fuzz --seed 42            # generate + run
    PYTHONPATH=src python -m repro.fuzz --seed 42 --emit     # print literal only
    PYTHONPATH=src python -m repro.fuzz --seed 42 --shrink   # minimize if violating

Seed fleets (exit status 1 when any finding survives)::

    PYTHONPATH=src python -m repro.fuzz --fleet 200 --parallel 0
    PYTHONPATH=src python -m repro.fuzz --fleet 40 --mutation key-index \\
        --protocols epaxos --artifacts /tmp/fuzz-out
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.fuzz.fleet import FleetReport, run_fleet
from repro.fuzz.grammar import DEFAULT_PROFILE, generate_scenario
from repro.fuzz.mutations import MUTATIONS, apply_mutation
from repro.fuzz.shrink import scenario_literal, shrink
from repro.scenarios.runner import run_scenario


def _run_single(args, profile) -> int:
    scenario = generate_scenario(args.seed, profile)
    if args.emit:
        print(scenario_literal(scenario))
        return 0
    with apply_mutation(args.mutation):
        result = run_scenario(scenario)
        status = "ok" if result.ok else "VIOLATIONS"
        print(
            f"fuzz seed {args.seed}: {scenario.protocol} x{scenario.num_nodes} "
            f"-- {status}, {result.completed_requests} ops, "
            f"{result.events_processed} events"
        )
        for violation in result.violations:
            print(f"  [{violation.checker}] {violation.message}")
        print()
        print(scenario_literal(scenario))
        if result.ok or not args.shrink:
            return 0 if result.ok else 1
        shrunk = shrink(scenario, max_runs=args.max_shrink_runs)
    print()
    print(
        f"shrunk in {shrunk.runs} runs "
        f"({len(shrunk.steps)} reductions: {', '.join(shrunk.steps)}):"
    )
    print(scenario_literal(shrunk.shrunk))
    return 1


def _write_artifacts(report: FleetReport, directory: Path) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    for finding in report.findings:
        path = directory / f"finding-{finding.seed}.md"
        path.write_text(
            f"# Fuzz finding: seed {finding.seed}\n\n```\n"
            + finding.report()
            + "\n```\n"
        )
    summary = {
        "summary": report.summary(),
        "ok": report.ok,
        "start_seed": report.start_seed,
        "requested": report.requested,
        "seeds_run": report.seeds_run,
        "mutation": report.mutation,
        "wall_seconds": round(report.wall_seconds, 2),
        "findings": [
            {
                "seed": f.seed,
                "checkers": list(f.checkers),
                "violations": len(f.violations),
                "shrunk_events": None if f.shrunk is None else len(f.shrunk.events),
                "shrunk_nodes": None if f.shrunk is None else f.shrunk.num_nodes,
            }
            for f in report.findings
        ],
    }
    (directory / "report.json").write_text(json.dumps(summary, indent=1) + "\n")
    print(f"wrote {len(report.findings)} finding file(s) + report.json to {directory}")


def _run_fleet(args, profile) -> int:
    report = run_fleet(
        start_seed=args.start_seed,
        count=args.fleet,
        profile=profile,
        mutation=args.mutation,
        parallel=args.parallel,
        time_budget=args.time_budget,
        max_shrink_runs=args.max_shrink_runs,
        verbose=True,
    )
    print()
    print(report.summary())
    for finding in report.findings:
        print()
        print(finding.report())
    if args.artifacts is not None:
        _write_artifacts(report, args.artifacts)
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__[__doc__.index("\n"):],
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--seed", type=int, help="generate and run one fuzz seed")
    mode.add_argument("--fleet", type=int, metavar="N",
                      help="fuzz N consecutive seeds, shrinking every finding")
    parser.add_argument("--emit", action="store_true",
                        help="with --seed: print the Scenario literal and exit")
    parser.add_argument("--shrink", action="store_true",
                        help="with --seed: shrink the schedule if it violates")
    parser.add_argument("--start-seed", type=int, default=0,
                        help="with --fleet: first seed (default 0)")
    parser.add_argument("--parallel", type=int, default=None, metavar="N",
                        help="with --fleet: worker processes (0 = one per core)")
    parser.add_argument("--mutation", choices=sorted(MUTATIONS), default=None,
                        help="run with a named re-seeded bug (calibration mode)")
    parser.add_argument("--time-budget", type=float, default=None, metavar="SEC",
                        help="with --fleet: stop starting new seeds after SEC")
    parser.add_argument("--max-shrink-runs", type=int, default=250,
                        help="scenario-execution budget per shrink (default 250)")
    parser.add_argument("--artifacts", type=Path, default=None, metavar="DIR",
                        help="with --fleet: write finding-<seed>.md + report.json")
    parser.add_argument("--protocols", default=None,
                        help="comma-separated protocol subset, e.g. 'epaxos'")
    parser.add_argument("--hierarchy-probability", type=float, default=None,
                        metavar="P",
                        help="override the planet-hierarchy redeploy "
                             "probability (0 disables the dimension)")
    args = parser.parse_args(argv)

    profile = DEFAULT_PROFILE
    if args.protocols:
        profile = replace(
            profile, protocols=tuple(args.protocols.split(","))
        )
    if args.hierarchy_probability is not None:
        profile = replace(
            profile, hierarchy_probability=args.hierarchy_probability
        )
    if args.parallel == 0:
        from repro.scenarios.sweep import default_workers
        args.parallel = default_workers()

    if args.seed is not None:
        return _run_single(args, profile)
    return _run_fleet(args, profile)


if __name__ == "__main__":
    sys.exit(main())
