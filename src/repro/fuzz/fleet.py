"""Seed-fleet driver: fuzz many schedules, shrink every finding.

``run_fleet`` expands a contiguous block of fuzz seeds through the grammar
(:mod:`repro.fuzz.grammar`), runs them -- serially or across worker
processes, reusing the scenario sweep pool machinery -- and, for every
schedule that trips a checker, shrinks it to a minimal repro and renders
the library-ready literal.  Findings are fully replayable: each carries
its fuzz seed, so ``python -m repro.fuzz --seed S`` regenerates the exact
schedule that failed.

Determinism: the set of findings for a given (profile, seed range,
mutation) is identical however many workers ran the sweep -- each seed's
run is single-process deterministic and findings are reported in seed
order.  A wall-clock budget (``time_budget``) makes the fleet usable as a
time-boxed CI job: generation stops starting new seeds once the budget is
spent (findings already made are still shrunk and reported, so a budgeted
run never drops evidence it already has).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.fuzz.grammar import DEFAULT_PROFILE, FuzzProfile, generate_scenario
from repro.fuzz.mutations import apply_mutation
from repro.fuzz.shrink import ShrinkResult, scenario_literal, shrink
from repro.scenarios.spec import Scenario
from repro.scenarios.sweep import SweepOutcome, pool_context, run_outcome


@dataclass(frozen=True)
class FleetFinding:
    """One checker-violating fuzz schedule, plus its shrunk repro."""

    seed: int
    scenario: Scenario
    checkers: Tuple[str, ...]
    violations: Tuple[Tuple[str, str], ...]
    shrunk: Optional[Scenario] = None
    shrink_steps: Tuple[str, ...] = ()
    shrink_runs: int = 0

    def report(self) -> str:
        """Human-readable finding: evidence first, then both literals."""
        lines = [
            f"fuzz seed {self.seed}: {len(self.violations)} violation(s) "
            f"from {', '.join(self.checkers)}",
        ]
        for _, message in self.violations[:5]:
            lines.append(f"  {message}")
        if len(self.violations) > 5:
            lines.append(f"  ... and {len(self.violations) - 5} more")
        lines.append("")
        lines.append(f"replay: python -m repro.fuzz --seed {self.seed}")
        lines.append("")
        lines.append("generated schedule:")
        lines.append(scenario_literal(self.scenario, indent="    "))
        if self.shrunk is not None:
            lines.append("")
            lines.append(
                f"shrunk repro ({self.shrink_runs} runs, "
                f"{len(self.shrink_steps)} reductions):"
            )
            lines.append(scenario_literal(self.shrunk, indent="    "))
        return "\n".join(lines)


@dataclass
class FleetReport:
    """Everything one fleet run produced."""

    start_seed: int
    requested: int
    seeds_run: int
    findings: List[FleetFinding]
    mutation: Optional[str]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.findings)} FINDING(S)"
        budgeted = "" if self.seeds_run == self.requested else (
            f" ({self.requested - self.seeds_run} skipped on time budget)"
        )
        mutation = f", mutation={self.mutation}" if self.mutation else ""
        return (
            f"fuzz fleet: {status} over seeds "
            f"[{self.start_seed}, {self.start_seed + self.seeds_run})"
            f"{budgeted}{mutation}, {self.wall_seconds:.1f}s wall"
        )


def _fuzz_worker(args: Tuple[int, FuzzProfile, Optional[str]]) -> Tuple[int, SweepOutcome]:
    """Worker-process entry point: generate one seed's schedule and run it."""
    seed, profile, mutation = args
    with apply_mutation(mutation):
        return seed, run_outcome(generate_scenario(seed, profile))


def _outcomes(
    seeds: List[int],
    profile: FuzzProfile,
    mutation: Optional[str],
    parallel: Optional[int],
    deadline: Optional[float],
) -> Iterator[Tuple[int, SweepOutcome]]:
    """Yield (seed, outcome) pairs, stopping at the wall-clock deadline."""
    jobs = [(seed, profile, mutation) for seed in seeds]
    if parallel is None or parallel <= 1:
        for job in jobs:
            if deadline is not None and time.monotonic() >= deadline:  # lint: ok(no-wall-clock) fleet time budget is real elapsed time; sim results unaffected
                return
            yield _fuzz_worker(job)
        return
    with pool_context().Pool(processes=parallel) as pool:
        results = pool.imap(_fuzz_worker, jobs, chunksize=1)
        while True:
            if deadline is not None and time.monotonic() >= deadline:  # lint: ok(no-wall-clock) fleet time budget is real elapsed time; sim results unaffected
                pool.terminate()
                return
            try:
                timeout = None if deadline is None else max(
                    0.1, deadline - time.monotonic()  # lint: ok(no-wall-clock) fleet time budget is real elapsed time; sim results unaffected
                )
                yield results.next(timeout=timeout)
            except StopIteration:
                return
            except multiprocessing.TimeoutError:
                pool.terminate()
                return


def run_fleet(
    start_seed: int = 0,
    count: int = 100,
    profile: FuzzProfile = DEFAULT_PROFILE,
    mutation: Optional[str] = None,
    parallel: Optional[int] = None,
    time_budget: Optional[float] = None,
    shrink_findings: bool = True,
    max_shrink_runs: int = 250,
    stop_after: Optional[int] = None,
    verbose: bool = False,
) -> FleetReport:
    """Fuzz ``count`` seeds starting at ``start_seed``; shrink what fails.

    ``stop_after`` short-circuits the sweep once that many findings exist
    (mutation-calibration runs only need the first).  Shrinking happens in
    the parent process, under the same mutation patch the fleet ran with,
    so the shrunk repro is validated against the same (buggy) code that
    produced the violation.
    """
    started = time.monotonic()  # lint: ok(no-wall-clock) fleet time budget is real elapsed time; sim results unaffected
    deadline = None if time_budget is None else started + time_budget
    seeds = list(range(start_seed, start_seed + count))
    seeds_run = 0
    raw_findings: List[Tuple[int, SweepOutcome]] = []
    for seed, outcome in _outcomes(seeds, profile, mutation, parallel, deadline):
        seeds_run += 1
        if verbose and seeds_run % 25 == 0:
            print(f"  ... {seeds_run}/{count} seeds, "
                  f"{len(raw_findings)} finding(s)")
        if not outcome.ok:
            raw_findings.append((seed, outcome))
            if verbose:
                print(f"  FINDING at seed {seed}: "
                      f"{', '.join(outcome.checkers_violated)}")
            if stop_after is not None and len(raw_findings) >= stop_after:
                break

    findings: List[FleetFinding] = []
    for seed, outcome in sorted(raw_findings):
        scenario = generate_scenario(seed, profile)
        shrunk: Optional[ShrinkResult] = None
        if shrink_findings:
            with apply_mutation(mutation):
                target = frozenset(outcome.checkers_violated)
                shrunk = shrink(scenario, target=target, max_runs=max_shrink_runs)
        findings.append(
            FleetFinding(
                seed=seed,
                scenario=scenario,
                checkers=outcome.checkers_violated,
                violations=outcome.violations,
                shrunk=None if shrunk is None else shrunk.shrunk,
                shrink_steps=() if shrunk is None else shrunk.steps,
                shrink_runs=0 if shrunk is None else shrunk.runs,
            )
        )

    return FleetReport(
        start_seed=start_seed,
        requested=count,
        seeds_run=seeds_run,
        findings=findings,
        mutation=mutation,
        wall_seconds=time.monotonic() - started,  # lint: ok(no-wall-clock) reported wall-clock duration of the fleet itself
    )
