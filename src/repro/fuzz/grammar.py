"""Grammar-driven random fault-schedule generation.

One fuzz seed deterministically expands into one complete
:class:`~repro.scenarios.spec.Scenario`: cluster shape (3-25 nodes, all
three protocols, LAN or the paper's three-region WAN), fan-out overlay,
workload mix, protocol knobs, and a timed fault schedule sampled from the
same grammar of events the hand-written library uses (crash/restart,
partition/heal, drop and duplicate storms, link severing, sluggish nodes,
relay reshuffles).  ``generate_scenario(seed) == generate_scenario(seed)``
bit-for-bit, and the scenario run itself is deterministic per seed, so
every fuzz finding is replayable from its integer seed alone.

The grammar is *stateful*: events are sampled against the schedule built so
far (only crashed nodes recover, storms toggle off only when on, at most a
minority is down at once unless the profile allows total loss), so
generated schedules are adversarial but structurally sensible rather than
rejection-sampled noise.

Example::

    from repro.fuzz import generate_scenario
    from repro.scenarios import run_scenario

    scenario = generate_scenario(seed=1234)
    result = run_scenario(scenario)
    result.raise_on_violations()
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenarios.library import EPAXOS_CHECK_NAMES
from repro.scenarios.spec import Scenario, ScenarioEvent
from repro.workload.spec import WorkloadSpec

#: Cluster sizes the shape sampler draws from -- small shapes repeated so
#: most runs stay cheap, with the paper-scale sizes kept in rotation.
CLUSTER_SHAPES = (3, 4, 5, 5, 5, 6, 7, 7, 9, 9, 12, 15, 19, 25)


@dataclass(frozen=True)
class FuzzProfile:
    """Knobs bounding what the grammar may generate.

    The default profile is the fleet workhorse: every protocol and overlay,
    up to eight timed events, one-to-two virtual seconds per run.  Narrower
    profiles aim the fuzzer (e.g. ``FuzzProfile(protocols=("epaxos",))``
    for mutation-fuzz runs re-finding known EPaxos bugs).
    """

    protocols: Tuple[str, ...] = ("paxos", "pigpaxos", "epaxos")
    min_events: int = 1
    max_events: int = 8
    durations: Tuple[float, ...] = (1.0, 1.5, 2.0)
    #: Probability a run uses the three-region WAN topology.
    wan_probability: float = 0.25
    #: Allow schedules that crash nodes (majority always stays up).
    allow_crashes: bool = True
    #: Upper bound on co-hosted consensus groups (1 disables the sharding
    #: dimension entirely -- e.g. for replaying pre-sharding findings).
    max_shards: int = 8
    #: Probability a LAN run redeploys onto a region/zone planet hierarchy
    #: (0 disables the dimension -- e.g. for replaying pre-hierarchy
    #: findings).  WAN runs never redeploy; the two topologies are
    #: mutually exclusive in the spec.
    hierarchy_probability: float = 0.15

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ConfigurationError("profile needs at least one protocol")
        for protocol in self.protocols:
            if protocol not in ("paxos", "pigpaxos", "epaxos"):
                raise ConfigurationError(f"unknown protocol {protocol!r}")
        if self.min_events < 0 or self.max_events < self.min_events:
            raise ConfigurationError("need 0 <= min_events <= max_events")
        if not self.durations:
            raise ConfigurationError("profile needs at least one duration")
        if self.max_shards < 1:
            raise ConfigurationError("max_shards must be >= 1")
        if not 0.0 <= self.hierarchy_probability <= 1.0:
            raise ConfigurationError("hierarchy_probability must be in [0, 1]")


DEFAULT_PROFILE = FuzzProfile()


def generate_scenario(seed: int, profile: FuzzProfile = DEFAULT_PROFILE) -> Scenario:
    """Expand one fuzz seed into a complete, runnable scenario.

    The returned scenario's own ``seed`` equals the fuzz seed, so the
    simulation run is pinned by the same integer that pinned the grammar
    draws: ``python -m repro.fuzz --seed S`` reproduces both the schedule
    and the run.
    """
    rng = random.Random(seed)
    protocol = rng.choice(profile.protocols)
    num_nodes = rng.choice(CLUSTER_SHAPES)
    wan = num_nodes >= 3 and rng.random() < profile.wan_probability
    duration = rng.choice(profile.durations)
    num_clients = rng.randint(2, 6)
    workload = WorkloadSpec(
        num_keys=rng.choice((1, 2, 3, 5, 8, 25)),
        read_ratio=rng.choice((0.0, 0.25, 0.5, 0.8)),
        distribution=rng.choice(("uniform", "uniform", "zipfian")),
        unique_values=True,
    )

    relay_groups: Optional[int] = None
    use_region_groups = False
    config_overrides: Dict[str, object] = {}

    if protocol == "pigpaxos":
        if wan and rng.random() < 0.5:
            use_region_groups = True
        else:
            relay_groups = rng.randint(1, max(1, min(4, num_nodes - 1)))
        if rng.random() < 0.25:
            config_overrides["relay_timeout"] = rng.choice((0.02, 0.1))
        if rng.random() < 0.25:
            config_overrides["group_response_threshold"] = rng.choice((0.5, 0.75))
    else:
        overlay = _sample_overlay(rng, protocol, num_nodes, wan)
        if overlay is not None:
            config_overrides["overlay"] = overlay

    if protocol == "epaxos":
        roll = rng.random()
        if roll < 0.15:
            # Degraded mode: recovery off, the historical behaviour.
            config_overrides["recovery_timeout"] = None
        elif roll < 0.4:
            config_overrides["recovery_timeout"] = rng.choice((0.15, 0.4))
        if rng.random() < 0.2:
            config_overrides["leader_retry_timeout"] = rng.choice((0.2, 0.35))
        if rng.random() < 0.15:
            config_overrides["session_window"] = rng.choice((2, 4))

    events = _generate_events(rng, profile, protocol, num_nodes, duration,
                              relayish=protocol == "pigpaxos"
                              or _overlay_kind(config_overrides) == "relay")

    checks: Tuple[str, ...] = ("linearizability", "log_invariants")
    if protocol == "epaxos":
        checks = EPAXOS_CHECK_NAMES

    client_timeout = rng.choice((0.3, 0.4, 0.5))
    # Sharding dimension -- drawn LAST so every pre-sharding fuzz seed
    # expands to the same shape and fault schedule it always did (adding a
    # draw earlier would reshuffle every subsequent choice and invalidate
    # all recorded findings).  Most runs stay single-group; sharded runs
    # sweep 2-8 co-hosted consensus groups, capped by the keyspace.
    shards = 1
    if profile.max_shards > 1 and rng.random() < 0.35:
        shards = min(rng.randint(2, profile.max_shards), workload.num_keys)

    # Batching dimension -- drawn last (after shards) for the same
    # stability reason: every pre-batching fuzz seed keeps its recorded
    # expansion of all earlier draws.  Paxos-family runs mix pipeline
    # bounds and optional delay flushes; EPaxos always gets a delay bound
    # (without one its batching degenerates to unbatched -- instances are
    # not a pipeline, so only time creates batching windows there).  Every
    # delay stays well under the smallest client_timeout above.
    if rng.random() < 0.3:
        config_overrides["batch_max_commands"] = rng.choice((2, 4, 8))
        if protocol == "epaxos":
            config_overrides["batch_max_delay"] = rng.choice((0.005, 0.02))
        else:
            if rng.random() < 0.6:
                config_overrides["pipeline_depth"] = rng.choice((1, 2, 4))
            if rng.random() < 0.4:
                config_overrides["batch_max_delay"] = rng.choice((0.005, 0.02))

    # Hierarchy dimension -- drawn last (after batching), again so every
    # earlier fuzz seed keeps its recorded expansion.  A LAN run sometimes
    # redeploys onto a region/zone planet topology (WAN runs never do: the
    # spec makes the two mutually exclusive), and half of those redeploys
    # also align the fan-out with the hierarchy -- zone-aware relay trees,
    # sometimes two levels deep with the hop-by-hop commit fallback on.
    hierarchy: Optional[Tuple[int, int]] = None
    if not wan and rng.random() < profile.hierarchy_probability:
        hierarchy = (min(rng.choice((2, 3)), num_nodes), rng.choice((2, 3)))
        if protocol != "paxos" and rng.random() < 0.5:
            relay_levels = rng.choice((1, 2))
            if protocol == "pigpaxos":
                relay_groups = None
                use_region_groups = True
                config_overrides["relay_levels"] = relay_levels
            else:
                overlay = {"kind": "relay", "use_region_groups": True,
                           "relay_levels": relay_levels}
                if rng.random() < 0.5:
                    overlay["commit_fallback_timeout"] = rng.choice((0.1, 0.25))
                if rng.random() < 0.3:
                    overlay["fixed_relays"] = True
                config_overrides["overlay"] = overlay

    return Scenario(
        name=f"fuzz-{seed}",
        protocol=protocol,
        num_nodes=num_nodes,
        num_clients=num_clients,
        duration=duration,
        seed=seed,
        relay_groups=relay_groups,
        wan=wan,
        hierarchy=hierarchy,
        use_region_groups=use_region_groups,
        workload=workload,
        client_timeout=client_timeout,
        shards=shards,
        events=events,
        config_overrides=config_overrides or None,
        checks=checks,
        description=f"Grammar-fuzzed fault schedule (fuzz seed {seed}).",
    )


def _overlay_kind(config_overrides: Dict[str, object]) -> Optional[str]:
    overlay = config_overrides.get("overlay")
    if isinstance(overlay, dict):
        return str(overlay.get("kind", "direct"))
    return None


def _sample_overlay(
    rng: random.Random, protocol: str, num_nodes: int, wan: bool
) -> Optional[Dict[str, object]]:
    """Overlay config dict for paxos/epaxos (pigpaxos IS the relay overlay)."""
    kinds = ["direct", "thrifty"]
    if protocol == "epaxos":
        kinds.append("relay")
    kind = rng.choice(kinds)
    if kind == "direct":
        # Leave the default in place half the time so the "no overlay
        # config at all" path stays fuzzed too.
        return {"kind": "direct"} if rng.random() < 0.5 else None
    if kind == "thrifty":
        return {"kind": "thrifty",
                "thrifty_fallback_timeout": rng.choice((0.08, 0.15))}
    overlay: Dict[str, object] = {"kind": "relay"}
    if wan and rng.random() < 0.7:
        overlay["use_region_groups"] = True
    else:
        overlay["num_groups"] = rng.randint(2, max(2, min(4, num_nodes - 1)))
    if rng.random() < 0.3:
        overlay["relay_timeout"] = rng.choice((0.02, 0.1))
    return overlay


def _generate_events(
    rng: random.Random,
    profile: FuzzProfile,
    protocol: str,
    num_nodes: int,
    duration: float,
    relayish: bool,
) -> Tuple[ScenarioEvent, ...]:
    """Sample a structurally sensible timed fault schedule.

    Walks sampled fire times in order, choosing each action from the set
    valid in the schedule's current state (tracked crash set, partition and
    storm flags), so e.g. ``recover`` only ever names a crashed node and a
    majority stays up at all times.
    """
    count = rng.randint(profile.min_events, profile.max_events)
    times = sorted(round(rng.uniform(0.1 * duration, 0.9 * duration), 3)
                   for _ in range(count))

    events: List[ScenarioEvent] = []
    crashed: List[int] = []         # sorted list, not a set: iteration order
    partitioned = False
    severed: List[Tuple[int, int]] = []
    drop_active = False
    dup_active = False
    majority = num_nodes // 2 + 1
    max_down = num_nodes - majority if profile.allow_crashes else 0

    for at in times:
        candidates: List[str] = ["sluggish", "set_drop", "duplicate_storm"]
        if len(crashed) < max_down:
            candidates += ["crash", "crash", "crash_leader"]
        if crashed:
            candidates += ["recover", "recover", "recover_all"]
        if not partitioned and max_down >= 1:
            candidates += ["partition", "partition"]
        if partitioned:
            candidates += ["heal_partition"] * 3
        if num_nodes >= 4 and len(severed) < 2:
            candidates.append("sever_link")
        if severed:
            candidates.append("heal_link")
        if relayish:
            candidates += ["reshuffle_relays", "reshuffle_relays"]

        action = rng.choice(candidates)
        if action == "crash":
            alive = [n for n in range(num_nodes) if n not in crashed]
            node = rng.choice(alive)
            crashed = sorted(crashed + [node])
            events.append(ScenarioEvent.crash(at, node=node))
        elif action == "crash_leader":
            # Dynamic target; conservatively counts against the crash
            # budget (the leader is alive by definition when it fires).
            crashed = sorted(crashed + [-1 - len(crashed)])
            events.append(ScenarioEvent.crash_leader(at))
        elif action == "recover":
            node = rng.choice(crashed)
            crashed = [n for n in crashed if n != node]
            if node >= 0:
                events.append(ScenarioEvent.recover(at, node=node))
            else:
                # A crash_leader placeholder: only recover_all can name it.
                events.append(ScenarioEvent.recover_all(at))
                crashed = []
        elif action == "recover_all":
            crashed = []
            events.append(ScenarioEvent.recover_all(at))
        elif action == "partition":
            minority_size = rng.randint(1, max_down)
            minority = sorted(rng.sample(range(num_nodes), minority_size))
            rest = [n for n in range(num_nodes) if n not in minority]
            events.append(ScenarioEvent.partition(at, rest, minority))
            partitioned = True
        elif action == "heal_partition":
            events.append(ScenarioEvent.heal_partition(at))
            partitioned = False
        elif action == "sever_link":
            a, b = rng.sample(range(num_nodes), 2)
            severed.append((a, b))
            events.append(ScenarioEvent.sever_link(at, a, b))
        elif action == "heal_link":
            a, b = severed.pop(rng.randrange(len(severed)))
            events.append(ScenarioEvent.heal_link(at, a, b))
        elif action == "sluggish":
            node = rng.randrange(num_nodes)
            events.append(ScenarioEvent.sluggish(at, node=node,
                                                 factor=rng.choice((2.0, 5.0, 10.0))))
        elif action == "set_drop":
            probability = 0.0 if drop_active else rng.choice((0.05, 0.15, 0.25))
            drop_active = not drop_active
            events.append(ScenarioEvent.set_drop(at, probability=probability))
        elif action == "duplicate_storm":
            probability = 0.0 if dup_active else rng.choice((0.1, 0.2, 0.35))
            dup_active = not dup_active
            events.append(ScenarioEvent.duplicate_storm(at, probability=probability))
        elif action == "reshuffle_relays":
            events.append(ScenarioEvent.reshuffle_relays(at))

    return tuple(events)
