"""Re-seedable known bugs for mutation-fuzz calibration.

A fuzzer you have never seen find a bug is just a random workload
generator.  This module re-seeds the three latent EPaxos bugs fixed in the
"EPaxos under adversity" PR -- the same mutations the scenario-level
mutation tests pin -- as named, reversible patches, so the fleet driver can
prove end-to-end that random schedules + checkers + shrinking actually
flush real protocol bugs out:

* ``vote-dedup`` -- every delivered PreAccept/Accept reply counts as a
  fresh vote, so a retransmission storm fakes fast-path quorums and drops
  conflict edges (the pre-fix reply counting).
* ``key-index`` -- the per-key conflict index keeps a single
  last-writer-wins slot instead of one per origin replica, silently
  dropping dependency edges under contention.
* ``planner-order`` -- the execution planner sorts strongly connected
  components by instance id alone, dropping the (seq, id) tie-break, so
  replicas execute dependency cycles in different orders.

``python -m repro.fuzz --fleet 40 --mutation vote-dedup --protocols epaxos``
must find (and shrink) a violation; ``tests/test_fuzz.py`` gates all three.

Usage::

    from repro.fuzz.mutations import apply_mutation

    with apply_mutation("key-index"):
        result = run_scenario(generate_scenario(seed))
    # patches are restored on exit, even on error
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional


def _broken_register_vote(voters, voter):
    """Pre-fix reply counting: duplicates masquerade as distinct voters."""
    voters.add((voter, len(voters)))
    return True


def _broken_record_key(self, command, instance):
    """Pre-fix conflict index: one last-writer-wins slot per key."""
    self._key_index[command.key] = {instance[0]: instance[1]}


def _make_broken_execution_order(original):
    def id_sorted(self, root):
        order, visited = original(self, root)
        return sorted(order), visited

    return id_sorted


@contextmanager
def _patched(cls, attr, make_value) -> Iterator[None]:
    original = cls.__dict__[attr]
    setattr(cls, attr, make_value(original))
    try:
        yield
    finally:
        setattr(cls, attr, original)


@contextmanager
def _vote_dedup() -> Iterator[None]:
    from repro.epaxos.replica import EPaxosReplica

    with _patched(EPaxosReplica, "_register_vote",
                  lambda _orig: staticmethod(_broken_register_vote)):
        yield


@contextmanager
def _key_index() -> Iterator[None]:
    from repro.epaxos.replica import EPaxosReplica

    with _patched(EPaxosReplica, "_record_key",
                  lambda _orig: _broken_record_key):
        yield


@contextmanager
def _planner_order() -> Iterator[None]:
    from repro.epaxos.graph import DependencyGraph

    with _patched(DependencyGraph, "execution_order",
                  _make_broken_execution_order):
        yield


#: Mutation name -> context manager factory.  All three live in the EPaxos
#: stack, so mutation-fuzz runs should use an epaxos-only profile.
MUTATIONS: Dict[str, object] = {
    "vote-dedup": _vote_dedup,
    "key-index": _key_index,
    "planner-order": _planner_order,
}


@contextmanager
def apply_mutation(name: Optional[str]) -> Iterator[None]:
    """Apply one named mutation for the duration of the block.

    ``None`` is a no-op context, so callers can thread an optional
    mutation name through without branching.
    """
    if name is None:
        yield
        return
    if name not in MUTATIONS:
        known = ", ".join(sorted(MUTATIONS))
        raise KeyError(f"unknown mutation {name!r}; known: {known}")
    with MUTATIONS[name]():
        yield
