"""Automatic shrinking of checker-violating schedules.

Given a scenario that trips a checker, :func:`shrink` deterministically
minimizes it while preserving the violation: it greedily tries removing
events (delta-debugging style, halves before singles), shrinking the
cluster, dropping clients, cutting the duration, narrowing the keyspace
and simplifying config overrides, re-running the scenario after each
candidate edit and keeping it only when the *same checker family* still
fires.  Each accepted edit strictly decreases the scenario's cost tuple,
so shrinking terminates; a run budget caps the worst case.

The end product is meant to be *checked in*: :func:`scenario_literal`
renders any scenario as the library-ready ``Scenario(...)`` source text
used throughout ``repro/scenarios/library.py``, so a fuzz finding becomes
a regression scenario by pasting its shrunk literal (plus a calibrated
``min_completed`` floor) into the library.

Example::

    from repro.fuzz import shrink, scenario_literal

    result = shrink(violating_scenario)
    print(f"shrunk in {result.runs} runs: {result.steps}")
    print(scenario_literal(result.shrunk))
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import Scenario, ScenarioEvent
from repro.workload.spec import WorkloadSpec


def violating_checkers(scenario: Scenario) -> FrozenSet[str]:
    """Checker names that fire on this scenario (empty = passes)."""
    result = run_scenario(scenario)
    return frozenset(v.checker for v in result.violations)


@dataclass(frozen=True)
class ShrinkResult:
    """What :func:`shrink` produced and how much work it spent."""

    original: Scenario
    shrunk: Scenario
    #: Checker families the shrunk scenario still trips (a non-empty
    #: subset-intersection with the original's violating checkers).
    checkers: FrozenSet[str]
    #: Scenario executions spent (every candidate edit costs one run).
    runs: int
    #: Accepted reductions, in order, for the finding report.
    steps: Tuple[str, ...]


def _cost(scenario: Scenario) -> Tuple[float, ...]:
    """Lexicographic size of a scenario; every accepted edit decreases it."""
    overrides = scenario.config_overrides or {}
    return (
        len(scenario.events),
        scenario.num_nodes,
        scenario.num_clients,
        scenario.workload.num_keys,
        len(overrides),
        scenario.duration,
    )


def _clamped_groups(value: int, num_nodes: int) -> int:
    return max(1, min(value, num_nodes - 1)) if num_nodes > 1 else 1


def _remap_for_nodes(scenario: Scenario, num_nodes: int) -> Scenario:
    """Rewrite a scenario onto a smaller cluster, dropping stale node refs."""
    events: List[ScenarioEvent] = []
    for event in scenario.events:
        if event.node is not None and event.node >= num_nodes:
            continue
        if event.peer is not None and event.peer >= num_nodes:
            continue
        if event.action == "partition":
            groups = tuple(
                tuple(n for n in group if n < num_nodes) for group in event.groups
            )
            groups = tuple(group for group in groups if group)
            if not groups:
                continue
            event = replace(event, groups=groups)
        events.append(event)
    relay_groups = scenario.relay_groups
    if relay_groups is not None:
        relay_groups = _clamped_groups(relay_groups, num_nodes)
    hierarchy = scenario.hierarchy
    if hierarchy is not None and hierarchy[0] > num_nodes:
        # The spec rejects more regions than nodes; shrink the region
        # count alongside the cluster.
        hierarchy = (num_nodes, hierarchy[1])
    overrides = dict(scenario.config_overrides or {})
    overlay = overrides.get("overlay")
    if isinstance(overlay, dict) and "num_groups" in overlay:
        overlay = dict(overlay)
        overlay["num_groups"] = _clamped_groups(int(overlay["num_groups"]), num_nodes)
        overrides["overlay"] = overlay
    return replace(
        scenario,
        num_nodes=num_nodes,
        events=tuple(events),
        relay_groups=relay_groups,
        hierarchy=hierarchy,
        config_overrides=overrides or None,
    )


def _event_subsets(events: Sequence[ScenarioEvent]) -> List[Tuple[ScenarioEvent, ...]]:
    """Candidate reduced event tuples: drop halves, then quarters, then singles."""
    candidates: List[Tuple[ScenarioEvent, ...]] = []
    n = len(events)
    chunk = n // 2
    while chunk >= 1:
        for start in range(0, n, chunk):
            kept = tuple(events[:start]) + tuple(events[start + chunk:])
            if len(kept) < n:
                candidates.append(kept)
        if chunk == 1:
            break
        chunk //= 2
    return candidates


def shrink(
    scenario: Scenario,
    target: Optional[FrozenSet[str]] = None,
    max_runs: int = 400,
) -> ShrinkResult:
    """Minimize a checker-violating scenario while keeping it violating.

    ``target`` is the set of checker families that must keep firing
    (default: whatever the scenario violates right now).  Deterministic:
    candidate edits are tried in a fixed order and every run is itself
    deterministic, so the same input always shrinks to the same output.

    Raises ``ValueError`` when the input scenario does not violate any
    target checker in the first place.
    """
    runs = 0

    def violated(candidate: Scenario) -> FrozenSet[str]:
        nonlocal runs
        runs += 1
        result = run_scenario(candidate)
        return frozenset(v.checker for v in result.violations)

    if target is None:
        target = violating_checkers(scenario)
        runs += 1
    if not target:
        raise ValueError(
            f"scenario {scenario.name!r} violates nothing; nothing to shrink"
        )

    current = scenario
    steps: List[str] = []
    improved = True
    while improved and runs < max_runs:
        improved = False
        for label, candidate in _safe_candidates(current):
            if runs >= max_runs:
                break
            if _cost(candidate) >= _cost(current):
                continue
            try:
                still = violated(candidate)
            except ReproError:
                # The edit produced an unbuildable scenario (e.g. a config
                # constraint); skip it, don't abort the shrink.
                continue
            if still & target:
                current = candidate
                steps.append(label)
                improved = True
                break  # restart the pass list against the smaller scenario
    final = replace(current, name=f"{scenario.name}-min")
    return ShrinkResult(
        original=scenario,
        shrunk=final,
        checkers=target,
        runs=runs,
        steps=tuple(steps),
    )


def _safe_candidates(scenario: Scenario) -> List[Tuple[str, Scenario]]:
    """Candidate edits whose construction succeeded, in fixed order.

    An edit can itself violate a config constraint (e.g. clamping relay
    groups on a 3-node cluster); those candidates are skipped rather than
    aborting the shrink, and because ``Scenario`` is frozen-validated, any
    candidate returned here is structurally sound before it is ever run.
    """
    out: List[Tuple[str, Scenario]] = []
    for build in _candidate_builders(scenario):
        try:
            out.append(build())
        except ReproError:
            continue
    return out


def _candidate_builders(scenario: Scenario):
    """Yield thunks building (label, candidate) edits in priority order."""
    # 1. Fewer events (the biggest lever for replay comprehension).
    for kept in _event_subsets(scenario.events):
        yield lambda kept=kept: (
            f"events {len(scenario.events)} -> {len(kept)}",
            replace(scenario, events=kept),
        )
    # 2. Smaller cluster.
    for nodes in (3, 5, (scenario.num_nodes + 3) // 2):
        if 3 <= nodes < scenario.num_nodes:
            yield lambda nodes=nodes: (
                f"nodes {scenario.num_nodes} -> {nodes}",
                _remap_for_nodes(scenario, nodes),
            )
    # 3. Fewer clients.
    for clients in (1, 2, scenario.num_clients // 2):
        if 1 <= clients < scenario.num_clients:
            yield lambda clients=clients: (
                f"clients {scenario.num_clients} -> {clients}",
                replace(scenario, num_clients=clients),
            )
    # 4. Narrower keyspace (keeps contention, shrinks the search space).
    for keys in (1, 2):
        if keys < scenario.workload.num_keys:
            yield lambda keys=keys: (
                f"keys {scenario.workload.num_keys} -> {keys}",
                replace(
                    scenario,
                    workload=replace(scenario.workload, num_keys=keys),
                ),
            )
    # 4b. Single consensus group: if the bug reproduces unsharded it is not
    #     a cross-group interaction, and the replay is far easier to read.
    #     (Also unblocks the keyspace shrink above, which the shards <=
    #     num_keys constraint would otherwise veto.)
    if scenario.shards > 1:
        yield lambda: (
            f"shards {scenario.shards} -> 1",
            replace(scenario, shards=1),
        )
    # 4c. Batching off: if the bug reproduces unbatched it is not a
    #     batch/pipeline interaction.  All three knobs go together -- the
    #     delay/pipeline knobs are invalid without batch_max_commands > 1,
    #     so the one-at-a-time dropper below can never disable batching on
    #     its own.
    overrides = dict(scenario.config_overrides or {})
    batch_keys = {"batch_max_commands", "batch_max_delay", "pipeline_depth"}
    if batch_keys & set(overrides):
        rest = {k: v for k, v in overrides.items() if k not in batch_keys}
        yield lambda rest=rest: (
            "batching -> off",
            replace(scenario, config_overrides=rest or None),
        )
    # 5. Simpler config: drop overrides one at a time.
    for key in sorted(overrides):
        rest = {k: v for k, v in overrides.items() if k != key}
        yield lambda key=key, rest=rest: (
            f"drop override {key!r}",
            replace(scenario, config_overrides=rest or None),
        )
    # 6. Shorter run (kept last: cheap to try but least informative).
    last_event = max((event.at for event in scenario.events), default=0.0)
    for factor in (0.25, 0.5, 0.75):
        duration = round(scenario.duration * factor, 3)
        if duration > last_event and duration < scenario.duration:
            yield lambda duration=duration: (
                f"duration {scenario.duration} -> {duration}",
                replace(scenario, duration=duration),
            )


# --------------------------------------------------------------------- emit
_EVENT_ARGS = {
    "crash": lambda e: f"{e.at}, node={e.node}",
    "recover": lambda e: f"{e.at}, node={e.node}",
    "crash_leader": lambda e: f"{e.at}",
    "recover_all": lambda e: f"{e.at}",
    "partition": lambda e: f"{e.at}, " + ", ".join(repr(tuple(g)) for g in e.groups),
    "heal_partition": lambda e: f"{e.at}",
    "sever_link": lambda e: f"{e.at}, {e.node}, {e.peer}",
    "heal_link": lambda e: f"{e.at}, {e.node}, {e.peer}",
    "sluggish": lambda e: f"{e.at}, node={e.node}, factor={e.factor}",
    "reshuffle_relays": lambda e: f"{e.at}",
    "set_drop": lambda e: f"{e.at}, probability={e.probability}",
    "duplicate_storm": lambda e: f"{e.at}, probability={e.probability}",
}

_SCENARIO_DEFAULTS = Scenario(name="_defaults_probe")
_WORKLOAD_DEFAULTS = WorkloadSpec()


def _workload_literal(spec: WorkloadSpec) -> Optional[str]:
    if spec == WorkloadSpec.checking_default():
        return "WorkloadSpec.checking_default()"
    if spec == WorkloadSpec.checking_default(num_keys=spec.num_keys):
        return f"WorkloadSpec.checking_default(num_keys={spec.num_keys})"
    parts = [
        f"{name}={getattr(spec, name)!r}"
        for name in ("num_keys", "key_size", "value_size", "read_ratio",
                     "distribution", "zipf_theta", "unique_values")
        if getattr(spec, name) != getattr(_WORKLOAD_DEFAULTS, name)
    ]
    return f"WorkloadSpec({', '.join(parts)})" if parts else None


def scenario_literal(scenario: Scenario, indent: str = "") -> str:
    """Render a scenario as library-ready ``Scenario(...)`` source text.

    Emits only the fields that differ from the ``Scenario`` defaults, in
    declaration order, matching the idiom of ``repro/scenarios/library.py``
    (events through the ``E`` factory aliases).  The output is executable:
    ``eval`` of the literal with ``Scenario``/``ScenarioEvent as E``/
    ``WorkloadSpec`` in scope reconstructs an equal scenario, which is what
    the round-trip test pins.
    """
    pad = indent + "    "
    lines = [f"{indent}Scenario(", f"{pad}name={scenario.name!r},"]
    for field_name in ("protocol", "num_nodes", "num_clients", "duration",
                       "seed", "relay_groups", "wan", "hierarchy",
                       "use_region_groups"):
        value = getattr(scenario, field_name)
        if value != getattr(_SCENARIO_DEFAULTS, field_name):
            lines.append(f"{pad}{field_name}={value!r},")
    workload = _workload_literal(scenario.workload)
    if workload is not None:
        lines.append(f"{pad}workload={workload},")
    if scenario.client_timeout != _SCENARIO_DEFAULTS.client_timeout:
        lines.append(f"{pad}client_timeout={scenario.client_timeout!r},")
    if scenario.shards != _SCENARIO_DEFAULTS.shards:
        lines.append(f"{pad}shards={scenario.shards!r},")
    if scenario.drop_probability != _SCENARIO_DEFAULTS.drop_probability:
        lines.append(f"{pad}drop_probability={scenario.drop_probability!r},")
    if scenario.checks != _SCENARIO_DEFAULTS.checks:
        if tuple(scenario.checks) == ("linearizability", "log_invariants",
                                      "epaxos_invariants"):
            lines.append(f"{pad}checks=EPAXOS_CHECK_NAMES,")
        else:
            lines.append(f"{pad}checks={tuple(scenario.checks)!r},")
    if scenario.min_completed:
        lines.append(f"{pad}min_completed={scenario.min_completed!r},")
    if scenario.config_overrides:
        lines.append(f"{pad}config_overrides={dict(scenario.config_overrides)!r},")
    if scenario.events:
        lines.append(f"{pad}events=(")
        for event in scenario.events:
            args = _EVENT_ARGS[event.action](event)
            lines.append(f"{pad}    E.{event.action}({args}),")
        lines.append(f"{pad}),")
    if scenario.description:
        lines.append(f"{pad}description={scenario.description!r},")
    lines.append(f"{indent})")
    return "\n".join(lines)
