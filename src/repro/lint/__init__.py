"""repro.lint: static enforcement of the determinism contract.

The dynamic guarantees (golden fingerprints, replayable fuzz seeds,
parallel-vs-serial sweep identity) all ride on the contract in
``docs/ARCHITECTURE.md``; this package catches contract violations before
any scenario has to trip over them.  ``repro.lint`` owns the *semantic*
rules; ``ruff`` (configured in ``pyproject.toml``) owns conventional style.

Usage::

    PYTHONPATH=src python -m repro.lint src/repro
    PYTHONPATH=src python -m repro.lint --list-rules
    PYTHONPATH=src python -m repro.lint --list-suppressions src/repro
"""

from repro.lint.core import (
    Finding,
    FileContext,
    LintEngine,
    Rule,
    Suppression,
    iter_python_files,
    parse_suppressions,
    repro_relpath,
)
from repro.lint.rules import RULES, default_rules

__all__ = [
    "Finding",
    "FileContext",
    "LintEngine",
    "Rule",
    "RULES",
    "Suppression",
    "default_rules",
    "iter_python_files",
    "parse_suppressions",
    "repro_relpath",
]
