"""Command-line front end: ``python -m repro.lint [paths] [--rule ...]``.

Exit codes gate CI: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.core import Finding, LintEngine, Suppression
from repro.lint.rules import RULES, default_rules


def _format_table(findings: Sequence[Finding]) -> str:
    rows = [
        (f"{finding.path}:{finding.line}", finding.rule, finding.message)
        for finding in findings
    ]
    loc_width = max(len(row[0]) for row in rows)
    rule_width = max(len(row[1]) for row in rows)
    lines = [
        f"{loc:<{loc_width}}  {rule:<{rule_width}}  {message}"
        for loc, rule, message in rows
    ]
    hints = {
        finding.rule: finding.hint for finding in findings if finding.hint
    }
    if hints:
        lines.append("")
        for rule_id in sorted(hints):
            lines.append(f"  fix[{rule_id}]: {hints[rule_id]}")
    return "\n".join(lines)


def _format_suppressions(suppressions: Sequence[Suppression]) -> str:
    if not suppressions:
        return "no suppressions"
    lines = [f"{len(suppressions)} suppression(s):"]
    for suppression in suppressions:
        rules = ", ".join(suppression.rules) or "<none>"
        reason = suppression.reason or "<NO REASON>"
        lines.append(
            f"  {suppression.path}:{suppression.line}  ok({rules})  {reason}"
        )
    return "\n".join(lines)


def _list_rules() -> str:
    width = max(len(rule_id) for rule_id in RULES)
    lines = []
    for rule_id, rule_cls in RULES.items():
        lines.append(f"{rule_id:<{width}}  {rule_cls.title}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static determinism & protocol-hygiene checks for the repro tree. "
            "Semantic rules only; style belongs to ruff."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to check"
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE-ID",
        help="run only this rule (repeatable); default: all rules",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON array"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--list-suppressions",
        action="store_true",
        help="print every inline suppression with its reason",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    missing = [str(path) for path in args.paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        rules = default_rules(args.rules)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        print(f"known rules:\n{_list_rules()}", file=sys.stderr)
        return 2

    engine = LintEngine(rules, all_rules_active=not args.rules)
    findings, suppressions = engine.lint_paths(args.paths)

    if args.list_suppressions:
        print(_format_suppressions(suppressions))
        return 0

    if args.json:
        print(json.dumps([finding.to_dict() for finding in findings], indent=2))
    elif findings:
        print(_format_table(findings))
        print(
            f"\n{len(findings)} finding(s) in {engine.files_checked} file(s)",
            file=sys.stderr,
        )
    else:
        used = sum(1 for s in suppressions if s.used)
        print(
            f"clean: {engine.files_checked} file(s), "
            f"{len(RULES)} rule(s), {used} active suppression(s)"
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
