"""The AST-walker framework behind ``repro.lint``.

One parse per file: the engine reads a source file, parses it once, links
parent pointers, and hands every node to each subscribed rule (a rule
subscribes by defining ``visit_<NodeType>`` methods).  Rules report
:class:`Finding`s through the :class:`FileContext`; the engine applies
inline suppressions as findings are reported, so a rule never needs to
know about them.

Suppressions are inline and auditable::

    groups[hash(key) % n].append(member)  # lint: ok(no-hash-order) <reason>

The comment suppresses the named rule(s) on its own line, or on the next
line when the comment stands alone.  The reason text is mandatory --
``suppression-hygiene`` (a rule like any other) reports reason-less,
unknown-rule and stale suppressions, so the suppression inventory stays a
reviewable list of conscious decisions (``--list-suppressions`` prints it).

File paths are reported relative to the ``repro`` package root
(``sim/metrics.py``, not ``src/repro/sim/metrics.py``) so rule scoping is
stable no matter where the tree is checked out; :func:`lint_source` takes
the relative path directly, which is how the fixture tests exercise rules
on synthetic snippets.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Inline suppression comments: ``# lint: ok(rule-id[, rule-id...]) reason``.
SUPPRESSION_RE = re.compile(
    r"#\s*lint:\s*ok\(\s*([A-Za-z0-9_,\s-]*?)\s*\)\s*(.*?)\s*$"
)


class Finding:
    """One rule violation: where, what, and how to fix it."""

    __slots__ = ("rule", "path", "line", "col", "message", "hint")

    def __init__(
        self,
        rule: str,
        path: str,
        line: int,
        col: int,
        message: str,
        hint: str = "",
    ) -> None:
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        self.hint = hint

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({self.rule} {self.path}:{self.line} {self.message!r})"


class Suppression:
    """One parsed ``# lint: ok(...)`` comment."""

    __slots__ = ("path", "line", "target_line", "rules", "reason", "used")

    def __init__(
        self, path: str, line: int, target_line: int, rules: Tuple[str, ...], reason: str
    ) -> None:
        self.path = path
        self.line = line           # line the comment sits on
        self.target_line = target_line  # line whose findings it suppresses
        self.rules = rules
        self.reason = reason
        self.used = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rules),
            "reason": self.reason,
            "used": self.used,
        }


def parse_suppressions(path: str, source: str) -> List[Suppression]:
    """Extract every suppression comment from ``source`` (1-indexed targets).

    Real COMMENT tokens only -- a ``# lint: ok(...)`` *inside a string*
    (docstring examples, the hint text of the rule itself) is not a
    suppression.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = match.group(2).strip()
        line = token.start[0]
        comment_only = token.line[: token.start[1]].strip() == ""
        target = line + 1 if comment_only else line
        suppressions.append(Suppression(path, line, target, rules, reason))
    return suppressions


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and define ``visit_<NodeType>``
    methods; the engine calls each exactly once per matching node, in a
    single walk of the file.  ``contract`` names the clause of the
    determinism contract (``docs/ARCHITECTURE.md``) the rule encodes --
    it is what the rule catalogue documents.
    """

    id: str = ""
    title: str = ""
    contract: str = ""
    hint: str = ""

    def applies(self, relpath: str) -> bool:
        """Whether this rule runs on the file at ``relpath`` at all."""
        return True

    def begin_file(self, ctx: "FileContext") -> None:
        """Per-file setup (import maps, class tables); runs before the walk."""

    def end_file(self, ctx: "FileContext") -> None:
        """Per-file teardown; runs after the walk."""


class FileContext:
    """Everything a rule may need while walking one file."""

    __slots__ = (
        "path",
        "relpath",
        "source",
        "lines",
        "tree",
        "findings",
        "suppressions",
        "active_rule_ids",
        "all_rules_active",
        "_suppressions_by_line",
    )

    def __init__(
        self,
        path: str,
        relpath: str,
        source: str,
        tree: ast.AST,
        active_rule_ids: Tuple[str, ...],
        all_rules_active: bool,
    ) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.findings: List[Finding] = []
        self.suppressions = parse_suppressions(relpath, source)
        self.active_rule_ids = active_rule_ids
        self.all_rules_active = all_rules_active
        by_line: Dict[int, List[Suppression]] = {}
        for suppression in self.suppressions:
            by_line.setdefault(suppression.target_line, []).append(suppression)
        self._suppressions_by_line = by_line

    # ------------------------------------------------------------- reporting
    def report(
        self, rule: Rule, node: ast.AST, message: str, hint: Optional[str] = None
    ) -> None:
        """Report a finding at ``node``, honouring inline suppressions."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        for suppression in self._suppressions_by_line.get(line, ()):
            if rule.id in suppression.rules:
                suppression.used = True
                return
        self.findings.append(
            Finding(
                rule=rule.id,
                path=self.relpath,
                line=line,
                col=col,
                message=message,
                hint=rule.hint if hint is None else hint,
            )
        )

    def report_unsuppressable(
        self, rule: Rule, line: int, message: str, hint: Optional[str] = None
    ) -> None:
        """Report a finding that inline comments cannot silence.

        Used by ``suppression-hygiene``: a reason-less suppression must not
        be able to suppress the report about itself.
        """
        self.findings.append(
            Finding(
                rule=rule.id,
                path=self.relpath,
                line=line,
                col=0,
                message=message,
                hint=rule.hint if hint is None else hint,
            )
        )

    # ------------------------------------------------------------ navigation
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_lint_parent", None)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def _link_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def repro_relpath(path: Path) -> str:
    """Path relative to the innermost ``repro`` package directory, if any.

    ``src/repro/sim/metrics.py`` -> ``sim/metrics.py``; a file outside any
    ``repro`` directory keeps its name-only path, which matches no scoped
    rule (scoped rules see paths rooted at the package).
    """
    parts = path.as_posix().split("/")
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return path.name


class LintEngine:
    """Runs a set of rules over files, one parse and one walk per file."""

    def __init__(self, rules: Sequence[Rule], all_rules_active: bool = True) -> None:
        self.rules = list(rules)
        self.all_rules_active = all_rules_active
        self.files_checked = 0

    # ----------------------------------------------------------- single file
    def lint_source(
        self, source: str, relpath: str, path: Optional[str] = None
    ) -> FileContext:
        active_ids = tuple(rule.id for rule in self.rules)
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as error:
            ctx = FileContext(
                path or relpath, relpath, "", ast.Module(body=[], type_ignores=[]),
                active_ids, self.all_rules_active,
            )
            ctx.findings.append(
                Finding(
                    rule="parse-error",
                    path=relpath,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"file does not parse: {error.msg}",
                    hint="repro.lint needs a syntactically valid tree",
                )
            )
            return ctx
        _link_parents(tree)
        ctx = FileContext(
            path or relpath, relpath, source, tree, active_ids, self.all_rules_active
        )
        applicable = [rule for rule in self.rules if rule.applies(relpath)]
        if not applicable:
            return ctx
        for rule in applicable:
            rule.begin_file(ctx)
        dispatch: Dict[str, List] = {}
        for rule in applicable:
            for name in dir(type(rule)):
                if name.startswith("visit_"):
                    dispatch.setdefault(name[len("visit_"):], []).append(
                        getattr(rule, name)
                    )
        if dispatch:
            for node in ast.walk(tree):
                handlers = dispatch.get(type(node).__name__)
                if handlers:
                    for handler in handlers:
                        handler(node, ctx)
        for rule in applicable:
            rule.end_file(ctx)
        ctx.findings.sort(key=Finding.sort_key)
        return ctx

    def lint_file(self, path: Path) -> FileContext:
        source = Path(path).read_text(encoding="utf-8")
        return self.lint_source(source, repro_relpath(Path(path)), str(path))

    # ------------------------------------------------------------ many files
    def lint_paths(self, paths: Sequence[Path]) -> Tuple[List[Finding], List[Suppression]]:
        findings: List[Finding] = []
        suppressions: List[Suppression] = []
        for path in iter_python_files(paths):
            ctx = self.lint_file(path)
            self.files_checked += 1
            findings.extend(ctx.findings)
            suppressions.extend(ctx.suppressions)
        findings.sort(key=Finding.sort_key)
        return findings, suppressions


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path
