"""The documented counter/metric namespace, as data.

``counter-name-registry`` checks every *string-literal* metric name passed
to the metric helpers (``MetricsRegistry.counter/gauge/histogram/timeseries``
and ``Replica.count``) against this registry.  A typo'd counter silently
records to a fresh, never-read name -- the regression it causes (a benchmark
column flatlining at zero, a test asserting on nothing) is invisible at run
time, which is exactly why the check is static.

Names built with f-strings (``node.{id}.bytes_in``, ``net.sent.{kind}``)
are not literals and are covered by the prefix list instead.

Adding a counter is a two-line change: the call site, and its name here.
That is deliberate -- the registry *is* the documentation of the metric
namespace, and the lint rule is what keeps it honest.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

#: Bare names recorded through ``Replica.count(name)`` / ``host.count(name)``;
#: the replica prefixes them with its protocol name (``epaxos.<name>``...).
REPLICA_COUNTERS: FrozenSet[str] = frozenset(
    {
        # --- Paxos family: phase 1 / leadership
        "phase1_started",
        "phase1_retry",
        "phase1_preempted",
        "became_leader",
        "stepped_down",
        "election_triggered",
        # --- Paxos family: phase 2 / commit / execution
        "p2a_rounds",
        "slots_committed",
        "client_requests",
        "client_redirects",
        "client_replies",
        "duplicate_commands_skipped",
        "orphaned_proposal_replies_suppressed",
        "orphaned_batch_replies_suppressed",
        "fill_requests",
        "leader_fill_requests",
        "leader_fill_retries",
        "unknown_message",
        # --- PigPaxos / relay overlay
        "pig_rounds",
        "relay_rounds",
        "relay_fanouts",
        "relay_timeouts",
        "group_reshuffles",
        "late_responses_forwarded",
        "late_aggregates_dropped",
        "duplicate_relay_requests_ignored",
        "commit_fallbacks",
        "commit_fallback_resends",
        "leader_round_retries",
        # --- Thrifty overlay
        "thrifty_rounds",
        "thrifty_fallbacks",
        # --- EPaxos: ordinary rounds
        "instances_led",
        "instances_committed",
        "instances_executed",
        "fast_path_commits",
        "slow_path_rounds",
        "preaccepts_handled",
        "prepares_handled",
        "duplicate_preaccept_replies",
        "duplicate_accept_replies",
        "duplicate_prepare_replies",
        "preaccept_replies_rejected",
        "preaccepts_rejected_ballot",
        "accepts_rejected_ballot",
        "prepares_rejected_ballot",
        "key_index_stale_updates_skipped",
        "conflicting_commit_overwrites_refused",
        # --- EPaxos: explicit-prepare recovery
        "recoveries_started",
        "recoveries_completed",
        "recoveries_adopted_commit",
        "recoveries_from_accept",
        "recoveries_from_default_preaccepts",
        "recoveries_fast_path_disproved",
        "recoveries_repreaccepted",
        "recoveries_noop",
        "recovery_noop_commits",
        "recovery_retries",
    }
)

#: Prefixes of dynamically-formatted ``Replica.count`` families.  The
#: deep-relay fallback records one counter quartet per tree depth
#: (``relay.depth.<d>.ack_rounds/acks/fallbacks/fallback_resends``,
#: overlay/relay.py); depth is data, so the names are f-strings.
REPLICA_COUNTER_PREFIXES: Tuple[str, ...] = (
    "relay.depth.",
)

#: Fully qualified names passed to ``MetricsRegistry`` helpers as literals.
METRIC_NAMES: FrozenSet[str] = frozenset(
    {
        # --- network accounting (net/network.py)
        "net.messages_sent",
        "net.bytes_sent",
        "net.messages_dropped",
        "net.messages_duplicated",
        "net.messages_delivered",
        "net.messages_undeliverable",
        # --- region/zone locality accounting (net/network.py); recorded
        #     via f-strings on the send path, listed here for the tests
        #     and reports that read them back as literals.
        "region.local_messages",
        "region.cross_messages",
        "zone.local_messages",
        "zone.cross_messages",
        # --- fault injection (net/faults.py)
        "faults.crashes",
        "faults.recoveries",
        "faults.sluggish_changes",
        # --- workload clients (workload/client.py)
        "client.latency",
        "client.completions",
        # --- leader-side batching (protocol/base.py, build_batch_metrics)
        "batch.flush.size",
        "batch.flush.delay",
        "batch.flush.pipeline",
        "batch.flush.conflict",
        "batch.flush.immediate",
        "batch.commands_batched",
        "batch.occupancy",
        # --- asyncio runtime (runtime/server.py)
        "runtime.executed_commands",
        "runtime.graph_vertices",
        "runtime.bookkeeping_units",
        "runtime.charged_seconds",
        "runtime.messages_sent",
        "runtime.messages_received",
        "runtime.send_failures",
    }
)

#: Prefixes of dynamically-formatted families (recorded via f-strings, so a
#: literal starting with one of these is accepted as a deliberate probe of
#: that family -- tests and examples read individual members).
METRIC_NAME_PREFIXES: Tuple[str, ...] = (
    "net.sent.",        # per-message-type send counts
    "net.sent_bytes.",  # per-message-type byte counts
    "node.",            # node.<id>.messages_in/out, bytes_in/out
    "paxos.",           # replica counters, protocol-prefixed form
    "pigpaxos.",
    "epaxos.",
    "shard.",           # shard.<s>.requests / shard.<s>.completions (workload/client.py)
    "region.",          # region.local/cross_messages (net/network.py)
    "zone.",            # zone.local/cross_messages (net/network.py)
)


def is_known_metric(name: str) -> bool:
    """Whether a fully qualified metric name is in the documented namespace."""
    if name in METRIC_NAMES:
        return True
    return name.startswith(METRIC_NAME_PREFIXES)


def is_known_replica_counter(name: str) -> bool:
    """Whether a bare ``Replica.count`` name is in the documented namespace."""
    if name in REPLICA_COUNTERS:
        return True
    return name.startswith(REPLICA_COUNTER_PREFIXES)
