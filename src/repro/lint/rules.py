"""The repo-specific rule set: the determinism contract, statically enforced.

Each rule encodes one clause of the determinism contract in
``docs/ARCHITECTURE.md`` (or one of the PR-4/PR-5 performance conventions)
as an AST check.  The catalogue lives in the ``RULES`` registry at the
bottom; ``scripts/check_docs.py`` cross-checks it against the rule table in
the architecture doc so the two cannot drift.

Scoping: rules see paths relative to the ``repro`` package root
(``sim/metrics.py``), so they apply identically to the real tree and to the
synthetic fixture files the tests feed through
:meth:`repro.lint.core.LintEngine.lint_source`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, Type

from repro.lint.core import FileContext, Rule
from repro.lint.counters import is_known_metric, is_known_replica_counter

# ---------------------------------------------------------------- helpers

#: Directories whose iteration order can leak into event order (the
#: simulation stack) or into recorded verdicts (the checkers).
SIM_SCOPE: Tuple[str, ...] = (
    "protocol",
    "paxos",
    "epaxos",
    "overlay",
    "quorum",
    "net",
    "sim",
    "core",
    "cluster",
    "statemachine",
    "checkers",
)


def _in_dirs(relpath: str, dirs: Tuple[str, ...]) -> bool:
    head, _, _ = relpath.partition("/")
    return head in dirs


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_func_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_str_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


# ------------------------------------------------------------ no-wall-clock

_BANNED_TIME = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Bare names that are wall-clock reads when imported from ``time``.
_BANNED_TIME_FROM = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}


class NoWallClock(Rule):
    """Contract clause 1: time is the simulator's virtual clock."""

    id = "no-wall-clock"
    title = "no wall-clock reads in simulation code"
    contract = (
        "Determinism contract #1: nothing reads the wall clock; virtual time "
        "comes from sim.now / ctx.now only"
    )
    hint = "use the simulator clock (sim.now / ctx.now); bench/ is exempt"

    def applies(self, relpath: str) -> bool:
        return not relpath.startswith("bench/")

    def begin_file(self, ctx: FileContext) -> None:
        self._module_alias: Dict[str, str] = {}
        self._from_names: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("time", "datetime"):
                        self._module_alias[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _BANNED_TIME_FROM:
                            self._from_names[alias.asname or alias.name] = (
                                f"time.{alias.name}"
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self._module_alias[alias.asname or alias.name] = (
                                f"datetime.{alias.name}"
                            )

    def _resolve(self, dotted: str) -> Optional[str]:
        root, _, rest = dotted.partition(".")
        real_root = self._module_alias.get(root)
        if real_root is None:
            return None
        return f"{real_root}.{rest}" if rest else real_root

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        dotted = _dotted_name(node)
        if dotted is None:
            return
        resolved = self._resolve(dotted)
        if resolved in _BANNED_TIME:
            ctx.report(self, node, f"wall-clock read {resolved}()")

    def visit_Name(self, node: ast.Name, ctx: FileContext) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        resolved = self._from_names.get(node.id)
        if resolved is not None:
            ctx.report(self, node, f"wall-clock read {resolved}() (from-import)")


# ------------------------------------------------------ no-unseeded-random


class NoUnseededRandom(Rule):
    """Contract clause 2: all randomness flows through named seeded streams."""

    id = "no-unseeded-random"
    title = "no module-level random.* calls"
    contract = (
        "Determinism contract #2: randomness comes from sim/rng.py streams or "
        "an explicitly passed random.Random, never the global random module"
    )
    hint = (
        "draw from sim.random.stream(<name>) / ctx.rng, or accept a "
        "random.Random parameter"
    )

    _ALLOWED_ATTRS = {"Random", "SystemRandom"}

    def begin_file(self, ctx: FileContext) -> None:
        self._aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        self._aliases.add(alias.asname or alias.name)

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self._aliases
            and node.attr not in self._ALLOWED_ATTRS
        ):
            ctx.report(
                self, node, f"global random-module state used: random.{node.attr}"
            )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.module != "random":
            return
        for alias in node.names:
            if alias.name not in self._ALLOWED_ATTRS:
                ctx.report(
                    self,
                    node,
                    f"from random import {alias.name} binds global random state",
                )


# -------------------------------------------------- no-unordered-iteration

#: Calls whose result does not depend on argument order (for a pure
#: element function), so feeding them an unordered iterable is safe.
_SAFE_CONSUMERS = {
    "sorted",
    "min",
    "max",
    "sum",
    "len",
    "set",
    "frozenset",
    "dict",
    "any",
    "all",
    "Counter",
}

#: Calls that *iterate* their argument into an ordered result, so feeding
#: them a set leaks its hash order.
_ORDER_LEAKING_CONSUMERS = {"list", "tuple", "enumerate", "iter", "reversed", "join"}

_DICT_VIEWS = {"keys", "values", "items"}


class NoUnorderedIteration(Rule):
    """Contract clause 3: decisions never ride on set/hash iteration order."""

    id = "no-unordered-iteration"
    title = "no unordered iteration where order can leak into event order"
    contract = (
        "Determinism contract #3: iteration orders that feed decisions are "
        "sorted or insertion-ordered, never set-ordered; dict views must be "
        "wrapped in sorted() or carry a written insertion-order justification"
    )
    hint = (
        "wrap in sorted(...), consume with an order-insensitive reducer, or "
        "justify insertion order with # lint: ok(no-unordered-iteration) <why>"
    )

    def applies(self, relpath: str) -> bool:
        return _in_dirs(relpath, SIM_SCOPE)

    # ------------------------------------------------------------- set typing
    #
    # Names are tracked per enclosing function scope: ``executed`` being a
    # set in one checker must not taint a list named ``executed`` in
    # another.  ``self.<attr>`` assignments stay file-wide (class state).
    def begin_file(self, ctx: FileContext) -> None:
        names: Set[Tuple[int, str]] = set()
        attrs: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and self._is_set_value(node.value):
                for target in node.targets:
                    self._record_target(target, node, ctx, names, attrs)
            elif isinstance(node, ast.AnnAssign):
                if self._is_set_annotation(node.annotation) or (
                    node.value is not None and self._is_set_value(node.value)
                ):
                    self._record_target(node.target, node, ctx, names, attrs)
            elif isinstance(node, ast.arg):
                if node.annotation is not None and self._is_set_annotation(
                    node.annotation
                ):
                    names.add((self._scope_of(node, ctx), node.arg))
        self._set_names = names
        self._set_attrs = attrs

    @staticmethod
    def _scope_of(node: ast.AST, ctx: FileContext) -> int:
        for ancestor in ctx.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return id(ancestor)
        return id(ctx.tree)

    def _record_target(
        self,
        target: ast.AST,
        site: ast.AST,
        ctx: FileContext,
        names: Set[Tuple[int, str]],
        attrs: Set[str],
    ) -> None:
        if isinstance(target, ast.Name):
            names.add((self._scope_of(site, ctx), target.id))
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            if target.value.id == "self":
                attrs.add(target.attr)

    @staticmethod
    def _is_set_value(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _is_set_annotation(self, annotation: ast.AST) -> bool:
        # Unwrap Optional[...] one level; then the outermost type must be a
        # set.  Dict[..., Set[...]] deliberately does NOT mark the name.
        if isinstance(annotation, ast.Subscript):
            root = _dotted_name(annotation.value)
            if root in ("Optional", "typing.Optional"):
                return self._is_set_annotation(annotation.slice)
            return root in ("Set", "FrozenSet", "set", "frozenset",
                            "typing.Set", "typing.FrozenSet")
        root = _dotted_name(annotation)
        return root in ("Set", "FrozenSet", "set", "frozenset",
                        "typing.Set", "typing.FrozenSet")

    def _is_set_expr(self, node: ast.AST, ctx: FileContext) -> bool:
        if self._is_set_value(node):
            return True
        if isinstance(node, ast.Name):
            return (self._scope_of(node, ctx), node.id) in self._set_names
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return node.value.id == "self" and node.attr in self._set_attrs
        return False

    # ------------------------------------------------------------ dict views
    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DICT_VIEWS
            and not node.args
            and not node.keywords
        ):
            if not self._view_consumed_safely(node, ctx):
                owner = _dotted_name(func.value) or "<expr>"
                ctx.report(
                    self,
                    node,
                    f"iteration order of {owner}.{func.attr}() feeds an ordered "
                    f"result; sort it or justify insertion order",
                )
            return
        # A set handed to an order-leaking consumer (list(s), "".join(s)...).
        name = _call_func_name(func)
        if name in _ORDER_LEAKING_CONSUMERS:
            for arg in node.args:
                if self._is_set_expr(arg, ctx):
                    ctx.report(
                        self,
                        node,
                        f"{name}(...) materialises a set in hash order",
                    )

    def _view_consumed_safely(self, view: ast.Call, ctx: FileContext) -> bool:
        parent = ctx.parent(view)
        if isinstance(parent, ast.Call):
            name = _call_func_name(parent.func)
            if view in parent.args and (
                name in _SAFE_CONSUMERS or name == "update"
            ):
                return True
            return False
        if isinstance(parent, ast.Compare) and view in parent.comparators:
            return all(isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops)
        if isinstance(parent, ast.comprehension) and parent.iter is view:
            owner = ctx.parent(parent)
            if isinstance(owner, ast.SetComp):
                return True  # result is a set; no order to leak
            if isinstance(owner, (ast.ListComp, ast.GeneratorExp)):
                consumer = ctx.parent(owner)
                if isinstance(consumer, ast.Call) and owner in consumer.args:
                    return _call_func_name(consumer.func) in _SAFE_CONSUMERS
            return False
        return False

    # -------------------------------------------------------- set iteration
    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        if self._is_set_expr(node.iter, ctx):
            ctx.report(
                self,
                node.iter,
                "for-loop over a set iterates in hash order",
            )

    def _check_generators(self, node, ctx: FileContext, ordered_result: bool) -> None:
        for generator in node.generators:
            if self._is_set_expr(generator.iter, ctx) and ordered_result:
                ctx.report(
                    self,
                    generator.iter,
                    "comprehension over a set builds an ordered result in "
                    "hash order",
                )

    def visit_ListComp(self, node: ast.ListComp, ctx: FileContext) -> None:
        consumer = ctx.parent(node)
        safe = (
            isinstance(consumer, ast.Call)
            and node in consumer.args
            and _call_func_name(consumer.func) in _SAFE_CONSUMERS
        )
        self._check_generators(node, ctx, ordered_result=not safe)

    def visit_GeneratorExp(self, node: ast.GeneratorExp, ctx: FileContext) -> None:
        consumer = ctx.parent(node)
        safe = (
            isinstance(consumer, ast.Call)
            and node in consumer.args
            and _call_func_name(consumer.func) in _SAFE_CONSUMERS
        )
        self._check_generators(node, ctx, ordered_result=not safe)

    def visit_DictComp(self, node: ast.DictComp, ctx: FileContext) -> None:
        self._check_generators(node, ctx, ordered_result=True)


# -------------------------------------------------------------- no-hash-order


class NoHashOrder(Rule):
    """Builtin ``hash()`` output must never shape simulation behaviour."""

    id = "no-hash-order"
    title = "no builtin hash() in simulation decisions"
    contract = (
        "Determinism contract #3 corollary: str/bytes hashes are salted per "
        "process (PYTHONHASHSEED), so hash()-derived keys, buckets or sort "
        "orders diverge between the serial and parallel sweep workers"
    )
    hint = "use a keyed deterministic digest (zlib.crc32, hashlib) instead"

    def applies(self, relpath: str) -> bool:
        return _in_dirs(relpath, SIM_SCOPE)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            ctx.report(
                self,
                node,
                "builtin hash() is process-salted for str/bytes keys",
            )


# ---------------------------------------------------------- wire-type-hygiene

#: Constructor/field names that mean "this message carries variable-size
#: data" and therefore must be priced by a payload_bytes override.
_PAYLOAD_FIELDS = {
    "command",
    "commands",
    "value",
    "values",
    "result",
    "results",
    "responses",
    "inner",
    "accepted",
    "payload",
    "data",
}

_MESSAGE_BASES = {"Message", "OverlayMessage"}


class _ClassInfo:
    __slots__ = ("node", "bases", "has_slots", "has_payload_bytes", "fields")

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.bases = [
            base for base in (_dotted_name(b) for b in node.bases) if base
        ]
        self.has_slots = False
        self.has_payload_bytes = False
        self.fields: Set[str] = set()


class WireTypeHygiene(Rule):
    """PR-4 message conventions: hand-slotted, and priced when they carry data."""

    id = "wire-type-hygiene"
    title = "wire types declare __slots__ and price their payloads"
    contract = (
        "PR-4 hot-path rule: every class in a */messages.py is a hand-slotted "
        "plain class; PR-5 sizing rule: a message carrying variable-size data "
        "overrides payload_bytes so SizeModel prices it"
    )
    hint = (
        "add __slots__ (or dataclass(slots=True)); override payload_bytes for "
        "payload-carrying messages"
    )

    def applies(self, relpath: str) -> bool:
        return relpath.endswith("messages.py") or relpath == "net/message.py"

    def begin_file(self, ctx: FileContext) -> None:
        self._classes: Dict[str, _ClassInfo] = {}
        for node in ctx.tree.body if isinstance(ctx.tree, ast.Module) else []:
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(node)
            for decorator in node.decorator_list:
                if isinstance(decorator, ast.Call):
                    if _dotted_name(decorator.func) in ("dataclass", "dataclasses.dataclass"):
                        for keyword in decorator.keywords:
                            if (
                                keyword.arg == "slots"
                                and isinstance(keyword.value, ast.Constant)
                                and keyword.value.value is True
                            ):
                                info.has_slots = True
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name) and target.id == "__slots__":
                            info.has_slots = True
                elif isinstance(statement, ast.AnnAssign):
                    if isinstance(statement.target, ast.Name):
                        if statement.target.id == "__slots__":
                            info.has_slots = True
                        else:
                            info.fields.add(statement.target.id)
                elif isinstance(statement, ast.FunctionDef):
                    if statement.name == "payload_bytes":
                        info.has_payload_bytes = True
                    elif statement.name == "__init__":
                        info.fields.update(
                            arg.arg
                            for arg in statement.args.args
                            if arg.arg != "self"
                        )
            self._classes[node.name] = info

    def _is_message(self, name: str, seen: Optional[Set[str]] = None) -> bool:
        if name in _MESSAGE_BASES:
            return True
        seen = seen or set()
        info = self._classes.get(name)
        if info is None or name in seen:
            return False
        seen.add(name)
        return any(self._is_message(base, seen) for base in info.bases)

    def _prices_payload(self, name: str, seen: Optional[Set[str]] = None) -> bool:
        info = self._classes.get(name)
        seen = seen or set()
        if info is None or name in seen:
            return False
        seen.add(name)
        if info.has_payload_bytes:
            return True
        return any(self._prices_payload(base, seen) for base in info.bases)

    def end_file(self, ctx: FileContext) -> None:
        for name, info in self._classes.items():
            if not info.has_slots:
                ctx.report(
                    self,
                    info.node,
                    f"class {name} in a wire-type module has no __slots__",
                )
            if ctx.relpath == "net/message.py":
                continue  # the base classes define the convention itself
            payload_fields = sorted(info.fields & _PAYLOAD_FIELDS)
            if (
                payload_fields
                and self._is_message(name)
                and not self._prices_payload(name)
            ):
                ctx.report(
                    self,
                    info.node,
                    f"message {name} carries {', '.join(payload_fields)} but "
                    f"does not override payload_bytes; SizeModel will price "
                    f"it as header-only",
                )


# ------------------------------------------------ no-frozen-dataclass-hot-path


class NoFrozenDataclassHotPath(Rule):
    """Frozen dataclasses are banned in the hot message/event modules."""

    id = "no-frozen-dataclass-hot-path"
    title = "no frozen dataclasses in message/event modules"
    contract = (
        "PR-4 hot-path rule: per-message/per-event types are hand-slotted "
        "plain classes (immutable by convention); the frozen-dataclass "
        "constructor is ~2.5x slower on the allocation-heavy paths"
    )
    hint = (
        "write a plain __slots__ class; suppress only for types allocated "
        "rarely (e.g. once per leader change)"
    )

    _HOT_MODULES = ("net/message.py", "sim/events.py", "statemachine/command.py")

    def applies(self, relpath: str) -> bool:
        return relpath.endswith("messages.py") or relpath in self._HOT_MODULES

    def visit_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            if _dotted_name(decorator.func) not in ("dataclass", "dataclasses.dataclass"):
                continue
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    ctx.report(
                        self,
                        decorator,
                        f"frozen dataclass {node.name} in a hot wire-type module",
                    )


# ------------------------------------------------------------ scenario-hygiene


class ScenarioHygiene(Rule):
    """Every canned scenario must be checkable and hold a liveness floor."""

    id = "scenario-hygiene"
    title = "library scenarios declare checks and a progress floor"
    contract = (
        "Scenario-library convention: every canned Scenario declares its "
        "checker families explicitly and holds a min_completed liveness "
        "floor wired to the progress check, so 'safe but stuck' regressions "
        "cannot slip into the sweep"
    )
    hint = (
        'declare checks=(... , "progress") and a calibrated min_completed '
        "(well below the seed's healthy completion count)"
    )

    def applies(self, relpath: str) -> bool:
        return relpath == "scenarios/library.py"

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if _call_func_name(node.func) != "Scenario":
            return
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        name_node = keywords.get("name")
        label = (
            name_node.value
            if isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)
            else "<scenario>"
        )
        checks = keywords.get("checks")
        if checks is None:
            ctx.report(
                self, node, f"scenario {label} does not declare checks explicitly"
            )
        elif isinstance(checks, (ast.Tuple, ast.List)) and not checks.elts:
            ctx.report(self, node, f"scenario {label} declares empty checks")
        floor = keywords.get("min_completed")
        if floor is None or (
            isinstance(floor, ast.Constant)
            and isinstance(floor.value, int)
            and floor.value <= 0
        ):
            ctx.report(
                self,
                node,
                f"scenario {label} has no positive min_completed liveness floor",
            )
        elif checks is not None and not self._mentions_progress(checks):
            ctx.report(
                self,
                node,
                f"scenario {label} sets min_completed but its checks do not "
                f'visibly include "progress" (floor would be inert)',
            )

    @staticmethod
    def _mentions_progress(checks: ast.AST) -> bool:
        for node in ast.walk(checks):
            if isinstance(node, ast.Constant) and node.value == "progress":
                return True
        return False


# -------------------------------------------------------- counter-name-registry


class CounterNameRegistry(Rule):
    """String-literal metric names must exist in the documented namespace."""

    id = "counter-name-registry"
    title = "metric name literals match the documented counter namespace"
    contract = (
        "Metrics convention: a typo'd counter records to a fresh name and "
        "silently reads as zero; every literal name must appear in "
        "repro/lint/counters.py, which doubles as the namespace doc"
    )
    hint = "fix the typo, or add the new counter to repro/lint/counters.py"

    _REGISTRY_HELPERS = {"counter", "gauge", "histogram", "timeseries"}

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if not node.args or not _is_str_constant(node.args[0]):
            return
        name = node.args[0].value
        if func.attr in self._REGISTRY_HELPERS:
            # Only metric-registry receivers (a name/attribute chain), not
            # arbitrary expressions, to dodge unrelated APIs.
            if not isinstance(func.value, (ast.Name, ast.Attribute)):
                return
            if not is_known_metric(name):
                ctx.report(
                    self,
                    node,
                    f"metric name {name!r} is not in the documented namespace",
                )
        elif func.attr == "count":
            receiver = func.value
            is_replica_call = (
                isinstance(receiver, ast.Name) and receiver.id == "self"
            ) or (isinstance(receiver, ast.Attribute) and receiver.attr == "host")
            if is_replica_call and not is_known_replica_counter(name):
                ctx.report(
                    self,
                    node,
                    f"replica counter {name!r} is not in the documented namespace",
                )


# --------------------------------------------------------- suppression-hygiene


class SuppressionHygiene(Rule):
    """Suppressions must name a real rule, carry a reason, and still match."""

    id = "suppression-hygiene"
    title = "suppression comments are auditable"
    contract = (
        "Suppression policy: # lint: ok(<rule>) <reason> -- the reason is "
        "mandatory, the rule id must exist, and stale suppressions (matching "
        "no finding) are themselves findings"
    )
    hint = "write the reason after the closing paren, or delete the comment"

    def __init__(self, known_rule_ids: Optional[Set[str]] = None) -> None:
        self.known_rule_ids = known_rule_ids or set(RULES)

    def end_file(self, ctx: FileContext) -> None:
        for suppression in ctx.suppressions:
            problems = False
            if not suppression.rules:
                ctx.report_unsuppressable(
                    self, suppression.line, "suppression names no rule id"
                )
                problems = True
            for rule_id in suppression.rules:
                if rule_id not in self.known_rule_ids:
                    ctx.report_unsuppressable(
                        self,
                        suppression.line,
                        f"suppression names unknown rule {rule_id!r}",
                    )
                    problems = True
            if not suppression.reason:
                ctx.report_unsuppressable(
                    self,
                    suppression.line,
                    "suppression has no written reason (reasons are mandatory)",
                )
                problems = True
            if (
                not problems
                and not suppression.used
                and ctx.all_rules_active
                and all(r in ctx.active_rule_ids for r in suppression.rules)
            ):
                ctx.report_unsuppressable(
                    self,
                    suppression.line,
                    "stale suppression: no finding of "
                    f"{', '.join(suppression.rules)} on its target line",
                )


# -------------------------------------------------------------------- parse-error


class ParseError(Rule):
    """Framework rule: the file must parse before anything can be checked.

    Reported by the engine itself when ``ast.parse`` fails; listed here so
    the rule catalogue and ``--rule`` filtering know the id.
    """

    id = "parse-error"
    title = "file does not parse"
    contract = "Framework precondition: repro.lint needs a valid AST"
    hint = "fix the syntax error"


# ------------------------------------------------------------------- registry

#: The rule catalogue, in execution order.  ``suppression-hygiene`` must run
#: last: it audits whether the other rules' suppressions were actually used.
RULES: Dict[str, Type[Rule]] = {
    "no-wall-clock": NoWallClock,
    "no-unseeded-random": NoUnseededRandom,
    "no-unordered-iteration": NoUnorderedIteration,
    "no-hash-order": NoHashOrder,
    "wire-type-hygiene": WireTypeHygiene,
    "no-frozen-dataclass-hot-path": NoFrozenDataclassHotPath,
    "scenario-hygiene": ScenarioHygiene,
    "counter-name-registry": CounterNameRegistry,
    "suppression-hygiene": SuppressionHygiene,
    "parse-error": ParseError,
}


def default_rules(only: Optional[List[str]] = None) -> List[Rule]:
    """Instantiate the rule set, optionally restricted to ``only`` ids."""
    selected = list(RULES) if not only else list(only)
    unknown = [rule_id for rule_id in selected if rule_id not in RULES]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    rules: List[Rule] = []
    for rule_id in selected:
        if rule_id == "suppression-hygiene":
            continue  # appended last, below
        if rule_id == "parse-error":
            continue  # engine-reported, no visitor
        rules.append(RULES[rule_id]())
    if "suppression-hygiene" in selected:
        rules.append(SuppressionHygiene(set(RULES)))
    return rules
