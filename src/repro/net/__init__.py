"""Simulated network substrate.

Models what the Paxi testbed's real network provided: point-to-point message
delivery with per-link latency, per-byte transmission cost, message drops,
partitions and crashed endpoints.  Protocol code talks to the network only
through the :class:`~repro.net.transport.Transport` interface, which is also
implemented by the asyncio runtime in :mod:`repro.runtime`.
"""

from repro.net.message import Envelope, Message
from repro.net.sizes import SizeModel
from repro.net.latency import (
    LatencyModel,
    ConstantLatency,
    UniformLatency,
    NormalLatency,
    WANMatrixLatency,
)
from repro.net.topology import Topology, Region, Zone
from repro.net.faults import NetworkFaults
from repro.net.network import SimNetwork
from repro.net.transport import Transport, SimTransport

__all__ = [
    "Envelope",
    "Message",
    "SizeModel",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "NormalLatency",
    "WANMatrixLatency",
    "Topology",
    "Region",
    "Zone",
    "NetworkFaults",
    "SimNetwork",
    "Transport",
    "SimTransport",
]
