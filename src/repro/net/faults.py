"""Network-level fault injection: drops, partitions and severed links.

Node crashes are modelled at the node level (:mod:`repro.cluster.node`);
the faults here affect the fabric between live nodes.  The paper's failure
experiment (Figure 13) crashes a node outright, but link-level faults are
needed for the liveness/partition tests and the ablation benchmarks.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set, Tuple


class NetworkFaults:
    """Mutable record of currently active network faults.

    ``lossy`` is a plain attribute maintained by every mutator (cheaper than
    recomputing per send): True whenever any fault that can drop messages is
    active.  The network's send path reads it to skip :meth:`should_drop`
    entirely in the fault-free common case.  Skipping is RNG-neutral:
    ``should_drop`` only consumes randomness when ``drop_probability`` is
    positive, so fault-free runs keep byte-identical RNG streams either way.
    """

    def __init__(self, drop_probability: float = 0.0, duplicate_probability: float = 0.0) -> None:
        if not 0.0 <= duplicate_probability < 1.0:
            raise ValueError("duplicate_probability must be in [0, 1)")
        self.duplicate_probability = duplicate_probability
        self._severed: Set[Tuple[int, int]] = set()
        self._partitions: list[FrozenSet[int]] = []
        self.lossy = False
        self.drop_probability = drop_probability
        #: Optional endpoint-id canonicalisation applied before link/partition
        #: membership tests.  Sharded clusters set it to
        #: ``repro.shard.addressing.physical_node`` so that severing or
        #: partitioning a *machine* affects every shard instance it hosts
        #: (faults are physical; endpoint namespaces are logical).  ``None``
        #: (the default) keeps the historical raw-id behaviour, and the check
        #: sits behind the ``lossy`` gate so the fault-free hot path never
        #: pays for it.
        self.endpoint_key: Optional[Callable[[int], int]] = None

    @property
    def drop_probability(self) -> float:
        return self._drop_probability

    @drop_probability.setter
    def drop_probability(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        self._drop_probability = value
        self._refresh_lossy()

    def _refresh_lossy(self) -> None:
        self.lossy = bool(self._drop_probability or self._severed or self._partitions)

    # ------------------------------------------------------------- links
    def sever_link(self, a: int, b: int) -> None:
        """Block traffic in both directions between nodes ``a`` and ``b``."""
        self._severed.add((a, b))
        self._severed.add((b, a))
        self.lossy = True

    def heal_link(self, a: int, b: int) -> None:
        self._severed.discard((a, b))
        self._severed.discard((b, a))
        self._refresh_lossy()

    def link_severed(self, a: int, b: int) -> bool:
        return (a, b) in self._severed

    # ------------------------------------------------------------- partitions
    def partition(self, *groups: Iterable[int]) -> None:
        """Split the cluster so only nodes within the same group can talk.

        Nodes not mentioned in any group remain able to talk to everyone
        (matching the common "isolate these nodes" experiment shape).
        """
        self._partitions = [frozenset(group) for group in groups]
        self._refresh_lossy()

    def heal_partition(self) -> None:
        self._partitions = []
        self._refresh_lossy()

    def partitioned(self, src: int, dst: int) -> bool:
        if not self._partitions:
            return False
        src_group = next((g for g in self._partitions if src in g), None)
        dst_group = next((g for g in self._partitions if dst in g), None)
        if src_group is None or dst_group is None:
            return False
        return src_group is not dst_group

    # ------------------------------------------------------------- verdict
    def should_drop(self, src: int, dst: int, rng: random.Random) -> bool:
        """Decide whether a message from src to dst is lost."""
        key = self.endpoint_key
        if key is not None:
            src, dst = key(src), key(dst)
        if self.link_severed(src, dst):
            return True
        if self.partitioned(src, dst):
            return True
        if self.drop_probability > 0.0 and rng.random() < self.drop_probability:
            return True
        return False

    def should_duplicate(self, src: int, dst: int, rng: random.Random) -> bool:
        """Decide whether a delivered message is also delivered a second time.

        Models retransmission storms: the duplicate is an extra copy of the
        same envelope, scheduled with its own latency draw.  Only consulted
        (and only consuming randomness) when a duplicate storm is active, so
        runs without duplication keep byte-identical RNG streams.
        """
        if self.duplicate_probability <= 0.0:
            return False
        return rng.random() < self.duplicate_probability

    def active_faults(self) -> Dict[str, object]:
        """Human-readable snapshot (used in test assertions and logs)."""
        return {
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "severed_links": sorted({tuple(sorted(pair)) for pair in self._severed}),
            "partitions": [sorted(group) for group in self._partitions],
        }
