"""One-way network latency models.

The paper evaluates both a single-datacenter (LAN) setting and a WAN setting
spanning the AWS Virginia, California and Oregon regions.  The latency models
here cover both: simple constant/jittered latencies for LAN links, and a
region-to-region matrix for WAN links.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from math import cos, log, pi, sin, sqrt
from typing import Dict, Mapping, Tuple

from repro.errors import ConfigurationError


class LatencyModel(ABC):
    """Computes the one-way propagation delay between two nodes."""

    @abstractmethod
    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        """Return the one-way delay in seconds for a message from src to dst."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """A fixed one-way delay for every pair of distinct nodes."""

    one_way: float = 0.00025

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        if src == dst:
            return 0.0
        return self.one_way


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """One-way delay drawn uniformly from ``[low, high]``."""

    low: float = 0.0002
    high: float = 0.0004

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ConfigurationError(
                f"invalid uniform latency bounds: low={self.low!r} high={self.high!r}"
            )

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        if src == dst:
            return 0.0
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class NormalLatency(LatencyModel):
    """One-way delay drawn from a truncated normal distribution."""

    mean: float = 0.00025
    stddev: float = 0.00005
    floor: float = 0.00005

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        if src == dst:
            return 0.0
        # Inlined random.Random.gauss (same polar-method algorithm and spare
        # -value caching, so the draw sequence is bit-identical) -- this is
        # one call per message send, and the stdlib implementation is a
        # Python-level function.  Falls back for Random subclasses without
        # the ``gauss_next`` spare slot.
        try:
            z = rng.gauss_next
            rng.gauss_next = None
        except AttributeError:
            return max(self.floor, rng.gauss(self.mean, self.stddev))
        if z is None:
            uniform = rng.random
            x2pi = uniform() * (2.0 * pi)
            g2rad = sqrt(-2.0 * log(1.0 - uniform()))
            z = cos(x2pi) * g2rad
            rng.gauss_next = sin(x2pi) * g2rad
        value = self.mean + z * self.stddev
        floor = self.floor
        return value if value > floor else floor


# Approximate one-way inter-region latencies (seconds) between the AWS regions
# used in the paper's Figure 9: us-east-1 (Virginia), us-west-1 (California),
# us-west-2 (Oregon).  Values reflect publicly reported RTTs divided by two.
DEFAULT_WAN_MATRIX: Dict[Tuple[str, str], float] = {
    ("virginia", "virginia"): 0.00025,
    ("california", "california"): 0.00025,
    ("oregon", "oregon"): 0.00025,
    ("virginia", "california"): 0.031,
    ("virginia", "oregon"): 0.034,
    ("california", "oregon"): 0.010,
}


@dataclass
class WANMatrixLatency(LatencyModel):
    """Region-to-region latency matrix with per-node region assignment.

    Attributes:
        node_region: Maps node id to region name.
        matrix: One-way latency between region pairs.  Symmetric lookups are
            performed automatically; intra-region latency falls back to
            ``local_one_way`` if no explicit entry exists.
        jitter: Fractional uniform jitter applied to each draw (0.05 = +/-5%).
        node_zone: Optional node id -> zone name assignment for hierarchical
            (region -> zone -> node) topologies.  When both endpoints share a
            region *and* a zone, the cheaper ``zone_one_way`` applies, so the
            hierarchy's latency ordering holds: intra-zone < intra-region <
            cross-region.  An empty map (the default, and every flat/WAN
            topology) reproduces the historical two-tier behaviour exactly.
        zone_one_way: Intra-zone one-way latency (same rack row / AZ).
    """

    node_region: Mapping[int, str]
    matrix: Mapping[Tuple[str, str], float] = field(default_factory=lambda: dict(DEFAULT_WAN_MATRIX))
    local_one_way: float = 0.00025
    jitter: float = 0.05
    node_zone: Mapping[int, str] = field(default_factory=dict)
    zone_one_way: float = 0.0001

    def __post_init__(self) -> None:
        if self.node_zone and self.zone_one_way > self.local_one_way:
            raise ConfigurationError(
                "hierarchical latency needs zone_one_way <= local_one_way "
                "(intra-zone links cannot be slower than intra-region ones)"
            )

    def region_of(self, node: int) -> str:
        try:
            return self.node_region[node]
        except KeyError as exc:
            raise ConfigurationError(f"node {node!r} has no region assignment") from exc

    def base_delay(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        # Endpoints without a region assignment (benchmark clients) are treated
        # as co-located with whatever node they are talking to, mirroring the
        # paper's setup where client VMs sit next to the replicas they drive.
        if src not in self.node_region or dst not in self.node_region:
            return self.local_one_way
        region_a, region_b = self.region_of(src), self.region_of(dst)
        if region_a == region_b and self.node_zone:
            # Hierarchy leg: endpoints sharing a zone ride the cheaper
            # intra-zone link; same-region-different-zone pairs keep the
            # intra-region latency below.
            zone_a = self.node_zone.get(src)
            if zone_a is not None and zone_a == self.node_zone.get(dst):
                return self.zone_one_way
        value = self.matrix.get((region_a, region_b))
        if value is None:
            value = self.matrix.get((region_b, region_a))
        if value is None:
            if region_a == region_b:
                return self.local_one_way
            raise ConfigurationError(
                f"no latency entry between regions {region_a!r} and {region_b!r}"
            )
        return value

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        base = self.base_delay(src, dst)
        if base == 0.0 or self.jitter <= 0.0:
            return base
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
