"""Message and envelope types exchanged between nodes.

A :class:`Message` is any protocol-level payload (Phase-1a, Phase-2b, a relay
aggregate, a client request...).  The network wraps it in an
:class:`Envelope` carrying addressing and accounting information: sender,
destination, wire size in bytes, send time, and a monotonically increasing
message id used for tracing.
"""

from __future__ import annotations

import itertools
from typing import Any


class Message:
    """Base class for every protocol message.

    Subclasses are plain dataclasses in the protocol packages.  ``kind``
    defaults to the class name and is used for metrics and wire encoding.
    """

    __slots__ = ()

    @property
    def kind(self) -> str:
        return type(self).__name__

    def payload_bytes(self) -> int:
        """Size of the variable-length payload carried by this message (bytes).

        Subclasses carrying user data (commands, values, batched responses)
        override this; the default is zero, meaning the message is just
        protocol metadata whose size is covered by the fixed header estimate
        in :class:`~repro.net.sizes.SizeModel`.
        """
        return 0


_envelope_ids = itertools.count(1)


class Envelope:
    """A message in flight between two endpoints.

    A plain ``__slots__`` class (not a dataclass): one is allocated per
    attempted send, so construction must stay cheap.
    """

    __slots__ = ("src", "dst", "message", "size_bytes", "send_time", "msg_id")

    def __init__(
        self,
        src: int,
        dst: int,
        message: Any,
        size_bytes: int = 0,
        send_time: float = 0.0,
        msg_id: int = 0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.message = message
        self.size_bytes = size_bytes
        self.send_time = send_time
        self.msg_id = msg_id if msg_id else next(_envelope_ids)

    @property
    def kind(self) -> str:
        message_kind = getattr(self.message, "kind", None)
        if message_kind is not None:
            return message_kind
        return type(self.message).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope(#{self.msg_id} {self.kind} {self.src}->{self.dst} "
            f"{self.size_bytes}B @{self.send_time:.6f})"
        )


def reset_envelope_ids() -> None:
    """Reset the global envelope id counter (used by tests for determinism)."""
    global _envelope_ids
    _envelope_ids = itertools.count(1)
