"""The simulated network fabric.

``SimNetwork`` connects endpoints (consensus nodes and clients).  Sending a
message:

1. asks the :class:`~repro.net.sizes.SizeModel` for the wire size,
2. consults :class:`~repro.net.faults.NetworkFaults` (drops, partitions),
3. computes delivery time = one-way latency + transmission time, and
4. schedules delivery into the destination endpoint's inbox.

CPU cost of sending/receiving is *not* modelled here; it is charged by the
node model (:mod:`repro.cluster.node`), because that per-message processing
cost at the leader is exactly the bottleneck the paper is about.

Communication-cost accounting: every attempted send increments global
message/byte counters plus per-message-type pairs (``net.sent.<Kind>`` and
``net.sent_bytes.<Kind>``); the nodes add per-node directional counters
(``node.<id>.messages_in/out``, ``node.<id>.bytes_in/out``).  The helpers in
:mod:`repro.sim.metrics` (``node_traffic``, ``bottleneck_node``) aggregate
these into the paper-style "messages and bytes at the bottleneck node"
tables emitted by ``benchmarks/bench_scenarios.py``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Protocol

from repro.errors import NetworkError
from repro.net.faults import NetworkFaults
from repro.net.message import Envelope
from repro.net.sizes import SizeModel
from repro.net.topology import Topology
from repro.sim.engine import Simulator


class Endpoint(Protocol):
    """Anything that can receive envelopes from the network."""

    endpoint_id: int

    def deliver(self, envelope: Envelope) -> None:
        """Accept an envelope arriving off the wire."""

    def is_reachable(self) -> bool:
        """False when the endpoint is crashed and should black-hole traffic."""


class SimNetwork:
    """Delivers envelopes between registered endpoints with latency and faults."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        size_model: Optional[SizeModel] = None,
        faults: Optional[NetworkFaults] = None,
    ) -> None:
        self._sim = sim
        self._topology = topology
        self._size_model = size_model or SizeModel()
        self._faults = faults or NetworkFaults()
        self._endpoints: Dict[int, Endpoint] = {}
        self._rng = sim.random.stream("network")
        self._metrics = sim.metrics
        # Hot-path counters are resolved once; per-kind counters are looked up
        # lazily but cached so the send path avoids repeated string formatting.
        self._sent_counter = self._metrics.counter("net.messages_sent")
        self._bytes_counter = self._metrics.counter("net.bytes_sent")
        self._dropped_counter = self._metrics.counter("net.messages_dropped")
        self._duplicated_counter = self._metrics.counter("net.messages_duplicated")
        self._delivered_counter = self._metrics.counter("net.messages_delivered")
        self._undeliverable_counter = self._metrics.counter("net.messages_undeliverable")
        self._kind_counters: Dict[str, object] = {}

    # ----------------------------------------------------------------- wiring
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def faults(self) -> NetworkFaults:
        return self._faults

    @property
    def size_model(self) -> SizeModel:
        return self._size_model

    def register(self, endpoint: Endpoint) -> None:
        endpoint_id = endpoint.endpoint_id
        if endpoint_id in self._endpoints:
            raise NetworkError(f"endpoint {endpoint_id} is already registered")
        self._endpoints[endpoint_id] = endpoint

    def endpoint(self, endpoint_id: int) -> Endpoint:
        try:
            return self._endpoints[endpoint_id]
        except KeyError as exc:
            raise NetworkError(f"unknown endpoint {endpoint_id}") from exc

    def endpoints(self) -> Dict[int, Endpoint]:
        return dict(self._endpoints)

    # ----------------------------------------------------------------- sending
    def send(self, src: int, dst: int, message: Any) -> Envelope:
        """Send ``message`` from ``src`` to ``dst``; returns the envelope.

        The envelope is returned even when the message is dropped so callers
        (and tests) can account for attempted sends.
        """
        if dst not in self._endpoints:
            raise NetworkError(f"cannot send to unknown endpoint {dst}")
        size = self._size_model.size_of(message)
        envelope = Envelope(
            src=src,
            dst=dst,
            message=message,
            size_bytes=size,
            send_time=self._sim.now,
        )
        self._sent_counter.increment()
        self._bytes_counter.increment(size)
        kind = envelope.kind
        counters = self._kind_counters.get(kind)
        if counters is None:
            counters = (
                self._metrics.counter(f"net.sent.{kind}"),
                self._metrics.counter(f"net.sent_bytes.{kind}"),
            )
            self._kind_counters[kind] = counters
        kind_counter, kind_bytes_counter = counters
        kind_counter.increment()
        kind_bytes_counter.increment(size)

        if self._faults.should_drop(src, dst, self._rng):
            self._dropped_counter.increment()
            return envelope

        delay = self._delivery_delay(src, dst, size)
        self._sim.schedule(delay, self._deliver, envelope)
        if self._faults.should_duplicate(src, dst, self._rng):
            # A retransmitted copy of the same envelope with its own latency
            # draw; protocols must tolerate it (at-most-once execution,
            # per-voter reply dedup).
            self._duplicated_counter.increment()
            self._sim.schedule(self._delivery_delay(src, dst, size), self._deliver, envelope)
        return envelope

    def _delivery_delay(self, src: int, dst: int, size_bytes: int) -> float:
        propagation = self._topology.latency.delay(src, dst, self._rng)
        transmission = self._topology.transmission_delay(size_bytes)
        return propagation + transmission

    def _deliver(self, envelope: Envelope) -> None:
        endpoint = self._endpoints.get(envelope.dst)
        if endpoint is None or not endpoint.is_reachable():
            self._undeliverable_counter.increment()
            return
        self._delivered_counter.increment()
        endpoint.deliver(envelope)
