"""The simulated network fabric.

``SimNetwork`` connects endpoints (consensus nodes and clients).  Sending a
message:

1. asks the :class:`~repro.net.sizes.SizeModel` for the wire size,
2. consults :class:`~repro.net.faults.NetworkFaults` (drops, partitions),
3. computes delivery time = one-way latency + transmission time, and
4. schedules delivery into the destination endpoint's inbox.

CPU cost of sending/receiving is *not* modelled here; it is charged by the
node model (:mod:`repro.cluster.node`), because that per-message processing
cost at the leader is exactly the bottleneck the paper is about.

Communication-cost accounting: every attempted send increments global
message/byte counters plus per-message-type pairs (``net.sent.<Kind>`` and
``net.sent_bytes.<Kind>``); the nodes add per-node directional counters
(``node.<id>.messages_in/out``, ``node.<id>.bytes_in/out``).  The helpers in
:mod:`repro.sim.metrics` (``node_traffic``, ``bottleneck_node``) aggregate
these into the paper-style "messages and bytes at the bottleneck node"
tables emitted by ``benchmarks/bench_scenarios.py``.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Dict, Optional, Protocol

from repro.errors import NetworkError
from repro.net.faults import NetworkFaults
from repro.net.message import Envelope
from repro.net.sizes import SizeModel
from repro.net.topology import Topology
from repro.sim.engine import Simulator


class Endpoint(Protocol):
    """Anything that can receive envelopes from the network."""

    endpoint_id: int

    def deliver(self, envelope: Envelope) -> None:
        """Accept an envelope arriving off the wire."""

    def is_reachable(self) -> bool:
        """False when the endpoint is crashed and should black-hole traffic."""


class SimNetwork:
    """Delivers envelopes between registered endpoints with latency and faults."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        size_model: Optional[SizeModel] = None,
        faults: Optional[NetworkFaults] = None,
        latency_model=None,
    ) -> None:
        self._sim = sim
        self._topology = topology
        self._size_model = size_model or SizeModel()
        self._faults = faults or NetworkFaults()
        self._endpoints: Dict[int, Endpoint] = {}
        self._endpoints_get = self._endpoints.get
        self._rng = sim.random.stream("network")
        self._metrics = sim.metrics
        # Hot-path bindings resolved once: the latency model and bandwidth
        # are fixed for the topology's lifetime, so the per-send delay needs
        # no re-consulting of the topology object.  ``latency_model``
        # overrides the topology's model without mutating the topology --
        # sharded clusters use it to fold shard endpoints onto physical
        # nodes before every delay draw (see repro.shard.addressing).
        self._latency = latency_model if latency_model is not None else topology.latency
        # Kept as a division (not a cached reciprocal) so delivery times stay
        # bit-identical with the historical `size / bandwidth` computation.
        self._bandwidth = topology.bandwidth_bytes_per_sec or 0.0
        # Hot-path counters are resolved once; per-kind counter pairs are
        # cached per message *type* so the send path does no per-send string
        # formatting and no dynamic `kind` lookup.
        self._sent_counter = self._metrics.counter("net.messages_sent")
        self._bytes_counter = self._metrics.counter("net.bytes_sent")
        self._dropped_counter = self._metrics.counter("net.messages_dropped")
        self._duplicated_counter = self._metrics.counter("net.messages_duplicated")
        self._delivered_counter = self._metrics.counter("net.messages_delivered")
        self._undeliverable_counter = self._metrics.counter("net.messages_undeliverable")
        self._kind_counters: Dict[type, tuple] = {}
        # Locality accounting for region/zone topologies: every attempted
        # send between two placed nodes counts as local or crossing at each
        # hierarchy level.  LAN topologies have empty maps and skip the
        # branch entirely; the per-(src, dst) verdict is cached so the send
        # path stays one dict probe.  Endpoints outside the placement maps
        # (clients, shard-group endpoints) are not classified.
        self._region_map = topology.region_map()
        self._zone_map = topology.zone_map()
        self._locality_counters: Dict[tuple, tuple] = {}

    # ----------------------------------------------------------------- wiring
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def faults(self) -> NetworkFaults:
        return self._faults

    @property
    def size_model(self) -> SizeModel:
        return self._size_model

    def register(self, endpoint: Endpoint) -> None:
        endpoint_id = endpoint.endpoint_id
        if endpoint_id in self._endpoints:
            raise NetworkError(f"endpoint {endpoint_id} is already registered")
        self._endpoints[endpoint_id] = endpoint

    def endpoint(self, endpoint_id: int) -> Endpoint:
        try:
            return self._endpoints[endpoint_id]
        except KeyError as exc:
            raise NetworkError(f"unknown endpoint {endpoint_id}") from exc

    def endpoints(self) -> Dict[int, Endpoint]:
        return dict(self._endpoints)

    # ----------------------------------------------------------------- sending
    def send(self, src: int, dst: int, message: Any, size: Optional[int] = None) -> Envelope:
        """Send ``message`` from ``src`` to ``dst``; returns the envelope.

        The envelope is returned even when the message is dropped so callers
        (and tests) can account for attempted sends.  ``size`` lets a caller
        that already computed the wire size (the node CPU model charges for
        it before the message reaches the fabric) pass it through instead of
        re-deriving it.
        """
        endpoint = self._endpoints_get(dst)
        if endpoint is None:
            raise NetworkError(f"cannot send to unknown endpoint {dst}")
        sim = self._sim
        now = sim._now
        rng = self._rng
        if size is None:
            size = self._size_model.size_of(message)
        envelope = Envelope(src, dst, message, size, now)
        self._sent_counter.value += 1
        self._bytes_counter.value += size
        counters = self._kind_counters.get(type(message))
        if counters is None:
            kind = envelope.kind
            counters = (
                self._metrics.counter(f"net.sent.{kind}"),
                self._metrics.counter(f"net.sent_bytes.{kind}"),
            )
            self._kind_counters[type(message)] = counters
        counters[0].value += 1
        counters[1].value += size
        if self._region_map:
            locality = self._locality_counters.get((src, dst))
            if locality is None:
                locality = self._classify_locality(src, dst)
                self._locality_counters[(src, dst)] = locality
            for counter in locality:
                counter.value += 1

        faults = self._faults
        if faults.lossy and faults.should_drop(src, dst, rng):
            self._dropped_counter.value += 1
            return envelope

        bandwidth = self._bandwidth
        delay = self._latency.delay(src, dst, rng)
        if bandwidth:
            delay += size / bandwidth
        # Inlined EventQueue.push_call (canonical entry layout lives there):
        # delivery is the hottest scheduling site of all.  The rare duplicate
        # copy below goes through sim.post_at instead.
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        heappush(queue._heap, (now + delay, 0, seq, self._deliver, (envelope, endpoint)))
        queue._live += 1
        if faults.duplicate_probability and faults.should_duplicate(src, dst, rng):
            # A retransmitted copy of the same envelope with its own latency
            # draw; protocols must tolerate it (at-most-once execution,
            # per-voter reply dedup).
            self._duplicated_counter.value += 1
            delay = self._latency.delay(src, dst, rng)
            if bandwidth:
                delay += size / bandwidth
            sim.post_at(now + delay, self._deliver, (envelope, endpoint))
        return envelope

    def _classify_locality(self, src: int, dst: int) -> tuple:
        """Counters to bump for a (src, dst) pair, resolved once per pair.

        A message between two region-placed nodes is region-local or
        region-crossing; when both ends are also zone-placed it is
        additionally zone-local or zone-crossing (zone names are
        region-qualified, so a region crossing is always a zone crossing
        too).  Pairs with an unplaced end classify as nothing.
        """
        src_region = self._region_map.get(src)
        dst_region = self._region_map.get(dst)
        if src_region is None or dst_region is None:
            return ()
        scope = "local" if src_region == dst_region else "cross"
        counters = [self._metrics.counter(f"region.{scope}_messages")]
        src_zone = self._zone_map.get(src)
        dst_zone = self._zone_map.get(dst)
        if src_zone is not None and dst_zone is not None:
            scope = "local" if src_zone == dst_zone else "cross"
            counters.append(self._metrics.counter(f"zone.{scope}_messages"))
        return tuple(counters)

    def _delivery_delay(self, src: int, dst: int, size_bytes: int) -> float:
        propagation = self._latency.delay(src, dst, self._rng)
        if self._bandwidth:
            propagation += size_bytes / self._bandwidth
        return propagation

    def _deliver(self, envelope: Envelope, endpoint: Optional[Endpoint] = None) -> None:
        # The endpoint is resolved at send time (registrations are permanent)
        # and passed through; reachability is still checked at delivery time.
        if endpoint is None:
            endpoint = self._endpoints.get(envelope.dst)
        if endpoint is None or not endpoint.is_reachable():
            self._undeliverable_counter.value += 1
            return
        self._delivered_counter.value += 1
        endpoint.deliver(envelope)
