"""Wire-size model for protocol messages.

The paper's Section 5.6 shows throughput degrading with payload size for both
Paxos and PigPaxos; to reproduce that, every message is assigned a wire size:

    size = header_bytes + payload_bytes

``payload_bytes`` comes from the message itself (``Message.payload_bytes``),
so an aggregated relay response containing k follower votes is bigger than a
single vote, and a Phase-2a carrying a 1280-byte value is bigger than one
carrying an 8-byte value.

The size computed here feeds every layer of the communication-cost
accounting: transmission delay (:mod:`repro.net.topology`), CPU send/receive
cost (:mod:`repro.cluster.cpu`), the global and per-message-type byte
counters (:mod:`repro.net.network`), and the per-node ``bytes_in/out``
counters (:mod:`repro.cluster.node`) that
:func:`repro.sim.metrics.bottleneck_node` aggregates for the paper-style
protocol x overlay tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class SizeModel:
    """Estimates the number of bytes a message occupies on the wire.

    Attributes:
        header_bytes: Fixed per-message overhead (framing, ballot, slot ids,
            addressing).  64 bytes approximates Paxi's gob-encoded headers.
    """

    header_bytes: int = 64

    def size_of(self, message: Any) -> int:
        payload = 0
        payload_fn = getattr(message, "payload_bytes", None)
        if callable(payload_fn):
            payload = int(payload_fn())
        return self.header_bytes + max(0, payload)
