"""Wire-size model for protocol messages.

The paper's Section 5.6 shows throughput degrading with payload size for both
Paxos and PigPaxos; to reproduce that, every message is assigned a wire size:

    size = header_bytes + payload_bytes

``payload_bytes`` comes from the message itself (``Message.payload_bytes``),
so an aggregated relay response containing k follower votes is bigger than a
single vote, and a Phase-2a carrying a 1280-byte value is bigger than one
carrying an 8-byte value.

The size computed here feeds every layer of the communication-cost
accounting: transmission delay (:mod:`repro.net.topology`), CPU send/receive
cost (:mod:`repro.cluster.cpu`), the global and per-message-type byte
counters (:mod:`repro.net.network`), and the per-node ``bytes_in/out``
counters (:mod:`repro.cluster.node`) that
:func:`repro.sim.metrics.bottleneck_node` aggregates for the paper-style
protocol x overlay tables.

``size_of`` runs at least twice per send (CPU charge + network accounting),
so the "does this type carry a payload?" probe is resolved once per message
*type* and cached, instead of a dynamic ``getattr`` per call.  The cache
stores the unbound ``payload_bytes`` function (or None for payload-free
types); per-instance sizes stay fully dynamic -- only the method lookup is
cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.net.message import Message

_UNRESOLVED = object()


@dataclass(frozen=True)
class SizeModel:
    """Estimates the number of bytes a message occupies on the wire.

    Attributes:
        header_bytes: Fixed per-message overhead (framing, ballot, slot ids,
            addressing).  64 bytes approximates Paxi's gob-encoded headers.
    """

    header_bytes: int = 64
    _payload_fns: Dict[type, Optional[Callable[[Any], int]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def size_of(self, message: Any) -> int:
        mtype = type(message)
        fn = self._payload_fns.get(mtype, _UNRESOLVED)
        if fn is _UNRESOLVED:
            probe = getattr(mtype, "payload_bytes", None)
            fn = probe if callable(probe) else None
            if fn is Message.payload_bytes:
                # Inherited base implementation: the type is metadata-only
                # (always payload 0), so skip the call entirely.
                fn = None
            self._payload_fns[mtype] = fn
        if fn is None:
            return self.header_bytes
        return self.header_bytes + max(0, int(fn(message)))
