"""Cluster topology descriptions: which nodes exist and where they live.

A topology knows the node ids, the optional region of each node (used for
WAN latency and region-aligned PigPaxos relay groups), the latency model and
the per-link bandwidth.  Topology presets matching the paper's deployments
live in :mod:`repro.cluster.topologies`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, LatencyModel


@dataclass(frozen=True)
class Region:
    """A named group of co-located nodes (e.g. an AWS region)."""

    name: str
    nodes: tuple

    def __contains__(self, node: int) -> bool:
        return node in self.nodes


@dataclass
class Topology:
    """Static description of the cluster's communication fabric.

    Attributes:
        node_ids: All consensus node ids (clients get separate ids).
        latency: One-way latency model.
        bandwidth_bytes_per_sec: Per-link bandwidth used to charge
            transmission time for large messages.  ``None`` disables the
            bandwidth term (latency only).
        regions: Optional region grouping of nodes.
    """

    node_ids: Sequence[int]
    latency: LatencyModel = field(default_factory=ConstantLatency)
    bandwidth_bytes_per_sec: Optional[float] = 1.25e9 / 8 * 8  # 1.25 GB/s (10 Gbit)
    regions: List[Region] = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = list(self.node_ids)
        if len(ids) != len(set(ids)):
            raise ConfigurationError("duplicate node ids in topology")
        if not ids:
            raise ConfigurationError("topology needs at least one node")
        self.node_ids = tuple(ids)
        covered = [n for region in self.regions for n in region.nodes]
        if covered and len(covered) != len(set(covered)):
            raise ConfigurationError("a node is assigned to more than one region")

    @property
    def size(self) -> int:
        return len(self.node_ids)

    def region_of(self, node: int) -> Optional[str]:
        for region in self.regions:
            if node in region:
                return region.name
        return None

    def region_map(self) -> Dict[int, str]:
        """Node id -> region name for all nodes covered by a region."""
        return {node: region.name for region in self.regions for node in region.nodes}

    def nodes_in_region(self, name: str) -> List[int]:
        for region in self.regions:
            if region.name == name:
                return list(region.nodes)
        raise ConfigurationError(f"unknown region {name!r}")

    def transmission_delay(self, size_bytes: int) -> float:
        """Serialization/transmission time for ``size_bytes`` on one link."""
        if not self.bandwidth_bytes_per_sec:
            return 0.0
        return size_bytes / self.bandwidth_bytes_per_sec
