"""Cluster topology descriptions: which nodes exist and where they live.

A topology knows the node ids, the optional placement of each node in a
region -> zone -> node hierarchy (used for WAN latency and topology-aligned
PigPaxos relay trees), the latency model and the per-link bandwidth.

The hierarchy is strictly optional and strictly nested: a flat topology has
no regions at all, a WAN topology has regions without zones (the degenerate
one-zone-per-region case), and a planet-scale topology subdivides each
region into availability zones.  Every consumer that only understands
regions (``region_map``/``region_of``) sees exactly the same answers for a
zoned topology as for its flattened equivalent, which is what keeps all
pre-hierarchy call sites and recorded fingerprints byte-identical.

Topology presets matching the paper's deployments live in
:mod:`repro.cluster.topologies`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, LatencyModel


@dataclass(frozen=True)
class Zone:
    """A named group of co-located nodes within a region (e.g. an AWS AZ)."""

    name: str
    nodes: tuple

    def __contains__(self, node: int) -> bool:
        return node in self.nodes


@dataclass(frozen=True)
class Region:
    """A named group of co-located nodes (e.g. an AWS region).

    ``zones`` optionally subdivides the region into availability zones; an
    empty tuple (the historical construction) is the degenerate one-zone
    case.  When zones are given they must partition a subset of the
    region's nodes -- a node in a zone must be in its region, and in no
    other zone.
    """

    name: str
    nodes: tuple
    zones: tuple = ()

    def __contains__(self, node: int) -> bool:
        return node in self.nodes


@dataclass
class Topology:
    """Static description of the cluster's communication fabric.

    Attributes:
        node_ids: All consensus node ids (clients get separate ids).
        latency: One-way latency model.
        bandwidth_bytes_per_sec: Per-link bandwidth used to charge
            transmission time for large messages.  ``None`` disables the
            bandwidth term (latency only).
        regions: Optional region grouping of nodes; each region may carry
            zones (see :class:`Region`).
    """

    node_ids: Sequence[int]
    latency: LatencyModel = field(default_factory=ConstantLatency)
    bandwidth_bytes_per_sec: Optional[float] = 1.25e9 / 8 * 8  # 1.25 GB/s (10 Gbit)
    regions: List[Region] = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = list(self.node_ids)
        if len(ids) != len(set(ids)):
            raise ConfigurationError("duplicate node ids in topology")
        if not ids:
            raise ConfigurationError("topology needs at least one node")
        self.node_ids = tuple(ids)
        covered = [n for region in self.regions for n in region.nodes]
        if covered and len(covered) != len(set(covered)):
            raise ConfigurationError("a node is assigned to more than one region")
        zone_names: set = set()
        for region in self.regions:
            zoned: List[int] = []
            for zone in region.zones:
                if zone.name in zone_names:
                    raise ConfigurationError(f"duplicate zone name {zone.name!r}")
                zone_names.add(zone.name)
                for node in zone.nodes:
                    if node not in region.nodes:
                        raise ConfigurationError(
                            f"zone {zone.name!r} claims node {node} outside "
                            f"its region {region.name!r}"
                        )
                zoned.extend(zone.nodes)
            if len(zoned) != len(set(zoned)):
                raise ConfigurationError(
                    f"a node in region {region.name!r} is assigned to more than one zone"
                )

    @property
    def size(self) -> int:
        return len(self.node_ids)

    def region_of(self, node: int) -> Optional[str]:
        for region in self.regions:
            if node in region:
                return region.name
        return None

    def region_map(self) -> Dict[int, str]:
        """Node id -> region name for all nodes covered by a region."""
        return {node: region.name for region in self.regions for node in region.nodes}

    def nodes_in_region(self, name: str) -> List[int]:
        for region in self.regions:
            if region.name == name:
                return list(region.nodes)
        raise ConfigurationError(f"unknown region {name!r}")

    # ------------------------------------------------------------------ zones
    def zone_of(self, node: int) -> Optional[str]:
        for region in self.regions:
            for zone in region.zones:
                if node in zone:
                    return zone.name
        return None

    def zone_map(self) -> Dict[int, str]:
        """Node id -> zone name for all nodes covered by a zone.

        Empty for flat and region-only topologies; hierarchy-aware
        consumers (relay tree planning, the network's cross-zone traffic
        accounting) treat an empty map as "no hierarchy" and keep the
        historical behaviour.
        """
        return {
            node: zone.name
            for region in self.regions
            for zone in region.zones
            for node in zone.nodes
        }

    def nodes_in_zone(self, name: str) -> List[int]:
        for region in self.regions:
            for zone in region.zones:
                if zone.name == name:
                    return list(zone.nodes)
        raise ConfigurationError(f"unknown zone {name!r}")

    def transmission_delay(self, size_bytes: int) -> float:
        """Serialization/transmission time for ``size_bytes`` on one link."""
        if not self.bandwidth_bytes_per_sec:
            return 0.0
        return size_bytes / self.bandwidth_bytes_per_sec
