"""Transport abstraction used by protocol replicas.

Replicas never talk to :class:`~repro.net.network.SimNetwork` directly; they
use a :class:`Transport`, which is also what the asyncio runtime implements.
This keeps the protocol code identical between simulation and real sockets,
mirroring how the paper's implementation reused Paxi's networking layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable


class Transport(ABC):
    """Send-side interface handed to a protocol replica."""

    @abstractmethod
    def send(self, dst: int, message: Any) -> None:
        """Send a message to a single destination."""

    def broadcast(self, dsts: Iterable[int], message: Any) -> None:
        """Send the same message to every destination in ``dsts``."""
        for dst in dsts:
            self.send(dst, message)

    @property
    @abstractmethod
    def local_id(self) -> int:
        """Identifier of the endpoint this transport belongs to."""


class SimTransport(Transport):
    """Transport bound to one endpoint of a :class:`SimNetwork`.

    Outgoing sends are routed through the owning node so the node can charge
    per-message CPU cost before the message reaches the network; the node
    calls :meth:`push_to_network` once the cost has been paid.
    """

    def __init__(self, network: "Any", local_id: int, send_hook: Any = None) -> None:
        self._network = network
        self._local_id = local_id
        # send_hook(dst, message) -> bool: when provided (by SimNode), it may
        # defer or charge CPU for the send; returning True means it took
        # ownership of actually pushing the message to the network.
        self._send_hook = send_hook

    @property
    def local_id(self) -> int:
        return self._local_id

    def set_send_hook(self, send_hook: Any) -> None:
        self._send_hook = send_hook

    def send(self, dst: int, message: Any) -> None:
        if self._send_hook is not None and self._send_hook(dst, message):
            return
        self._network.send(self._local_id, dst, message)

    def push_to_network(self, dst: int, message: Any) -> None:
        """Bypass the hook and hand the message straight to the network."""
        self._network.send(self._local_id, dst, message)
