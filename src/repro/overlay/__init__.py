"""Pluggable fan-out overlays for wide-cast (one-to-many) messaging.

The source paper's core claim is that offloading a leader's communication
fan-out onto relay groups removes the consensus communication bottleneck.
This package turns that idea into a reusable subsystem: every replica owns a
:class:`~repro.overlay.base.FanoutOverlay` and routes its wide-cast messages
(Paxos P1a/P2a/heartbeats, EPaxos PreAccept/Accept/Commit) through it.

Three strategies ship:

* :class:`~repro.overlay.direct.DirectFanout` -- the status-quo all-to-all
  broadcast (the baseline every comparison measures against);
* :class:`~repro.overlay.relay.RelayFanout` -- PigPaxos-style relay trees
  (random relay per group per round, timed aggregation with late-response
  forwarding, dynamic reshuffling), now shared by PigPaxos and EPaxos;
* :class:`~repro.overlay.thrifty.ThriftyFanout` -- quorum-sized-subset
  sends with a full-broadcast fallback on timeout (thrifty EPaxos).

Quick start::

    from repro.cluster.builder import ClusterBuilder

    cluster = (ClusterBuilder()
               .protocol("epaxos")
               .nodes(9)
               .overlay({"kind": "relay", "num_groups": 3})
               .clients(6)
               .seed(1)
               .build())
    cluster.run(1.0)

or, declaratively, via a scenario's
``config_overrides={"overlay": {"kind": "thrifty"}}``.
"""

from repro.overlay.base import FanoutOverlay, OverlayHost
from repro.overlay.config import OVERLAY_KINDS, OverlayConfig, build_overlay
from repro.overlay.direct import DirectFanout
from repro.overlay.groups import (
    HierarchicalGroupPlan,
    RelayGroupPlan,
    contiguous_groups,
    hash_groups,
    region_groups,
    round_robin_groups,
)
from repro.overlay.messages import (
    OverlayMessage,
    RelayAggregate,
    RelayRequest,
    RelaySubtree,
)
from repro.overlay.relay import RelayFanout
from repro.overlay.thrifty import ThriftyFanout

__all__ = [
    "OVERLAY_KINDS",
    "DirectFanout",
    "FanoutOverlay",
    "HierarchicalGroupPlan",
    "OverlayConfig",
    "OverlayHost",
    "OverlayMessage",
    "RelayAggregate",
    "RelayFanout",
    "RelayGroupPlan",
    "RelayRequest",
    "RelaySubtree",
    "ThriftyFanout",
    "build_overlay",
    "contiguous_groups",
    "hash_groups",
    "region_groups",
    "round_robin_groups",
]
