"""The fan-out overlay interface.

A :class:`FanoutOverlay` decides *how* a replica's wide-cast messages reach
the rest of the cluster: directly (one message per peer), through relay
trees (PigPaxos-style, one message per relay group), or thriftily (only a
quorum-sized subset, with a fallback re-send on timeout).  Replicas route
every wide-cast through their overlay instead of calling
``broadcast(peers, ...)`` themselves, which is what makes the paper's
communication-cost comparison a pluggable axis instead of a Multi-Paxos
special case.

The overlay talks back to its hosting replica through the narrow
:class:`OverlayHost` surface: sending, scheduling, processing a wrapped
inner message as a follower (returning the response instead of sending it),
and delivering unwrapped responses into ordinary message handling.

Example (unit-style, with the test FakeContext stand-in)::

    from repro.overlay import DirectFanout
    from repro.epaxos.replica import EPaxosReplica

    replica = EPaxosReplica(overlay=DirectFanout())   # the default
    # after bind(), every PreAccept/Accept/Commit wide-cast goes through
    # replica.overlay.wide_cast(...)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Hashable, List, Optional, Protocol, Sequence

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.base import NodeContext


class OverlayHost(Protocol):
    """What a fan-out overlay may ask of the replica hosting it.

    Implemented by :class:`repro.protocol.base.Replica`: ``ctx`` exposes the
    node context (send/schedule/rng/metrics), ``process_for_overlay`` applies
    a relayed inner message locally and *returns* the response so a relay
    can aggregate it, and ``deliver_reply`` feeds an unwrapped response into
    the replica's ordinary dispatch.
    """

    protocol_name: str

    @property
    def ctx(self) -> "NodeContext": ...

    @property
    def node_id(self) -> int: ...

    @property
    def peers(self) -> List[int]: ...

    def send(self, dst: int, message: Any) -> None: ...

    def count(self, name: str, amount: float = 1.0) -> None: ...

    def process_for_overlay(self, src: int, inner: Message) -> Optional[Message]: ...

    def deliver_reply(self, src: int, response: Message) -> None: ...


class FanoutOverlay(ABC):
    """Strategy object replicas use for wide-cast (one-to-many) messaging.

    Lifecycle: constructed per replica (never shared between replicas),
    bound to its host once via :meth:`bind`, then driven entirely by the
    host: :meth:`wide_cast` on the send side, :meth:`handle_message` for any
    :class:`~repro.overlay.messages.OverlayMessage` arriving off the wire,
    :meth:`complete_round`/:meth:`on_crash` for lifecycle notifications.
    """

    name = "abstract"

    def __init__(self) -> None:
        self._host: Optional[OverlayHost] = None

    def bind(self, host: OverlayHost) -> None:
        """Attach the overlay to its hosting replica (exactly once)."""
        if self._host is not None and self._host is not host:
            raise RuntimeError(
                f"{type(self).__name__} is already bound to node "
                f"{self._host.node_id}; overlays must not be shared between replicas"
            )
        self._host = host

    @property
    def host(self) -> OverlayHost:
        if self._host is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        return self._host

    # ------------------------------------------------------------------ sending
    @abstractmethod
    def wide_cast(
        self,
        message: Message,
        *,
        expects_response: bool = True,
        round_id: Optional[Hashable] = None,
        quorum_size: Optional[int] = None,
        exclude: Optional[set] = None,
    ) -> Sequence[int]:
        """Disseminate ``message`` to the host's peers; returns first-hop targets.

        ``round_id``/``quorum_size`` describe the voting round the message
        opens (thrifty overlays use them to size the subset and arm the
        fallback); ``expects_response`` is False for fire-and-forget traffic
        (heartbeats, commit notifications) that every peer must still
        receive; ``exclude`` names peers the host believes are down.
        """

    def complete_round(self, round_id: Hashable) -> None:
        """The host reached quorum for ``round_id``; cancel any fallback."""

    # ------------------------------------------------------------------ receiving
    def handle_message(self, src: int, message: Message) -> bool:
        """Handle an overlay wrapper message; False when not recognised."""
        return False

    # ------------------------------------------------------------------ lifecycle
    def reshuffle(self) -> None:
        """Re-randomise any topology state (relay groups); default no-op."""

    def on_crash(self) -> None:
        """Drop volatile overlay state when the host node crashes."""
