"""Declarative configuration for the fan-out overlay.

``OverlayConfig`` is the serialisable description of *which* fan-out
strategy a replica should use and how it is tuned; ``build_overlay`` turns
it into a fresh :class:`~repro.overlay.base.FanoutOverlay` instance (one per
replica -- overlays hold per-node state and must never be shared).

It rides into the stack through ``ProtocolConfig.overlay``, the
``ClusterBuilder.overlay(...)`` fluent setter, or a scenario's
``config_overrides``::

    Scenario(
        name="epaxos-relay",
        protocol="epaxos",
        config_overrides={"overlay": {"kind": "relay", "num_groups": 3}},
        ...
    )

Mappings coerce to ``OverlayConfig`` automatically, so scenario specs stay
plain data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

from repro.errors import ConfigurationError

#: Every fan-out strategy the factory knows how to build.
OVERLAY_KINDS = ("direct", "relay", "thrifty")


@dataclass(frozen=True)
class OverlayConfig:
    """Tuning knobs for one replica's fan-out overlay.

    Attributes:
        kind: ``"direct"`` (all-to-all broadcast), ``"relay"`` (PigPaxos
            relay trees) or ``"thrifty"`` (quorum-subset with fallback).
        num_groups: Relay-group count (relay overlay only).
        use_region_groups: Align relay groups with topology regions when a
            region map is available (the WAN deployment of Figure 9).
        relay_timeout: How long a relay waits for its subtree before
            flushing a partial aggregate.
        relay_timeout_decay: Timeout multiplier per extra tree level.
        group_response_threshold: Optional fraction of a group a relay
            waits for before flushing early (Section 4.2); ``None`` waits
            for the whole group.
        relay_levels: Relay-tree depth (1 = the paper's single layer).
        fixed_relays: Disable per-round relay rotation (ablation).
        thrifty_fallback_timeout: How long a thrifty round may stay
            incomplete before the message is re-sent to every peer.
        commit_fallback_timeout: Relay-overlay commit durability -- when
            set, fire-and-forget fan-outs (commit notifications) demand a
            lightweight ack from each first-hop relay, and a subtree whose
            relay stays silent past this deadline is re-sent directly so a
            relay crash can no longer lose the commit for its whole group.
            ``None`` (the default) keeps the historical ack-free behaviour.
        recursive_commit_fallback: With a ``commit_fallback_timeout`` set
            and ``relay_levels > 1``, interior relays run the same
            ack/deadline/resend-subtree protocol towards their own
            sub-relays, so a deep sub-relay crash heals inside the tree
            (per-depth ``relay.depth.<d>.*`` counters).  False restores the
            first-hop-only fallback (ablation / mutation tests).
    """

    kind: str = "direct"
    num_groups: int = 3
    use_region_groups: bool = False
    relay_timeout: float = 0.05
    relay_timeout_decay: float = 0.5
    group_response_threshold: Optional[float] = None
    relay_levels: int = 1
    fixed_relays: bool = False
    thrifty_fallback_timeout: float = 0.1
    commit_fallback_timeout: Optional[float] = None
    recursive_commit_fallback: bool = True

    def __post_init__(self) -> None:
        if self.kind not in OVERLAY_KINDS:
            raise ConfigurationError(
                f"unknown overlay kind {self.kind!r}; expected one of {OVERLAY_KINDS}"
            )
        if self.num_groups < 1:
            raise ConfigurationError("num_groups must be >= 1")
        if self.relay_timeout <= 0:
            raise ConfigurationError("relay_timeout must be positive")
        if self.relay_levels < 1:
            raise ConfigurationError("relay_levels must be >= 1")
        if self.group_response_threshold is not None and not 0.0 < self.group_response_threshold <= 1.0:
            raise ConfigurationError("group_response_threshold must be in (0, 1]")
        if self.thrifty_fallback_timeout <= 0:
            raise ConfigurationError("thrifty_fallback_timeout must be positive")
        if self.commit_fallback_timeout is not None and self.commit_fallback_timeout <= 0:
            raise ConfigurationError(
                "commit_fallback_timeout must be positive (or None to disable)"
            )

    @classmethod
    def coerce(cls, value: Union["OverlayConfig", str, Mapping, None]) -> Optional["OverlayConfig"]:
        """Accept an OverlayConfig, a kind string, or a mapping of fields."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        if isinstance(value, Mapping):
            return cls(**dict(value))
        raise ConfigurationError(
            f"cannot interpret {value!r} as an overlay configuration; "
            "pass an OverlayConfig, a kind string, or a mapping"
        )


def build_overlay(
    config: Optional[OverlayConfig],
    region_of: Optional[Dict[int, str]] = None,
    zone_of: Optional[Dict[int, str]] = None,
):
    """Instantiate a fresh overlay for one replica from its config.

    ``None`` (and kind ``"direct"``) build the status-quo broadcast;
    ``region_of``/``zone_of`` feed the relay overlay's topology-aligned
    grouping (region groups, and zone sub-trees at ``relay_levels > 1``)
    and are ignored by the other kinds.
    """
    from repro.overlay.direct import DirectFanout
    from repro.overlay.relay import RelayFanout
    from repro.overlay.thrifty import ThriftyFanout

    if config is None or config.kind == "direct":
        return DirectFanout()
    if config.kind == "relay":
        return RelayFanout(
            num_groups=config.num_groups,
            use_region_groups=config.use_region_groups,
            region_of=region_of,
            zone_of=zone_of,
            relay_timeout=config.relay_timeout,
            timeout_decay=config.relay_timeout_decay,
            response_threshold=config.group_response_threshold,
            levels=config.relay_levels,
            fixed_relays=config.fixed_relays,
            commit_fallback_timeout=config.commit_fallback_timeout,
            recursive_commit_fallback=config.recursive_commit_fallback,
        )
    if config.kind == "thrifty":
        return ThriftyFanout(fallback_timeout=config.thrifty_fallback_timeout)
    raise ConfigurationError(f"unknown overlay kind {config.kind!r}")
