"""Direct (all-to-all) fan-out: the status-quo broadcast.

``DirectFanout`` sends one copy of the message to every peer -- exactly what
``Replica.broadcast`` did before the overlay layer existed.  It is the
default overlay for Multi-Paxos and EPaxos, and the baseline the paper's
communication-cost tables compare relay and thrifty fan-out against: the
fan-out root touches ``2(n-1)`` messages per round (sends plus replies),
which is the leader bottleneck PigPaxos attacks.

Example::

    from repro.overlay import DirectFanout

    overlay = DirectFanout()          # bound by the replica that owns it
    # overlay.wide_cast(msg) sends msg to every peer of the bound replica
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.net.message import Message
from repro.overlay.base import FanoutOverlay


class DirectFanout(FanoutOverlay):
    """Send wide-cast messages straight to every peer (no overlay tricks)."""

    name = "direct"

    def wide_cast(
        self,
        message: Message,
        *,
        expects_response: bool = True,
        round_id: Optional[Hashable] = None,
        quorum_size: Optional[int] = None,
        exclude: Optional[set] = None,
    ) -> List[int]:
        targets = [peer for peer in self.host.peers if not exclude or peer not in exclude]
        for peer in targets:
            self.host.send(peer, message)
        return targets
