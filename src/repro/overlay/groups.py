"""Relay-group construction and per-round relay tree building.

The paper (Section 3.2) partitions all followers into a fixed number of
disjoint relay groups, either arbitrarily (hash / round-robin) or following
the cluster topology (one group per region in the WAN deployment).  Per
round, the fan-out root picks one random member of each group as the relay.
This module provides the partitioners, the per-round tree builder (including
the optional multi-level nesting of Section 6.3) and dynamic reshuffling
(Section 4.1).  :class:`~repro.overlay.relay.RelayFanout` drives it for both
protocol families; :mod:`repro.core.groups` re-exports everything for
backwards compatibility.

Hierarchical topologies (region -> zone -> node) get a topology-aware plan:
:class:`HierarchicalGroupPlan` keeps one group per region (the one-level
special case is exactly :func:`region_groups`) and, at ``relay_levels > 1``,
nests one sub-relay per *zone* inside each region's tree instead of the
arbitrary contiguous sqrt-splitting -- region relays -> zone relays ->
leaves, so each tree edge crosses the cheapest link that can carry it.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.overlay.messages import RelaySubtree


def contiguous_groups(members: Sequence[int], num_groups: int) -> List[List[int]]:
    """Split ``members`` into ``num_groups`` contiguous, near-equal groups."""
    members = list(members)
    if num_groups < 1:
        raise ConfigurationError("num_groups must be >= 1")
    num_groups = min(num_groups, len(members)) or 1
    groups: List[List[int]] = [[] for _ in range(num_groups)]
    base, extra = divmod(len(members), num_groups)
    index = 0
    for group_index in range(num_groups):
        size = base + (1 if group_index < extra else 0)
        groups[group_index] = members[index:index + size]
        index += size
    return [group for group in groups if group]


def round_robin_groups(members: Sequence[int], num_groups: int) -> List[List[int]]:
    """Deal ``members`` into groups round-robin (interleaved membership)."""
    members = list(members)
    if num_groups < 1:
        raise ConfigurationError("num_groups must be >= 1")
    num_groups = min(num_groups, len(members)) or 1
    groups: List[List[int]] = [[] for _ in range(num_groups)]
    for position, member in enumerate(members):
        groups[position % num_groups].append(member)
    return [group for group in groups if group]


def hash_groups(members: Sequence[int], num_groups: int) -> List[List[int]]:
    """Assign members to groups by hashing their id (paper: 'with the help of a hash function')."""
    members = list(members)
    if num_groups < 1:
        raise ConfigurationError("num_groups must be >= 1")
    num_groups = min(num_groups, len(members)) or 1
    groups: List[List[int]] = [[] for _ in range(num_groups)]
    for member in members:
        # crc32, not builtin hash(): hash() of a tuple containing ints is
        # stable today, but the determinism contract wants a digest that can
        # never pick up per-process salting (PYTHONHASHSEED).
        digest = zlib.crc32(f"pig-group:{member}".encode("ascii"))
        groups[digest % num_groups].append(member)
    populated = [group for group in groups if group]
    if len(populated) < num_groups:
        # Hashing left some groups empty (small clusters); fall back to a
        # deterministic partition so the requested group count is honoured.
        return contiguous_groups(members, num_groups)
    return populated


def region_groups(members: Sequence[int], region_of: Dict[int, str]) -> List[List[int]]:
    """One relay group per region, as in the paper's WAN deployment (Fig. 9)."""
    by_region: Dict[str, List[int]] = {}
    leftovers: List[int] = []
    for member in members:
        region = region_of.get(member)
        if region is None:
            leftovers.append(member)
        else:
            by_region.setdefault(region, []).append(member)
    groups = [sorted(nodes) for _, nodes in sorted(by_region.items())]
    if leftovers:
        groups.append(sorted(leftovers))
    if not groups:
        raise ConfigurationError("region grouping produced no groups")
    return groups


@dataclass
class RelayGroupPlan:
    """The current partition of followers into relay groups, plus tree building.

    The plan is recomputed whenever the leader (and therefore the follower
    set) changes, and may be reshuffled on demand (Section 4.1).
    """

    groups: List[List[int]]

    def __post_init__(self) -> None:
        seen: set = set()
        for group in self.groups:
            if not group:
                raise ConfigurationError("relay groups must be non-empty")
            for member in group:
                if member in seen:
                    raise ConfigurationError(f"node {member} appears in more than one relay group")
                seen.add(member)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def members(self) -> List[int]:
        return [member for group in self.groups for member in group]

    def group_of(self, node: int) -> Optional[int]:
        for index, group in enumerate(self.groups):
            if node in group:
                return index
        return None

    def reshuffle(self, rng: random.Random) -> "RelayGroupPlan":
        """Return a new plan with the same group sizes but shuffled membership."""
        members = self.members
        rng.shuffle(members)
        sizes = [len(group) for group in self.groups]
        regrouped: List[List[int]] = []
        index = 0
        for size in sizes:
            regrouped.append(members[index:index + size])
            index += size
        return RelayGroupPlan(groups=regrouped)

    # ------------------------------------------------------------------ trees
    def build_trees(
        self,
        rng: random.Random,
        levels: int = 1,
        fixed_relays: bool = False,
        exclude: Optional[set] = None,
    ) -> List[RelaySubtree]:
        """Build one relay tree per group for a single round.

        ``exclude`` removes nodes the leader believes are down (used by the
        retry path so a fresh round avoids the relays that just timed out).
        """
        trees: List[RelaySubtree] = []
        for group in self.groups:
            candidates = [n for n in group if not exclude or n not in exclude]
            if not candidates:
                candidates = list(group)
            tree = self._build_group_tree(candidates, rng, levels, fixed_relays)
            trees.append(tree)
        return trees

    def _build_group_tree(
        self,
        members: List[int],
        rng: random.Random,
        levels: int,
        fixed_relays: bool,
    ) -> RelaySubtree:
        relay = members[0] if fixed_relays else rng.choice(members)
        rest = [member for member in members if member != relay]
        if levels <= 1 or len(rest) <= 1:
            children = tuple(RelaySubtree(node_id=member) for member in rest)
            return RelaySubtree(node_id=relay, children=children)
        # Multi-level: split the remainder into sub-groups, one sub-relay each.
        num_subgroups = max(1, int(round(len(rest) ** 0.5)))
        subgroups = contiguous_groups(rest, num_subgroups)
        children = tuple(
            self._build_group_tree(subgroup, rng, levels - 1, fixed_relays)
            for subgroup in subgroups
        )
        return RelaySubtree(node_id=relay, children=children)


@dataclass
class HierarchicalGroupPlan(RelayGroupPlan):
    """A region-aligned plan whose groups are further partitioned by zone.

    ``groups`` holds one group per region (plus a trailing leftover group
    for members outside every region), exactly as :func:`region_groups`
    produces them; ``zones`` is the parallel per-group partition into zone
    member lists.  At ``relay_levels <= 1`` the plan behaves identically to
    a plain region plan (same trees, same RNG draws); deeper levels route
    region relay -> zone relays -> leaves.  Reshuffling preserves both
    boundaries: membership is re-dealt *within* each zone only, so the
    rebuilt multi-level tree still follows the topology.
    """

    zones: List[List[List[int]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.zones) != len(self.groups):
            raise ConfigurationError("need one zone partition per relay group")
        for group, zone_partition in zip(self.groups, self.zones):
            flattened = [m for zone in zone_partition for m in zone]
            if sorted(flattened) != sorted(group):
                raise ConfigurationError(
                    "zone partition does not partition its relay group"
                )

    @classmethod
    def from_hierarchy(
        cls,
        members: Sequence[int],
        region_of: Dict[int, str],
        zone_of: Dict[int, str],
    ) -> "HierarchicalGroupPlan":
        """Plan from a region map + zone map (unzoned members form a
        pseudo-zone per group, regionless members a trailing group)."""
        groups = region_groups(members, region_of)
        zones: List[List[List[int]]] = []
        for group in groups:
            by_zone: Dict[str, List[int]] = {}
            unzoned: List[int] = []
            for member in group:
                zone = zone_of.get(member)
                if zone is None:
                    unzoned.append(member)
                else:
                    by_zone.setdefault(zone, []).append(member)
            partition = [sorted(nodes) for _, nodes in sorted(by_zone.items())]
            if unzoned:
                partition.append(sorted(unzoned))
            zones.append(partition)
        # Re-order each group to its zone-partition order so tree building
        # and reshuffling can walk groups and zones in lockstep.
        regrouped = [[m for zone in partition for m in zone] for partition in zones]
        return cls(groups=regrouped, zones=zones)

    def reshuffle(self, rng: random.Random) -> "HierarchicalGroupPlan":
        """Re-deal membership within each zone (boundaries are topology)."""
        new_groups: List[List[int]] = []
        new_zones: List[List[List[int]]] = []
        for zone_partition in self.zones:
            shuffled_partition: List[List[int]] = []
            for zone_members in zone_partition:
                members = list(zone_members)
                rng.shuffle(members)
                shuffled_partition.append(members)
            new_zones.append(shuffled_partition)
            new_groups.append([m for zone in shuffled_partition for m in zone])
        return HierarchicalGroupPlan(groups=new_groups, zones=new_zones)

    def build_trees(
        self,
        rng: random.Random,
        levels: int = 1,
        fixed_relays: bool = False,
        exclude: Optional[set] = None,
    ) -> List[RelaySubtree]:
        if levels <= 1:
            # One-level trees are zone-blind; the base builder draws the
            # same relays a plain region plan would.
            return super().build_trees(rng, levels, fixed_relays, exclude)
        trees: List[RelaySubtree] = []
        for group, zone_partition in zip(self.groups, self.zones):
            candidates = [n for n in group if not exclude or n not in exclude]
            if not candidates:
                candidates = list(group)
            relay = candidates[0] if fixed_relays else rng.choice(candidates)
            children: List[RelaySubtree] = []
            for zone_members in zone_partition:
                rest = [
                    n
                    for n in zone_members
                    if n != relay and (not exclude or n not in exclude)
                ]
                if not rest:
                    continue
                children.append(
                    self._build_group_tree(rest, rng, levels - 1, fixed_relays)
                )
            trees.append(RelaySubtree(node_id=relay, children=tuple(children)))
        return trees
