"""Wire messages of the relay fan-out overlay.

The relay overlay wraps ordinary protocol messages: a :class:`RelayRequest`
carries the inner message (P1a, P2a, EPreAccept, ECommit...) plus the
subtree the recipient is responsible for, and a :class:`RelayAggregate`
carries the inner responses collected within that subtree back towards the
node that started the fan-out.

Aggregation saves per-message header overhead and -- crucially for the
paper's WAN argument (Section 6.4) -- reduces the number of messages the
fan-out root sends and receives, but it does not shrink the payloads
themselves: ``RelayAggregate.payload_bytes`` is the sum of its children's
payloads.

``PigRelayRequest`` and ``PigAggregate`` in :mod:`repro.core.messages` are
aliases of these classes: PigPaxos was the first user of the relay overlay
and its wire format did not change when the machinery was generalised for
EPaxos.
"""

from __future__ import annotations

from typing import Tuple

from repro.net.message import Message


class OverlayMessage(Message):
    """Marker base class for overlay-level wrapper messages.

    Replica dispatch uses it to hand any overlay traffic to the replica's
    bound :class:`~repro.overlay.base.FanoutOverlay` without knowing which
    overlay (if any) is installed.
    """

    __slots__ = ()


class RelaySubtree:
    """One node of the relay tree, with the subtrees it must fan out to.

    A plain slotted class, immutable by convention (trees are shared across
    the requests fanned down one round).  The subtree size is computed once
    at construction: ``RelayRequest`` wire sizes need it at least twice per
    relayed send, and recomputing it was a recursive walk each time.
    """

    __slots__ = ("node_id", "children", "_size")

    def __init__(self, node_id: int, children: Tuple["RelaySubtree", ...] = ()) -> None:
        self.node_id = node_id
        self.children = children
        size = 1
        for child in children:
            size += child._size
        self._size = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelaySubtree({self.node_id}, children={self.children!r})"

    def size(self) -> int:
        """Total number of nodes in this subtree (including this node)."""
        return self._size

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def all_nodes(self) -> Tuple[int, ...]:
        nodes = [self.node_id]
        for child in self.children:
            nodes.extend(child.all_nodes())
        return tuple(nodes)


class RelayRequest(OverlayMessage):
    """A wrapped fan-out message travelling down the relay tree.

    A hand-slotted class (one is allocated per tree edge per round);
    immutable by convention, like every message.

    Attributes:
        inner: The ordinary protocol message being disseminated.
        children: Subtrees this recipient must forward the message to.
        agg_id: Aggregation session id; the recipient's RelayAggregate reply
            carries the same id so the parent can match it.  Ids embed the
            fan-out root's node id, so concurrent fan-outs from different
            roots (every EPaxos replica is one) never collide.
        timeout: How long the recipient may wait for its children before
            flushing a partial aggregate.
        expects_response: False for pure fan-out traffic (heartbeats,
            commit notifications) where the root does not need the fan-in
            leg.
        ack: True when the sender wants a delivery acknowledgement from the
            recipient relay even though the traffic itself expects no
            responses (commit-durability tracking: a relay that never acks
            is presumed crashed and its subtree is re-sent directly).  Set
            by the fan-out root when its overlay is configured with a
            ``commit_fallback_timeout``, and propagated by each interior
            relay to its own sub-relays (recursive fallback), so a deep
            sub-relay crash heals at the lowest live ancestor.
        depth: Tree depth of the recipient (first-hop relays sit at 1);
            feeds the per-depth ``relay.depth.<d>.*`` durability counters.
    """

    __slots__ = ("inner", "children", "agg_id", "timeout", "expects_response", "ack", "depth")

    def __init__(
        self,
        inner: Message,
        children: Tuple[RelaySubtree, ...],
        agg_id: int,
        timeout: float,
        expects_response: bool = True,
        ack: bool = False,
        depth: int = 1,
    ) -> None:
        self.inner = inner
        self.children = children
        self.agg_id = agg_id
        self.timeout = timeout
        self.expects_response = expects_response
        self.ack = ack
        self.depth = depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelayRequest(agg_id={self.agg_id} inner={self.inner!r})"

    def payload_bytes(self) -> int:
        inner_payload = self.inner.payload_bytes()
        # The membership list adds ~4 bytes per node id mentioned in the tree.
        membership = 0
        for subtree in self.children:
            membership += subtree._size
        return inner_payload + 4 * membership


class RelayAggregate(OverlayMessage):
    """Aggregated responses travelling back up the relay tree."""

    __slots__ = ("agg_id", "responses", "origin", "complete")

    def __init__(
        self,
        agg_id: int,
        responses: Tuple[Message, ...],
        origin: int = -1,
        complete: bool = True,
    ) -> None:
        self.agg_id = agg_id
        self.responses = responses
        self.origin = origin
        self.complete = complete

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelayAggregate(agg_id={self.agg_id} n={len(self.responses)})"

    def payload_bytes(self) -> int:
        total = 0
        for response in self.responses:
            total += response.payload_bytes() + 8
        return total
