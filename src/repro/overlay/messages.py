"""Wire messages of the relay fan-out overlay.

The relay overlay wraps ordinary protocol messages: a :class:`RelayRequest`
carries the inner message (P1a, P2a, EPreAccept, ECommit...) plus the
subtree the recipient is responsible for, and a :class:`RelayAggregate`
carries the inner responses collected within that subtree back towards the
node that started the fan-out.

Aggregation saves per-message header overhead and -- crucially for the
paper's WAN argument (Section 6.4) -- reduces the number of messages the
fan-out root sends and receives, but it does not shrink the payloads
themselves: ``RelayAggregate.payload_bytes`` is the sum of its children's
payloads.

``PigRelayRequest`` and ``PigAggregate`` in :mod:`repro.core.messages` are
aliases of these classes: PigPaxos was the first user of the relay overlay
and its wire format did not change when the machinery was generalised for
EPaxos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.net.message import Message


class OverlayMessage(Message):
    """Marker base class for overlay-level wrapper messages.

    Replica dispatch uses it to hand any overlay traffic to the replica's
    bound :class:`~repro.overlay.base.FanoutOverlay` without knowing which
    overlay (if any) is installed.
    """

    __slots__ = ()


@dataclass(frozen=True)
class RelaySubtree:
    """One node of the relay tree, with the subtrees it must fan out to."""

    node_id: int
    children: Tuple["RelaySubtree", ...] = ()

    def size(self) -> int:
        """Total number of nodes in this subtree (including this node)."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def all_nodes(self) -> Tuple[int, ...]:
        nodes = [self.node_id]
        for child in self.children:
            nodes.extend(child.all_nodes())
        return tuple(nodes)


@dataclass(frozen=True)
class RelayRequest(OverlayMessage):
    """A wrapped fan-out message travelling down the relay tree.

    Attributes:
        inner: The ordinary protocol message being disseminated.
        children: Subtrees this recipient must forward the message to.
        agg_id: Aggregation session id; the recipient's RelayAggregate reply
            carries the same id so the parent can match it.  Ids embed the
            fan-out root's node id, so concurrent fan-outs from different
            roots (every EPaxos replica is one) never collide.
        timeout: How long the recipient may wait for its children before
            flushing a partial aggregate.
        expects_response: False for pure fan-out traffic (heartbeats,
            commit notifications) where the root does not need the fan-in
            leg.
    """

    inner: Message
    children: Tuple[RelaySubtree, ...]
    agg_id: int
    timeout: float
    expects_response: bool = True

    def payload_bytes(self) -> int:
        inner_payload = self.inner.payload_bytes()
        # The membership list adds ~4 bytes per node id mentioned in the tree.
        membership = 4 * sum(subtree.size() for subtree in self.children)
        return inner_payload + membership


@dataclass(frozen=True)
class RelayAggregate(OverlayMessage):
    """Aggregated responses travelling back up the relay tree."""

    agg_id: int
    responses: Tuple[Message, ...]
    origin: int = -1
    complete: bool = True

    def payload_bytes(self) -> int:
        return sum(response.payload_bytes() + 8 for response in self.responses)
