"""Relay-tree fan-out: the paper's PigPaxos overlay, generalised.

``RelayFanout`` partitions the host's peers into relay groups and, per
wide-cast, picks one random member of each group as that round's relay
(:mod:`repro.overlay.groups`).  The wrapped message travels root → relays →
group members; responses aggregate back up the tree under a tight timeout,
so the fan-out root sends and receives one message per *group* instead of
one per *node* -- the communication-cost reduction at the heart of
conf_sigmod_CharapkoAD21.

This is the machinery that used to live inside ``PigPaxosReplica``; pulling
it out lets EPaxos route PreAccept/Accept rounds (and commit notifications)
through the very same trees, turning the paper's Multi-Paxos result into a
protocol-agnostic subsystem.  Robustness properties are preserved verbatim:

* a relay that times out (or hits its early-flush threshold) sends a
  partial aggregate, and *still forwards* late child responses towards the
  root afterwards instead of dropping votes the root may need;
* relays rotate every round, so a crashed relay only costs the rounds in
  flight; :meth:`reshuffle` additionally re-deals group membership
  (Section 4.1) -- within zones on hierarchical topologies, so the rebuilt
  multi-level tree still follows the region/zone boundaries;
* with ``commit_fallback_timeout`` set, fire-and-forget fan-outs demand
  acks hop by hop: the root covers its first-hop relays and (recursively)
  every interior relay covers its own sub-relays, re-sending a silent
  relay's subtree directly, with per-depth ``relay.depth.<d>.*`` counters;
* aggregate accounting counts distinct children only, so a child that
  flushes twice cannot mark a session complete while another child is
  silent.

Example::

    from repro.overlay import RelayFanout

    overlay = RelayFanout(num_groups=3, relay_timeout=0.05)
    # installed via EPaxosReplica(overlay=overlay) or, for PigPaxos,
    # built automatically from PigPaxosConfig.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.overlay.base import FanoutOverlay
from repro.overlay.groups import (
    HierarchicalGroupPlan,
    RelayGroupPlan,
    region_groups,
    round_robin_groups,
)
from repro.overlay.messages import RelayAggregate, RelayRequest, RelaySubtree


@dataclass(slots=True)
class _AggregationSession:
    """State a relay keeps while gathering responses for one round."""

    agg_id: int
    parent: int
    expected_children: int
    responses: List[Message] = field(default_factory=list)
    children_heard: int = 0
    children_seen: set = field(default_factory=set)
    threshold: Optional[int] = None
    timer: Optional[object] = None
    flushed: bool = False


@dataclass(slots=True)
class _CommitRound:
    """Durability tracking for one fire-and-forget fan-out hop.

    ``subtrees`` maps each next-hop relay to the subtree it must deliver
    to; a relay that has not acked by the fallback deadline is presumed
    crashed and its subtree is re-sent directly (DirectFanout-style).  The
    fan-out root opens one of these at ``depth`` 0; with recursive fallback
    every interior relay opens its own round (depth 1, 2, ...) covering its
    sub-relays, so a deep sub-relay crash heals at the lowest live ancestor
    instead of surfacing as a lost commit.
    """

    message: Message
    subtrees: Dict[int, object] = field(default_factory=dict)
    acked: set = field(default_factory=set)
    timer: Optional[object] = None
    depth: int = 0


class RelayFanout(FanoutOverlay):
    """Fan out through per-round relay trees and aggregate replies back up."""

    name = "relay"

    #: How many flushed sessions to remember for late-response forwarding.
    _FLUSHED_SESSION_MEMORY = 256

    def __init__(
        self,
        num_groups: int = 3,
        use_region_groups: bool = False,
        region_of: Optional[Dict[int, str]] = None,
        zone_of: Optional[Dict[int, str]] = None,
        relay_timeout: float = 0.05,
        timeout_decay: float = 0.5,
        response_threshold: Optional[float] = None,
        levels: int = 1,
        fixed_relays: bool = False,
        commit_fallback_timeout: Optional[float] = None,
        recursive_commit_fallback: bool = True,
    ) -> None:
        super().__init__()
        self.num_groups = num_groups
        self.use_region_groups = use_region_groups
        self.region_of = dict(region_of or {})
        self.zone_of = dict(zone_of or {})
        if use_region_groups and not self.region_of:
            # Refused at build time: silently falling back to round-robin
            # groups (the historical behaviour) turned a mis-wired WAN
            # deployment into a quietly slower one instead of an error.
            raise ConfigurationError(
                "use_region_groups=True but no region map is available; "
                "build the cluster on a WAN/hierarchical topology (or pass "
                "region_of) or disable region-aligned grouping"
            )
        self.relay_timeout = relay_timeout
        self.timeout_decay = timeout_decay
        self.response_threshold = response_threshold
        self.levels = levels
        self.fixed_relays = fixed_relays
        # Commit durability (ROADMAP item: a relay crashing mid-commit-round
        # used to lose the commit for its whole group).  When set, fire-and-
        # forget fan-outs demand a lightweight ack from each first-hop relay
        # and any subtree whose relay stays silent past the deadline is
        # re-sent directly, node by node.  None (default) keeps the
        # historical ack-free behaviour and recorded fingerprints.
        self.commit_fallback_timeout = commit_fallback_timeout
        # When True (default), interior relays run the same ack/deadline/
        # resend-subtree logic towards their own sub-relays, so a deep
        # sub-relay crash heals inside the tree.  False restores the
        # first-hop-only protocol (ablation / mutation tests).
        self.recursive_commit_fallback = recursive_commit_fallback

        self._plan: Optional[RelayGroupPlan] = None
        self._sessions: Dict[int, _AggregationSession] = {}
        self._agg_counter = 0
        # Parents of recently flushed sessions, so late child responses can
        # still be forwarded towards the fan-out root instead of being lost.
        self._flushed_parents: Dict[int, int] = {}
        # Root-side commit-durability rounds awaiting relay acks.
        self._pending_commits: Dict[int, _CommitRound] = {}

    # ------------------------------------------------------------------ groups
    def plan(self) -> RelayGroupPlan:
        """The current partition of the host's peers into relay groups."""
        if self._plan is None:
            followers = sorted(self.host.peers)
            if self.use_region_groups:
                if self.zone_of:
                    # Hierarchical topology: one group per region with zone
                    # sub-partitions, so multi-level trees follow region
                    # relay -> zone relays -> leaves instead of arbitrary
                    # splits.  At levels <= 1 this is exactly region_groups.
                    self._plan = HierarchicalGroupPlan.from_hierarchy(
                        followers, self.region_of, self.zone_of
                    )
                    return self._plan
                groups = region_groups(followers, self.region_of)
            else:
                groups = round_robin_groups(followers, self.num_groups)
            self._plan = RelayGroupPlan(groups=groups)
        return self._plan

    def set_plan(self, groups: List[List[int]]) -> None:
        """Install an explicit group layout (used by tests and ablations)."""
        self._plan = RelayGroupPlan(groups=[list(group) for group in groups])

    def reshuffle(self) -> RelayGroupPlan:
        """Dynamically reconfigure relay groups (Section 4.1)."""
        self._plan = self.plan().reshuffle(self.host.ctx.rng)
        self.host.count("group_reshuffles")
        return self._plan

    # ------------------------------------------------------------------ sending
    def wide_cast(
        self,
        message: Message,
        *,
        expects_response: bool = True,
        round_id: Optional[Hashable] = None,
        quorum_size: Optional[int] = None,
        exclude: Optional[set] = None,
    ) -> List[int]:
        """Send ``message`` down one freshly built relay tree per group."""
        trees = self.plan().build_trees(
            rng=self.host.ctx.rng,
            levels=self.levels,
            fixed_relays=self.fixed_relays,
            exclude=exclude,
        )
        self._agg_counter += 1
        agg_id = self.host.node_id * 1_000_000_000 + self._agg_counter
        want_ack = not expects_response and self.commit_fallback_timeout is not None
        relays: List[int] = []
        for tree in trees:
            request = RelayRequest(
                inner=message,
                children=tree.children,
                agg_id=agg_id,
                timeout=self.relay_timeout,
                expects_response=expects_response,
                ack=want_ack,
            )
            self.host.send(tree.node_id, request)
            relays.append(tree.node_id)
        if want_ack and relays:
            self._open_commit_round(
                agg_id, message, {tree.node_id: tree for tree in trees}, depth=0
            )
        self.host.count("relay_fanouts")
        return relays

    def _open_commit_round(
        self,
        agg_id: int,
        message: Message,
        subtrees: Dict[int, RelaySubtree],
        depth: int,
    ) -> None:
        """Arm durability tracking for one fan-out hop at ``depth``."""
        commit_round = _CommitRound(message=message, subtrees=subtrees, depth=depth)
        commit_round.timer = self.host.ctx.schedule(
            self.commit_fallback_timeout, self._commit_fallback, agg_id
        )
        self._pending_commits[agg_id] = commit_round
        self.host.count(f"relay.depth.{depth}.ack_rounds")

    # ------------------------------------------------------------------ receiving
    def handle_message(self, src: int, message: Message) -> bool:
        if isinstance(message, RelayRequest):
            self._on_relay_request(src, message)
            return True
        if isinstance(message, RelayAggregate):
            self._on_aggregate(src, message)
            return True
        return False

    # ------------------------------------------------------------------ relay / follower role
    def _on_relay_request(self, src: int, msg: RelayRequest) -> None:
        if msg.expects_response and (
            msg.agg_id in self._sessions or msg.agg_id in self._flushed_parents
        ):
            # Duplicate delivery of a request we are already serving (or just
            # served): opening a fresh session would discard the votes the
            # live session already collected, and the superseded session's
            # timer would flush the replacement early.  Leaf followers have
            # no session to protect; their repeated replies are deduplicated
            # upstream (children_seen / per-voter accounting).
            self.host.count("duplicate_relay_requests_ignored")
            return
        own_response = self.host.process_for_overlay(src, msg.inner)

        if not msg.expects_response:
            # Pure fan-out traffic (heartbeats, commits): forward and stop.
            # With recursive fallback on, this relay also demands acks from
            # its own sub-relays (children that have children) and re-sends
            # a silent sub-relay's subtree directly -- the same protocol the
            # root runs, one level down.  Leaves never ack: losing a leaf
            # loses one node's copy, not a whole subtree.
            sub_relays: Dict[int, RelaySubtree] = {}
            want_child_acks = (
                msg.ack
                and self.recursive_commit_fallback
                and self.commit_fallback_timeout is not None
                and msg.agg_id not in self._pending_commits
            )
            for child in msg.children:
                child_ack = bool(want_child_acks and child.children)
                if child_ack:
                    sub_relays[child.node_id] = child
                self._forward_to_child(child, msg, ack=child_ack)
            if sub_relays:
                self._open_commit_round(msg.agg_id, msg.inner, sub_relays, depth=msg.depth)
            if msg.ack:
                # Commit-durability leg: tell the parent this subtree's relay
                # is alive and has forwarded the round.  Duplicate requests
                # re-ack; the parent's acked-set makes that idempotent.
                self.host.send(
                    src,
                    RelayAggregate(agg_id=msg.agg_id, responses=(), origin=self.host.node_id),
                )
            return

        if not msg.children:
            # Leaf follower: answer the relay immediately.
            responses = (own_response,) if own_response is not None else ()
            self.host.send(
                src, RelayAggregate(agg_id=msg.agg_id, responses=responses, origin=self.host.node_id)
            )
            return

        # Relay role: open an aggregation session, forward to the subtree.
        session = _AggregationSession(
            agg_id=msg.agg_id,
            parent=src,
            expected_children=len(msg.children),
            threshold=self._threshold_for(len(msg.children)),
        )
        if own_response is not None:
            session.responses.append(own_response)
        self._sessions[msg.agg_id] = session
        session.timer = self.host.ctx.schedule(msg.timeout, self._session_timeout, msg.agg_id)
        for child in msg.children:
            self._forward_to_child(child, msg)
        self.host.count("relay_rounds")

    def _forward_to_child(self, child: RelaySubtree, msg: RelayRequest, ack: bool = False) -> None:
        child_timeout = max(msg.timeout * self.timeout_decay, 0.001)
        self.host.send(
            child.node_id,
            RelayRequest(
                inner=msg.inner,
                children=child.children,
                agg_id=msg.agg_id,
                timeout=child_timeout,
                expects_response=msg.expects_response,
                ack=ack,
                depth=msg.depth + 1,
            ),
        )

    def _threshold_for(self, num_children: int) -> Optional[int]:
        if self.response_threshold is None:
            return None
        return max(1, math.ceil(self.response_threshold * num_children))

    def _on_aggregate(self, src: int, msg: RelayAggregate) -> None:
        commit_round = self._pending_commits.get(msg.agg_id)
        if commit_round is not None:
            # Durability ack for a fire-and-forget round this node fanned
            # out: the relay is alive.  Once every relay acked, the round
            # is durable and the fallback is disarmed.
            if msg.origin not in commit_round.acked:
                commit_round.acked.add(msg.origin)
                self.host.count(f"relay.depth.{commit_round.depth}.acks")
            if len(commit_round.acked) >= len(commit_round.subtrees):
                if commit_round.timer is not None:
                    commit_round.timer.cancel()
                del self._pending_commits[msg.agg_id]
            return
        session = self._sessions.get(msg.agg_id)
        if session is not None and not session.flushed:
            # Count distinct children only: a child relay that flushed early
            # may send a second aggregate when its own stragglers arrive, and
            # double-counting it would flush this session "complete" while a
            # different child never reported.
            if msg.origin not in session.children_seen:
                session.children_seen.add(msg.origin)
                session.children_heard += 1
            session.responses.extend(msg.responses)
            done = session.children_heard >= session.expected_children
            early = session.threshold is not None and session.children_heard >= session.threshold
            if done or early:
                self._flush_session(session, complete=done)
            return

        parent = self._flushed_parents.get(msg.agg_id)
        if parent is not None:
            # Late child responses for a session this relay already flushed
            # (timeout or early threshold).  The fan-out root may still need
            # these votes to reach quorum, so forward them up the tree rather
            # than swallowing them; duplicates are idempotent at the root.
            if msg.responses:
                self.host.count("late_responses_forwarded")
                self.host.send(
                    parent,
                    RelayAggregate(
                        agg_id=msg.agg_id,
                        responses=msg.responses,
                        origin=self.host.node_id,
                        complete=False,
                    ),
                )
            else:
                self.host.count("late_aggregates_dropped")
            return

        if msg.responses:
            # No session was ever open for this id: we are the top of the
            # tree (the round's fan-out root).  Unwrap and feed each vote
            # into ordinary handling; stale votes are ignored there.
            for response in msg.responses:
                self.host.deliver_reply(src, response)
        else:
            self.host.count("late_aggregates_dropped")

    def _commit_fallback(self, agg_id: int) -> None:
        """A relay never acked a commit round: re-send its subtree directly.

        The crashed relay's whole group would otherwise silently miss the
        commit and stall its dependency graphs until client retries papered
        over the hole.  Re-broadcast is DirectFanout-style -- one plain copy
        of the inner message per subtree node -- and harmless to nodes that
        did receive the relayed copy (commits are idempotent).  Fires at the
        root (depth 0) for silent first-hop relays and, with recursive
        fallback, at every interior relay for its own silent sub-relays.
        """
        commit_round = self._pending_commits.pop(agg_id, None)
        if commit_round is None:
            return
        resent = 0
        for relay_id, subtree in sorted(commit_round.subtrees.items()):
            if relay_id in commit_round.acked:
                continue
            for node_id in subtree.all_nodes():
                self.host.send(node_id, commit_round.message)
                resent += 1
        if resent:
            self.host.count("commit_fallbacks")
            self.host.count("commit_fallback_resends", resent)
            self.host.count(f"relay.depth.{commit_round.depth}.fallbacks")
            self.host.count(f"relay.depth.{commit_round.depth}.fallback_resends", resent)

    def _session_timeout(self, agg_id: int) -> None:
        session = self._sessions.get(agg_id)
        if session is None or session.flushed:
            return
        self.host.count("relay_timeouts")
        self._flush_session(session, complete=False)

    def _flush_session(self, session: _AggregationSession, complete: bool) -> None:
        session.flushed = True
        if session.timer is not None:
            session.timer.cancel()
        self._sessions.pop(session.agg_id, None)
        self._flushed_parents[session.agg_id] = session.parent
        while len(self._flushed_parents) > self._FLUSHED_SESSION_MEMORY:
            self._flushed_parents.pop(next(iter(self._flushed_parents)))
        aggregate = RelayAggregate(
            agg_id=session.agg_id,
            responses=tuple(session.responses),
            origin=self.host.node_id,
            complete=complete,
        )
        self.host.send(session.parent, aggregate)

    # ------------------------------------------------------------------ lifecycle
    def on_crash(self) -> None:
        # lint: ok(no-unordered-iteration) timer cancellation is order-insensitive; nothing is scheduled here
        for session in self._sessions.values():
            if session.timer is not None:
                session.timer.cancel()
        self._sessions.clear()
        self._flushed_parents.clear()
        # lint: ok(no-unordered-iteration) timer cancellation is order-insensitive; nothing is scheduled here
        for commit_round in self._pending_commits.values():
            if commit_round.timer is not None:
                commit_round.timer.cancel()
        self._pending_commits.clear()

    # ------------------------------------------------------------------ introspection
    @property
    def open_sessions(self) -> int:
        return len(self._sessions)
