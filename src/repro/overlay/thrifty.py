"""Thrifty fan-out: message a quorum-sized subset, fall back on timeout.

``ThriftyFanout`` implements the classic "thrifty" optimisation (Moraru et
al.'s EPaxos evaluation; Paxi's ``thrifty`` flag) as an overlay: a voting
round is sent to only ``quorum_size - 1`` peers (the fan-out root votes for
itself), cutting the root's per-round message count from ``2(n-1)`` to
``2(q-1)`` when nothing goes wrong.  The price is fragility -- *every*
targeted peer must reply for the round to complete -- so each thrifty round
arms a fallback timer: if the host has not reported the round complete
within ``fallback_timeout``, the message is re-sent to **all** peers (a full
broadcast, covering both the untargeted peers and any drops on the original
sends) and the round is left to finish through ordinary vote counting.

Fire-and-forget traffic (``expects_response=False`` -- commit notifications,
heartbeats) is never thinned: every replica needs commits or its execution
graph stalls.  Only the voting legs are thrifty.

Example::

    from repro.overlay import ThriftyFanout

    overlay = ThriftyFanout(fallback_timeout=0.1)
    # EPaxosReplica(overlay=overlay) sends PreAccept to a fast-quorum-sized
    # subset; replica calls overlay.complete_round(...) when the vote closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.net.message import Message
from repro.overlay.base import FanoutOverlay


@dataclass
class _ThriftyRound:
    """An in-flight thrifty round: what was sent, and to whom it was not."""

    message: Message
    untargeted: List[int]
    timer: Optional[object] = None


class ThriftyFanout(FanoutOverlay):
    """Send voting rounds to a quorum-sized subset; full broadcast on timeout."""

    name = "thrifty"

    def __init__(self, fallback_timeout: float = 0.1) -> None:
        super().__init__()
        self.fallback_timeout = fallback_timeout
        self._pending: Dict[Hashable, _ThriftyRound] = {}

    # ------------------------------------------------------------------ sending
    def wide_cast(
        self,
        message: Message,
        *,
        expects_response: bool = True,
        round_id: Optional[Hashable] = None,
        quorum_size: Optional[int] = None,
        exclude: Optional[set] = None,
    ) -> List[int]:
        peers = [peer for peer in self.host.peers if not exclude or peer not in exclude]
        if not expects_response or round_id is None or quorum_size is None:
            # Not a voting round (or the caller gave us nothing to be
            # thrifty about): behave like a direct broadcast.
            for peer in peers:
                self.host.send(peer, message)
            return peers

        needed = max(quorum_size - 1, 0)  # the fan-out root votes for itself
        if needed >= len(peers):
            targets = list(peers)
        else:
            targets = sorted(self.host.ctx.rng.sample(peers, needed))
        for target in targets:
            self.host.send(target, message)

        untargeted = [peer for peer in peers if peer not in targets]
        previous = self._pending.pop(round_id, None)
        if previous is not None and previous.timer is not None:
            previous.timer.cancel()
        round_state = _ThriftyRound(message=message, untargeted=untargeted)
        round_state.timer = self.host.ctx.schedule(
            self.fallback_timeout, self._fallback, round_id
        )
        self._pending[round_id] = round_state
        self.host.count("thrifty_rounds")
        return targets

    def complete_round(self, round_id: Hashable) -> None:
        round_state = self._pending.pop(round_id, None)
        if round_state is not None and round_state.timer is not None:
            round_state.timer.cancel()

    def _fallback(self, round_id: Hashable) -> None:
        """Quorum not reached in time: re-send the round to every peer.

        The full re-broadcast (not just the untargeted remainder) also
        covers the case where the original thrifty send was dropped by the
        network; duplicate deliveries are idempotent at the receivers and
        deduplicated per voter at the root.
        """
        round_state = self._pending.pop(round_id, None)
        if round_state is None:
            return
        self.host.count("thrifty_fallbacks")
        for peer in self.host.peers:
            self.host.send(peer, round_state.message)

    # ------------------------------------------------------------------ lifecycle
    def on_crash(self) -> None:
        # lint: ok(no-unordered-iteration) timer cancellation is order-insensitive; nothing is scheduled here
        for round_state in self._pending.values():
            if round_state.timer is not None:
                round_state.timer.cancel()
        self._pending.clear()

    # ------------------------------------------------------------------ introspection
    @property
    def pending_rounds(self) -> int:
        return len(self._pending)
