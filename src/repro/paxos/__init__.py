"""Multi-Paxos baseline.

A single stable leader drives phase-2 rounds for every client command,
piggybacking phase-3 commits onto subsequent phase-2a messages, exactly as in
the paper's Figure 2.  The leader communicates *directly* with every
follower, which is the communication pattern whose bottleneck PigPaxos
removes.
"""

from repro.paxos.replica import MultiPaxosReplica

__all__ = ["MultiPaxosReplica"]
