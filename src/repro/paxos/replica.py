"""Multi-Paxos replica with a stable leader and commit piggybacking.

The replica plays all three classical roles (proposer, acceptor, learner).
Its phase-1/phase-2/heartbeat fan-outs route through the replica's
:class:`~repro.overlay.base.FanoutOverlay` -- :class:`DirectFanout` by
default (plain broadcast), :class:`ThriftyFanout` for quorum-subset sends,
and :class:`RelayFanout` when hosted by PigPaxos
(:mod:`repro.core.replica`), which changes *only* this message-passing
layer, mirroring how the paper's implementation reused Paxos' correctness
argument unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

from repro.overlay.base import FanoutOverlay
from repro.overlay.messages import OverlayMessage, RelayAggregate, RelayRequest
from repro.protocol.ballot import Ballot
from repro.protocol.base import Replica, TimerLike, build_batch_metrics
from repro.protocol.config import ProtocolConfig
from repro.protocol.messages import (
    ClientReply,
    ClientRequest,
    Commit,
    FillReply,
    FillRequest,
    Heartbeat,
    P1a,
    P1b,
    P2a,
    P2b,
)
from repro.quorum.systems import MajorityQuorum, QuorumSystem
from repro.quorum.tracker import BallotVoteTracker, VoteTracker
from repro.statemachine.command import CommandBatch, NoOp
from repro.statemachine.kvstore import KVStore
from repro.statemachine.log import ReplicatedLog
from repro.statemachine.sessions import ClientSessionCache


@dataclass
class _Proposal:
    """Leader-side bookkeeping for one in-flight slot.

    ``batch_clients`` is only set for :class:`CommandBatch` proposals: one
    ``(client_id, request_id)`` pair per sub-command, in batch order, so
    execution can reply per command (``client_id``/``request_id`` stay at
    their defaults then -- the per-command pairs are the reply routing).
    """

    slot: int
    command: object
    tracker: VoteTracker
    client_id: Optional[int] = None
    request_id: int = 0
    committed: bool = False
    retry_timer: Optional[TimerLike] = None
    batch_clients: Optional[Tuple[Tuple[int, int], ...]] = None


class MultiPaxosReplica(Replica):
    """A Multi-Paxos node: proposer + acceptor + learner in one process."""

    protocol_name = "paxos"

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        quorum: Optional[QuorumSystem] = None,
        overlay: Optional[FanoutOverlay] = None,
    ) -> None:
        super().__init__(overlay=overlay)
        self.config = config or ProtocolConfig()
        self._quorum = quorum

        # Acceptor state (conceptually on stable storage).
        self.promised: Ballot = Ballot.zero()
        self.log = ReplicatedLog()
        self.store = KVStore()
        # Client sessions: a bounded LRU of applied request ids (with
        # results) per client, used to make command execution at-most-once
        # (see :meth:`_apply_command`).  Survives crashes alongside log/store.
        self._client_sessions = ClientSessionCache(window=self.config.session_window)

        # Proposer / leader state.
        self.ballot: Ballot = Ballot.zero()
        self.is_leader = False
        self.leader_id: Optional[int] = None
        self.next_slot = 1
        self.commit_upto = 0
        self._proposals: Dict[int, _Proposal] = {}
        self._pending_requests: List[Tuple[int, ClientRequest]] = []
        self._phase1_tracker: Optional[BallotVoteTracker] = None
        self._phase1_timer: Optional[TimerLike] = None

        # Leader-side command batching & pipelining (PR 9).  All off when
        # batch_max_commands == 1 (the default): no buffer is ever filled,
        # no timer armed, no metric registered, so unbatched runs schedule
        # exactly the events they always did and recorded fingerprints stay
        # byte-identical.
        self._batch_enabled = self.config.batch_max_commands > 1
        self._batch_buffer: List[Tuple[object, int]] = []
        self._batch_timer: Optional[TimerLike] = None
        self._inflight_slots = 0
        self._batch_metrics = None

        # Failure detection.
        self._last_leader_contact = 0.0
        self._election_timeout = 0.0
        self._heartbeat_timer: Optional[TimerLike] = None
        self._fill_pending = False

        # Incremental commit-frontier scan state (see _apply_commit_frontier):
        # slots examined once and found uncommitted; a lazy min-heap mirror
        # of that set for the "anything missing at or below the announced
        # frontier?" verdict; gap slots not yet re-judged against the current
        # announcing ballot; the highest slot ever scanned; and the ballot
        # of the most recent scan.
        self._frontier_gaps: set = set()
        self._frontier_gap_heap: List[int] = []
        self._frontier_stale: set = set()
        self._frontier_scanned_upto = 0
        self._last_frontier_ballot: Optional[Ballot] = None

    # ------------------------------------------------------------------ setup
    @property
    def quorum(self) -> QuorumSystem:
        if self._quorum is None:
            self._quorum = MajorityQuorum(self.cluster_size)
        return self._quorum

    def start(self) -> None:
        """Bootstrap: the configured initial leader runs phase-1, everyone arms timeouts."""
        rng = self.ctx.rng
        self._election_timeout = rng.uniform(
            self.config.election_timeout_min, self.config.election_timeout_max
        )
        self._last_leader_contact = self.ctx.now
        if self.config.initial_leader is not None and self.node_id == self.config.initial_leader:
            self.ctx.schedule(0.0, self._start_phase1)
        self.ctx.schedule(self._election_timeout, self._check_leader_liveness)

    # ------------------------------------------------------------------ dispatch
    def on_message(self, src: int, message: Any) -> None:
        # The handler table is built lazily on first dispatch (subclasses
        # extend _handlers()); afterwards dispatch is one dict lookup.
        try:
            handler = self._cached_handlers.get(type(message))
        except AttributeError:
            self._cached_handlers = self._handlers()
            handler = self._cached_handlers.get(type(message))
        if handler is None:
            self.count("unknown_message")
            return
        handler(src, message)

    def _handlers(self) -> Dict[type, Any]:
        handlers = {
            ClientRequest: self._on_client_request,
            P1a: self._on_p1a,
            P1b: self._on_p1b,
            P2a: self._on_p2a,
            P2b: self._on_p2b,
            Commit: self._on_commit,
            Heartbeat: self._on_heartbeat,
            FillRequest: self._on_fill_request,
            FillReply: self._on_fill_reply,
            RelayRequest: self._on_overlay_message,
            RelayAggregate: self._on_overlay_message,
        }
        # When the bound overlay is the relay fan-out, dispatch its wire
        # types straight to its handlers, skipping two generic hops per
        # relayed message (the overlay indirection and its isinstance chain).
        request_handler = getattr(self._overlay, "_on_relay_request", None)
        aggregate_handler = getattr(self._overlay, "_on_aggregate", None)
        if request_handler is not None and aggregate_handler is not None:
            handlers[RelayRequest] = request_handler
            handlers[RelayAggregate] = aggregate_handler
        return handlers

    def _on_overlay_message(self, src: int, msg: OverlayMessage) -> None:
        if not self._overlay.handle_message(src, msg):
            self.count("unknown_message")

    # ------------------------------------------------------------------ overlay host hooks
    def process_for_overlay(self, src: int, inner: Any) -> Optional[Any]:
        """Apply a relayed inner message as a follower; return the vote (if any)."""
        if isinstance(inner, P2a):
            return self._process_p2a(inner)
        if isinstance(inner, P1a):
            return self._process_p1a(inner)
        if isinstance(inner, Heartbeat):
            self._on_heartbeat(src, inner)
            return None
        # Fall back to ordinary handling for anything else wrapped by the
        # overlay (e.g. explicit Commit messages).
        self.on_message(src, inner)
        return None

    # ------------------------------------------------------------------ phase 1
    def _start_phase1(self) -> None:
        """Try to become leader with a ballot higher than anything seen."""
        if self.is_leader:
            return
        base = max(self.promised, self.ballot)
        self.ballot = base.next_for(self.node_id)
        self.promised = self.ballot
        self.count("phase1_started")
        tracker = BallotVoteTracker(self.quorum.phase1_size)
        tracker.ack(self.node_id, self._accepted_entries(), self.commit_upto)
        self._phase1_tracker = tracker
        if tracker.satisfied:  # single-node cluster
            self._become_leader()
            return
        self._fanout_phase1(P1a(ballot=self.ballot))
        if self._phase1_timer is not None:
            self._phase1_timer.cancel()
        self._phase1_timer = self.ctx.schedule(self.config.phase1_timeout, self._phase1_timed_out)

    def _phase1_timed_out(self) -> None:
        if self.is_leader or self._phase1_tracker is None:
            return
        self.count("phase1_retry")
        self._phase1_tracker = None
        self._start_phase1()

    def _fanout_phase1(self, p1a: P1a) -> None:
        """Disseminate phase-1a through the fan-out overlay."""
        self._overlay.wide_cast(
            p1a, round_id=("p1", p1a.ballot), quorum_size=self.quorum.phase1_size
        )

    def _accepted_entries(self) -> Dict[int, Tuple[Ballot, object]]:
        """This node's accepted-but-possibly-uncommitted entries, for P1b."""
        entries: Dict[int, Tuple[Ballot, object]] = {}
        for entry in self.log.entries():
            if not entry.executed:
                entries[entry.slot] = (entry.ballot, entry.command)
        return entries

    def _process_p1a(self, msg: P1a) -> P1b:
        """Acceptor logic for a phase-1a; returns the promise without sending it."""
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self._observe_leader(msg.ballot)
            return P1b(ballot=msg.ballot, voter=self.node_id, ok=True,
                       accepted=self._accepted_entries(), commit_upto=self.commit_upto)
        return P1b(ballot=self.promised, voter=self.node_id, ok=False)

    def _on_p1a(self, src: int, msg: P1a) -> None:
        self.send(src, self._process_p1a(msg))

    def _on_p1b(self, src: int, msg: P1b) -> None:
        if self.is_leader or self._phase1_tracker is None:
            return
        if msg.ok and msg.ballot == self.ballot:
            if self._phase1_tracker.ack(msg.voter, msg.accepted, msg.commit_upto):
                self._become_leader()
        elif not msg.ok and msg.ballot > self.ballot:
            # Someone promised a higher ballot; adopt it and back off.
            self.promised = max(self.promised, msg.ballot)
            self.count("phase1_preempted")

    def _become_leader(self) -> None:
        tracker = self._phase1_tracker
        self._phase1_tracker = None
        if self._phase1_timer is not None:
            self._phase1_timer.cancel()
            self._phase1_timer = None
        self.is_leader = True
        self.leader_id = self.node_id
        self.count("became_leader")
        self._overlay.complete_round(("p1", self.ballot))

        # Re-propose every command reported by the promise quorum, fill gaps
        # with no-ops.  Slots at or below the quorum's committed frontier are
        # already decided somewhere; re-proposing the quorum's highest-ballot
        # accepted command there is still safe (classic synod recovery -- for
        # a committed slot that command necessarily equals the chosen one),
        # but a slot whose entry was executed (and therefore pruned from
        # every promise) must not be filled with a fresh no-op: it is fetched
        # from the reporting voters instead.
        to_repropose = tracker.commands_to_repropose() if tracker else {}
        quorum_commit_upto = tracker.max_commit_upto if tracker else 0
        highest = max(list(to_repropose) + [self.log.max_slot, self.commit_upto, quorum_commit_upto, 0])
        self.next_slot = highest + 1
        for slot in range(self.commit_upto + 1, self.next_slot):
            if self.log.is_committed(slot):
                continue
            command = to_repropose.get(slot)
            if command is None:
                if slot <= quorum_commit_upto:
                    continue  # pruned/executed elsewhere: fetch, don't overwrite
                existing = self.log.get(slot)
                command = existing.command if existing is not None else NoOp()
            self._propose_in_slot(slot, command, client_id=None, request_id=0)
        if quorum_commit_upto > self.commit_upto and tracker:
            self._fetch_committed_slots(tracker.commit_reports(), quorum_commit_upto)

        for client_src, request in self._pending_requests:
            self._propose(request, client_src)
        self._pending_requests.clear()
        self._schedule_heartbeat()

    def _fetch_committed_slots(self, commit_reports: Dict[int, int], upto: int) -> None:
        """Ask promise voters for committed slots this new leader is missing.

        Requests go to every voter whose reported frontier exceeds ours;
        replies are idempotent (``log.commit`` tolerates duplicates of the
        same command), so over-asking only costs messages.  A retry timer
        re-requests (from every peer) until the gap closes: under message
        loss a one-shot request could strand the leader behind a permanent
        gap it will never propose into.
        """
        missing = tuple(
            slot for slot in range(self.commit_upto + 1, upto + 1)
            if not self.log.is_committed(slot)
        )
        if not missing:
            return
        self.count("leader_fill_requests")
        # lint: ok(no-unordered-iteration) insertion order is promise-arrival order, deterministic under the sim; sorting would shift recorded fingerprints
        for voter, reported in commit_reports.items():
            if voter == self.node_id or reported <= self.commit_upto:
                continue
            wanted = tuple(slot for slot in missing if slot <= reported)
            if wanted:
                self.send(voter, FillRequest(slots=wanted, requester=self.node_id))
        self.ctx.schedule(self.config.fill_gap_timeout, self._leader_fill_check, upto)

    def _leader_fill_check(self, upto: int) -> None:
        """Re-request committed slots still missing after recovery."""
        if not self.is_leader or self.commit_upto >= upto:
            return
        missing = tuple(
            slot for slot in range(self.commit_upto + 1, upto + 1)
            if not self.log.is_committed(slot)
        )
        if missing:
            self.count("leader_fill_retries")
            for peer in self.peers:
                self.send(peer, FillRequest(slots=missing, requester=self.node_id))
        self.ctx.schedule(self.config.fill_gap_timeout, self._leader_fill_check, upto)

    # ------------------------------------------------------------------ client path
    def _on_client_request(self, src: int, msg: ClientRequest) -> None:
        self.count("client_requests")
        if self.is_leader:
            self._propose(msg, src)
        elif self.leader_id is not None and self.leader_id != self.node_id:
            # Redirect the client to the current leader.  (Paxi forwards the
            # request instead; a redirect behaves identically for throughput
            # but also works over transports where the leader has no return
            # path to a client that never connected to it.)
            client_id = msg.command.client_id if msg.command.client_id >= 0 else src
            self.send(client_id, ClientReply(
                command_uid=msg.command.uid,
                request_id=msg.command.request_id,
                client_id=client_id,
                success=False,
                leader_hint=self.leader_id,
            ))
            self.count("client_redirects")
        else:
            self._pending_requests.append((src, msg))

    def _propose(self, request: ClientRequest, client_src: int) -> None:
        command = request.command
        client_id = command.client_id if command.client_id >= 0 else client_src
        if self._batch_enabled:
            self._buffer_for_batch(command, client_id)
            return
        slot = self.next_slot
        self.next_slot += 1
        self._propose_in_slot(slot, command, client_id=client_id, request_id=command.request_id)

    # ------------------------------------------------------------------ batching
    def _batch_counters(self):
        """Lazily bound ``batch.*`` metrics (batching-enabled runs only)."""
        if self._batch_metrics is None:
            self._batch_metrics = build_batch_metrics(self.ctx.metrics)
        return self._batch_metrics

    def _pipeline_full(self) -> bool:
        depth = self.config.pipeline_depth
        return depth is not None and self._inflight_slots >= depth

    def _buffer_for_batch(self, command: object, client_id: int) -> None:
        """Queue a client command and flush by the batching rules.

        Flush triggers, in precedence order (each counted under
        ``batch.flush.<trigger>``):

        * **size** -- the buffer reached ``batch_max_commands``;
        * **delay** -- ``batch_max_delay`` elapsed since the oldest
          buffered command (timer armed only while a partial buffer waits);
        * **pipeline** -- a slot committed while commands were parked
          behind a full pipeline;
        * **immediate** -- a partial buffer with pipeline room and no delay
          bound flushes right away (light load degenerates to unbatched).

        While the pipeline is full nothing flushes; commands keep
        accumulating (up to ``batch_max_commands`` per eventual flush).
        """
        self._batch_buffer.append((command, client_id))
        if (
            self.config.batch_max_delay is not None
            and self._batch_timer is None
            and len(self._batch_buffer) < self.config.batch_max_commands
        ):
            self._batch_timer = self.ctx.schedule(
                self.config.batch_max_delay, self._batch_delay_fired
            )
        self._maybe_flush_batch("immediate")

    def _batch_delay_fired(self) -> None:
        self._batch_timer = None
        if self._batch_buffer and self.is_leader:
            self._maybe_flush_batch("delay", force_partial=True)

    def _maybe_flush_batch(self, trigger: str, force_partial: bool = False) -> None:
        buffer = self._batch_buffer
        max_commands = self.config.batch_max_commands
        while buffer and not self._pipeline_full():
            if len(buffer) >= max_commands:
                self._flush_batch(max_commands, "size")
                continue
            if self._batch_timer is not None and not force_partial:
                return  # a delay flush is pending; keep accumulating
            self._flush_batch(len(buffer), trigger)
        if not buffer and self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None

    def _flush_batch(self, count: int, trigger: str) -> None:
        buffer = self._batch_buffer
        flushed = buffer[:count]
        del buffer[:count]
        by_trigger, commands_batched, occupancy = self._batch_counters()
        by_trigger[trigger].value += 1
        commands_batched.value += count
        occupancy.observe(count)
        slot = self.next_slot
        self.next_slot += 1
        if count == 1:
            command, client_id = flushed[0]
            self._propose_in_slot(slot, command, client_id=client_id,
                                  request_id=command.request_id)
            return
        batch = CommandBatch(command for command, _ in flushed)
        batch_clients = tuple(
            (client_id, command.request_id) for command, client_id in flushed
        )
        self._propose_in_slot(slot, batch, client_id=None, request_id=0,
                              batch_clients=batch_clients)

    def _reset_batching(self) -> None:
        """Drop buffered commands on leadership loss; clients retry them."""
        self._batch_buffer.clear()
        self._inflight_slots = 0
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None

    def _propose_in_slot(
        self,
        slot: int,
        command: object,
        client_id: Optional[int],
        request_id: int,
        batch_clients: Optional[Tuple[Tuple[int, int], ...]] = None,
    ) -> None:
        self.log.accept(slot, self.ballot, command)
        tracker = VoteTracker(self.quorum.phase2_size)
        tracker.ack(self.node_id)
        proposal = _Proposal(slot=slot, command=command, tracker=tracker,
                             client_id=client_id, request_id=request_id,
                             batch_clients=batch_clients)
        self._proposals[slot] = proposal
        self._inflight_slots += 1
        p2a = P2a(ballot=self.ballot, slot=slot, command=command, commit_upto=self.commit_upto)
        self.count("p2a_rounds")
        if tracker.satisfied:  # single-node cluster
            self._commit_slot(slot)
            return
        self._fanout_phase2(p2a, proposal)

    def _fanout_phase2(self, p2a: P2a, proposal: _Proposal) -> None:
        """Disseminate phase-2a through the fan-out overlay (PigPaxos adds retries)."""
        self._overlay.wide_cast(
            p2a,
            round_id=("p2", p2a.ballot, p2a.slot),
            quorum_size=self.quorum.phase2_size,
        )

    # ------------------------------------------------------------------ acceptor path
    def _process_p2a(self, msg: P2a) -> P2b:
        """Acceptor logic for a phase-2a; returns the vote without sending it."""
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self._observe_leader(msg.ballot)
            self.log.accept(msg.slot, msg.ballot, msg.command)
            self._apply_commit_frontier(msg.commit_upto, msg.ballot)
            return P2b(ballot=msg.ballot, slot=msg.slot, voter=self.node_id, ok=True)
        return P2b(ballot=self.promised, slot=msg.slot, voter=self.node_id, ok=False)

    def _on_p2a(self, src: int, msg: P2a) -> None:
        self.send(src, self._process_p2a(msg))

    def _on_p2b(self, src: int, msg: P2b) -> None:
        if not self.is_leader:
            return
        if not msg.ok:
            if msg.ballot > self.ballot:
                self._step_down(msg.ballot)
            return
        if msg.ballot != self.ballot:
            return
        proposal = self._proposals.get(msg.slot)
        if proposal is None or proposal.committed:
            return
        if proposal.tracker.ack(msg.voter):
            self._commit_slot(msg.slot)

    # ------------------------------------------------------------------ commit & execute
    def _commit_slot(self, slot: int) -> None:
        proposal = self._proposals.get(slot)
        if proposal is None or proposal.committed:
            return
        proposal.committed = True
        if proposal.retry_timer is not None:
            proposal.retry_timer.cancel()
        self._overlay.complete_round(("p2", self.ballot, slot))
        self.log.commit(slot, self.ballot, proposal.command)
        self.count("slots_committed")
        if self._inflight_slots > 0:
            self._inflight_slots -= 1
        self._advance_commit_frontier()
        self._execute_ready()
        if self._batch_enabled and self._batch_buffer and self.is_leader:
            self._maybe_flush_batch("pipeline")

    def _advance_commit_frontier(self) -> None:
        frontier = self.commit_upto
        while self.log.is_committed(frontier + 1):
            frontier += 1
        self.commit_upto = frontier

    def _apply_command(self, command) -> object:
        """Apply ``command`` with at-most-once client-session filtering.

        The same client command can legitimately be *committed in two
        different slots*: a client retries a timed-out request against a new
        leader while the old leader's proposal survives in some follower's
        log and is re-proposed during recovery.  Both slots must commit (a
        committed slot can never change), but applying the command twice
        would let the second application clobber writes ordered between the
        two slots -- a linearizability violation the scenario checkers catch.
        Every replica executes the same committed prefix, so filtering
        duplicates here keeps all state machines identical.

        Applied ids are tracked per client (not as a high-water mark):
        open-loop clients keep several requests in flight, so a client's
        commands may commit out of request-id order and a mark would drop
        legitimate first executions.  The cache is a bounded LRU window
        (:class:`~repro.statemachine.sessions.ClientSessionCache`): retries
        only ever target requests still inside the window, so eviction never
        breaks the at-most-once guarantee in practice.
        """
        if type(command) is CommandBatch:
            # Unpack in batch order on every replica -- leader or follower --
            # applying each sub-command through this very method, so the
            # per-client dedup behaves exactly as if the commands had
            # occupied consecutive slots and all state machines stay
            # identical.  The tuple of per-command results is what the
            # leader's reply path fans back out.
            return tuple(self._apply_command(sub) for sub in command.commands)
        try:
            client_id = command.client_id
            request_id = command.request_id
        except AttributeError:
            return self.store.apply(command)
        if client_id is None or client_id < 0 or request_id <= 0:
            return self.store.apply(command)
        cached = self._client_sessions.get(client_id, request_id)
        if cached is not None:
            self.count("duplicate_commands_skipped")
            return cached
        result = self.store.apply(command)
        self._client_sessions.put(client_id, request_id, result)
        return result

    def _execute_ready(self) -> None:
        executed = self.log.execute_ready(self._apply_command)
        if not executed:
            return
        self.ctx.charge_execution(len(executed))
        for entry, result in executed:
            proposal = self._proposals.pop(entry.slot, None)
            if proposal is None:
                continue
            if proposal.batch_clients is not None:
                self._reply_batch(proposal, entry, result)
                continue
            if proposal.client_id is None:
                continue
            if getattr(entry.command, "uid", -1) != getattr(proposal.command, "uid", -1):
                # The slot was decided with a different command than this
                # node proposed into it: a new leader's recovery re-proposal
                # (often a gap-filling NoOp) won the slot after we lost the
                # ballot.  Replying would acknowledge the client's command
                # with the winner's result -- e.g. a NoOp's empty result for
                # a GET, a phantom "not found" read the linearizability
                # checker flags.  Stay silent; the client retries against
                # the new leader.  (Fuzz-found, seed 257.)
                self.count("orphaned_proposal_replies_suppressed")
                continue
            reply = ClientReply(
                command_uid=getattr(entry.command, "uid", -1),
                request_id=proposal.request_id,
                client_id=proposal.client_id,
                success=True,
                result=result,
                leader_hint=self.node_id,
            )
            self.send(proposal.client_id, reply)
            self.count("client_replies")

    def _reply_batch(self, proposal: _Proposal, entry, result) -> None:
        """Fan a batch's per-command results back to the issuing clients."""
        if getattr(entry.command, "uid", -1) != getattr(proposal.command, "uid", -1):
            # Same orphan case as the single-command path: a recovery
            # re-proposal won the slot over our batch.  Stay silent once for
            # the whole batch; every client inside retries.
            self.count("orphaned_proposal_replies_suppressed")
            return
        for (client_id, request_id), command, sub_result in zip(
            proposal.batch_clients, entry.command.commands, result
        ):
            if client_id is None or client_id < 0:
                continue
            self.send(client_id, ClientReply(
                command_uid=command.uid,
                request_id=request_id,
                client_id=client_id,
                success=True,
                result=sub_result,
                leader_hint=self.node_id,
            ))
            self.count("client_replies")

    def _apply_commit_frontier(self, commit_upto: int, ballot: Ballot) -> None:
        """Follower-side phase-3: mark slots <= commit_upto committed.

        A follower only trusts its local entry for a slot if that entry was
        accepted under the same ballot as the message announcing the commit;
        otherwise the slot is left for gap-filling.

        The scan is incremental: a naive implementation rescans the whole
        ``(commit_upto_local, commit_upto]`` window on every message, which
        is quadratic across a recovery gap (a node returning from a crash
        rescanned thousands of slots per P2a).  Instead, each slot is
        examined once; slots found uncommitted are remembered in a gap set
        and re-examined only when their log entry actually changed
        (``ReplicatedLog.dirty_slots``: late accepts, fill commits) or when
        the announcing ballot changed -- exactly the cases in which the full
        rescan could have newly committed them.  Commit decisions, the
        ``missing`` verdict and the resulting fill-request scheduling are
        bit-for-bit identical to the full rescan (the golden-fingerprint
        tests cover this).
        """
        if commit_upto <= self.commit_upto:
            return
        log = self.log
        gaps = self._frontier_gaps
        dirty = log.dirty_slots
        stale = self._frontier_stale
        if ballot != self._last_frontier_ballot:
            # A different ballot is announcing commits: every remembered gap
            # must be re-judged against it (the full rescan would have).
            self._last_frontier_ballot = ballot
            stale.clear()
            stale.update(gaps)
        if gaps:
            # Re-examine exactly the gap slots the old full rescan could have
            # newly committed, bounded by the announced frontier: slots whose
            # entries changed (late accepts, fill commits) and slots not yet
            # judged against the current ballot.
            if dirty:
                pending = {s for s in gaps & dirty if s <= commit_upto}
            else:
                pending = set()
            if stale:
                pending.update(s for s in stale if s <= commit_upto)
            for slot in sorted(pending):
                stale.discard(slot)
                entry = log.get(slot)
                if entry is None:
                    continue
                if entry.committed:
                    gaps.discard(slot)
                elif entry.ballot == ballot:
                    log.commit(slot, entry.ballot, entry.command)
                    gaps.discard(slot)
        if dirty:
            # Retain dirt for gap slots beyond this announcement: they were
            # not re-judged (the full rescan would not have reached them
            # either) and must be rechecked when a later announcement covers
            # them.  Everything else has been consumed or is irrelevant.
            if gaps:
                keep = [s for s in dirty if s > commit_upto and s in gaps]
                dirty.clear()
                dirty.update(keep)
            else:
                dirty.clear()
        heap = self._frontier_gap_heap
        start = self._frontier_scanned_upto + 1
        low = self.commit_upto + 1
        if start < low:
            start = low
        for slot in range(start, commit_upto + 1):
            entry = log.get(slot)
            if entry is None or (entry.ballot != ballot and not entry.committed):
                gaps.add(slot)
                heappush(heap, slot)
                continue
            if not entry.committed:
                log.commit(slot, entry.ballot, entry.command)
        if commit_upto > self._frontier_scanned_upto:
            self._frontier_scanned_upto = commit_upto
        self._advance_commit_frontier()
        self.commit_upto = max(self.commit_upto, 0)
        self._execute_ready()
        while heap and heap[0] not in gaps:
            heappop(heap)
        missing = bool(heap) and heap[0] <= commit_upto
        if missing and not self._fill_pending and self.leader_id is not None:
            self._fill_pending = True
            self.ctx.schedule(self.config.fill_gap_timeout, self._request_fill, commit_upto)

    def _request_fill(self, commit_upto: int) -> None:
        self._fill_pending = False
        if self.is_leader or self.leader_id is None:
            return
        missing = tuple(
            slot for slot in range(self.log.next_execute_slot, commit_upto + 1)
            if not self.log.is_committed(slot)
        )
        if missing:
            self.count("fill_requests")
            self.send(self.leader_id, FillRequest(slots=missing, requester=self.node_id))

    def _on_fill_request(self, src: int, msg: FillRequest) -> None:
        entries = []
        for slot in msg.slots:
            entry = self.log.get(slot)
            if entry is not None and entry.committed:
                entries.append((slot, entry.ballot, entry.command))
        if entries:
            self.send(msg.requester, FillReply(entries=tuple(entries)))

    def _on_fill_reply(self, src: int, msg: FillReply) -> None:
        for slot, ballot, command in msg.entries:
            self.log.commit(slot, ballot, command)
        self._advance_commit_frontier()
        self._execute_ready()

    def _on_commit(self, src: int, msg: Commit) -> None:
        self.log.commit(msg.slot, msg.ballot, msg.command)
        self._observe_leader(msg.ballot)
        self._apply_commit_frontier(msg.commit_upto, msg.ballot)
        self._advance_commit_frontier()
        self._execute_ready()

    # ------------------------------------------------------------------ liveness
    def _observe_leader(self, ballot: Ballot) -> None:
        self._last_leader_contact = self.ctx.now
        # ballot.node_id is the proposer (.leader is a property alias; the
        # plain field skips a Python-level call on every message).
        if ballot.node_id != self.node_id:
            self.leader_id = ballot.node_id
            if self.is_leader and ballot > self.ballot:
                self._step_down(ballot)

    def _step_down(self, higher: Ballot) -> None:
        self.count("stepped_down")
        self.is_leader = False
        self.promised = max(self.promised, higher)
        self.leader_id = higher.leader
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        if self._batch_enabled:
            self._reset_batching()

    def _schedule_heartbeat(self) -> None:
        if not self.is_leader:
            return
        self._heartbeat_timer = self.ctx.schedule(self.config.heartbeat_interval, self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        if not self.is_leader:
            return
        heartbeat = Heartbeat(ballot=self.ballot, commit_upto=self.commit_upto)
        self._fanout_heartbeat(heartbeat)
        self._schedule_heartbeat()

    def _fanout_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Disseminate the heartbeat; never thinned (every follower needs it)."""
        self._overlay.wide_cast(heartbeat, expects_response=False)

    def _on_heartbeat(self, src: int, msg: Heartbeat) -> None:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self._observe_leader(msg.ballot)
            self._apply_commit_frontier(msg.commit_upto, msg.ballot)

    def _check_leader_liveness(self) -> None:
        if not self.is_leader:
            silent_for = self.ctx.now - self._last_leader_contact
            if silent_for >= self._election_timeout:
                self.count("election_triggered")
                self._start_phase1()
                self._last_leader_contact = self.ctx.now
        self.ctx.schedule(self._election_timeout, self._check_leader_liveness)

    # ------------------------------------------------------------------ crash / recover
    def on_crash(self) -> None:
        # Promised ballot, log and store model stable storage and survive;
        # leader-volatile state (and overlay session state) does not.
        super().on_crash()
        self.is_leader = False
        self._proposals.clear()
        self._pending_requests.clear()
        self._phase1_tracker = None
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        if self._batch_enabled:
            self._reset_batching()

    def on_recover(self) -> None:
        self._last_leader_contact = self.ctx.now
        self.ctx.schedule(self._election_timeout, self._check_leader_liveness)

    # ------------------------------------------------------------------ introspection
    def status(self) -> Dict[str, object]:
        """Diagnostic snapshot used by tests and examples."""
        return {
            "node": self.node_id,
            "is_leader": self.is_leader,
            "leader_id": self.leader_id,
            "ballot": tuple(self.ballot),
            "promised": tuple(self.promised),
            "commit_upto": self.commit_upto,
            "executed": self.log.executed_count,
            "log_size": len(self.log),
            "kv_size": len(self.store),
        }
