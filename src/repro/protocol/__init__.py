"""Shared protocol infrastructure.

Everything that Multi-Paxos, PigPaxos and EPaxos have in common lives here:
ballot numbers, the client-facing and Paxos wire messages, the replica base
class, and the :class:`~repro.protocol.base.NodeContext` interface through
which replicas reach the outside world (transport, timers, randomness,
CPU-cost accounting).  Keeping protocols behind this interface is what lets
the same replica classes run both in the discrete-event simulator and in the
asyncio runtime.
"""

from repro.protocol.ballot import Ballot
from repro.protocol.config import ProtocolConfig
from repro.protocol.messages import (
    ClientRequest,
    ClientReply,
    P1a,
    P1b,
    P2a,
    P2b,
    Commit,
    FillRequest,
    FillReply,
    Heartbeat,
)
from repro.protocol.base import NodeContext, Replica

__all__ = [
    "Ballot",
    "ProtocolConfig",
    "ClientRequest",
    "ClientReply",
    "P1a",
    "P1b",
    "P2a",
    "P2b",
    "Commit",
    "FillRequest",
    "FillReply",
    "Heartbeat",
    "NodeContext",
    "Replica",
]
