"""Ballot numbers.

A ballot is a ``(round, node_id)`` pair ordered lexicographically, the usual
construction that makes ballots unique per proposer while remaining totally
ordered.  ``Ballot.zero()`` sorts below every real ballot.
"""

from __future__ import annotations

from typing import NamedTuple


class Ballot(NamedTuple):
    """A totally ordered, proposer-unique ballot number."""

    round: int
    node_id: int

    @classmethod
    def zero(cls) -> "Ballot":
        """The ballot smaller than any ballot a node can propose."""
        return cls(0, -1)

    def next_for(self, node_id: int) -> "Ballot":
        """The smallest ballot owned by ``node_id`` that is larger than this one."""
        return Ballot(self.round + 1, node_id)

    @property
    def leader(self) -> int:
        """The node that owns this ballot (proposer id)."""
        return self.node_id

    def is_zero(self) -> bool:
        return self.round == 0 and self.node_id == -1

    def __str__(self) -> str:
        return f"{self.round}.{self.node_id}"
