"""Replica base class and the context interface replicas run against.

A replica is a pure protocol state machine: it reacts to incoming messages
and timer callbacks, and it affects the world only through its
:class:`NodeContext`.  The context is implemented by
:class:`repro.cluster.node.SimNode` for simulation and by
:class:`repro.runtime.server.AsyncNodeContext` for the asyncio runtime.

Every replica also owns a :class:`~repro.overlay.base.FanoutOverlay` through
which it routes wide-cast (one-to-many) messages; the base class provides
the :class:`~repro.overlay.base.OverlayHost` hooks the overlay calls back
into (``process_for_overlay``, ``deliver_reply``).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, List, Optional, Protocol, Sequence

from repro.overlay.base import FanoutOverlay
from repro.overlay.direct import DirectFanout
from repro.sim.metrics import MetricsRegistry


class TimerLike(Protocol):
    """Minimal interface of the handle returned by ``NodeContext.schedule``."""

    def cancel(self) -> None: ...


class NodeContext(Protocol):
    """Everything a replica may ask of the node hosting it."""

    @property
    def node_id(self) -> int: ...

    @property
    def all_nodes(self) -> Sequence[int]:
        """Ids of every consensus node in the cluster, including this one."""
        ...

    @property
    def now(self) -> float: ...

    @property
    def rng(self) -> random.Random: ...

    @property
    def metrics(self) -> MetricsRegistry: ...

    def send(self, dst: int, message: Any) -> None: ...

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> TimerLike: ...

    def charge_execution(self, commands: int = 1) -> None:
        """Charge CPU time for applying ``commands`` to the state machine."""
        ...

    def charge_graph_work(self, vertices: int) -> None:
        """Charge CPU time for dependency-graph traversal (EPaxos execution)."""
        ...

    def charge_overhead(self, units: float = 1.0) -> None:
        """Charge per-instance protocol bookkeeping (EPaxos dependency tracking)."""
        ...


def build_batch_metrics(metrics: MetricsRegistry):
    """Resolve the shared ``batch.*`` instruments once per batching replica.

    Returns ``(flush_counters_by_trigger, commands_batched, occupancy)``.
    Only called by replicas with batching enabled
    (``ProtocolConfig.batch_max_commands > 1``), so unbatched runs never
    register these names and their metric snapshots stay unchanged.  The
    Paxos family uses the size/delay/pipeline/immediate triggers; EPaxos
    uses size/delay/conflict/immediate (see the replicas for the rules).
    """
    return (
        {
            "size": metrics.counter("batch.flush.size"),
            "delay": metrics.counter("batch.flush.delay"),
            "pipeline": metrics.counter("batch.flush.pipeline"),
            "conflict": metrics.counter("batch.flush.conflict"),
            "immediate": metrics.counter("batch.flush.immediate"),
        },
        metrics.counter("batch.commands_batched"),
        metrics.histogram("batch.occupancy"),
    )


class Replica(ABC):
    """Base class for protocol replicas.

    Subclasses implement :meth:`on_message` and :meth:`start`.  The host node
    wires itself in through :meth:`bind` before the simulation (or server)
    starts delivering messages.
    """

    protocol_name = "abstract"

    #: Host node id; a plain attribute (not a property) because protocol code
    #: reads it on nearly every message.  -1 until :meth:`bind` runs.
    node_id: int = -1

    def __init__(self, overlay: Optional[FanoutOverlay] = None) -> None:
        self._ctx: Optional[NodeContext] = None
        self._overlay: FanoutOverlay = overlay or DirectFanout()
        self._overlay.bind(self)
        # Per-replica counter cache: ``count()`` fires on most protocol
        # steps, and resolving "<protocol>.<name>" through the registry
        # costs an f-string + dict lookup each time.
        self._counter_cache: dict = {}

    # ----------------------------------------------------------------- wiring
    def bind(self, ctx: NodeContext) -> None:
        """Attach the replica to its host node context."""
        self._ctx = ctx
        self._counter_cache.clear()
        # Shadow the class-level send helper with the context's bound method:
        # replica sends are the hottest protocol->node edge, and the instance
        # attribute skips two call hops (Replica.send and the ctx property).
        self.send = ctx.send
        self.node_id = ctx.node_id

    @property
    def overlay(self) -> FanoutOverlay:
        """The fan-out overlay this replica's wide-casts route through."""
        return self._overlay

    @property
    def ctx(self) -> NodeContext:
        if self._ctx is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        return self._ctx

    @property
    def peers(self) -> List[int]:
        """Every consensus node except this one."""
        return [n for n in self.ctx.all_nodes if n != self.ctx.node_id]

    @property
    def cluster_size(self) -> int:
        return len(self.ctx.all_nodes)

    # ----------------------------------------------------------------- hooks
    def start(self) -> None:
        """Called once when the node starts (bootstrap timers, elections...)."""

    @abstractmethod
    def on_message(self, src: int, message: Any) -> None:
        """Handle a message delivered off the wire from endpoint ``src``."""

    def on_crash(self) -> None:
        """Called when the host node crashes (volatile state may be dropped)."""
        self._overlay.on_crash()

    def on_recover(self) -> None:
        """Called when the host node recovers from a crash."""

    # ----------------------------------------------------------------- overlay host hooks
    def process_for_overlay(self, src: int, inner: Any) -> Optional[Any]:
        """Apply a relayed inner message locally; return the response (if any).

        The relay overlay needs the response *returned* rather than sent so
        it can aggregate it with its subtree's responses.  The default just
        feeds the message through ordinary dispatch (correct for protocols
        that only ever see fire-and-forget traffic relayed); protocols whose
        voting rounds travel through relay trees override this to capture
        the vote.
        """
        self.on_message(src, inner)
        return None

    def deliver_reply(self, src: int, response: Any) -> None:
        """Feed an unwrapped overlay response into ordinary message handling."""
        self.on_message(src, response)

    # ----------------------------------------------------------------- helpers
    def send(self, dst: int, message: Any) -> None:
        self.ctx.send(dst, message)

    def broadcast(self, dsts: Iterable[int], message: Any) -> None:
        for dst in dsts:
            self.ctx.send(dst, message)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a protocol-level metric counter namespaced by node id."""
        counter = self._counter_cache.get(name)
        if counter is None:
            counter = self.ctx.metrics.counter(f"{self.protocol_name}.{name}")
            self._counter_cache[name] = counter
        counter.value += amount
