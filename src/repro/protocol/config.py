"""Protocol configuration knobs shared by all replicas."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.overlay.config import OverlayConfig
from repro.statemachine.sessions import DEFAULT_SESSION_WINDOW

#: Default EPaxos explicit-prepare deadline (seconds of virtual time).
#: Recovery has been on by default since the fuzzing PR: the fuzz fleet
#: exercises crash schedules constantly and a degraded-mode default made
#: every one of them a liveness collapse.  The Paxos family treats this
#: exact value as "unset" (the knob is EPaxos-only); pass ``None`` to get
#: the historical degraded mode (see ``epaxos-crash-degraded``).
DEFAULT_RECOVERY_TIMEOUT = 0.25


@dataclass
class ProtocolConfig:
    """Timing and behaviour knobs common to Multi-Paxos and PigPaxos.

    Attributes:
        heartbeat_interval: How often an idle leader broadcasts heartbeats /
            commit notifications (seconds of virtual time).
        election_timeout_min / election_timeout_max: A follower that hears
            nothing from a leader for a duration drawn uniformly from this
            range starts its own phase-1 with a higher ballot.
        phase1_timeout: How long a candidate waits for promises before
            retrying phase-1 with a fresh ballot.
        fill_gap_timeout: How long a follower waits on a log gap before
            requesting the missing slots from the leader.
        initial_leader: Node that proactively runs phase-1 at start-up
            (``None`` disables bootstrap and leaves election to timeouts).
        session_window: Per-client at-most-once dedup window -- how many of
            a client's most recently applied request results each replica
            retains (see :mod:`repro.statemachine.sessions`).
        recovery_timeout: EPaxos explicit-prepare deadline -- how long a
            replica's execution may stay blocked on an uncommitted
            dependency before it opens a recovery round for that instance
            (see :mod:`repro.epaxos.replica`).  Defaults to
            :data:`DEFAULT_RECOVERY_TIMEOUT`; ``None`` disables recovery:
            orphaned instances block their dependents forever, the
            historical degraded mode.  Recovery is armed lazily -- runs in
            which no instance ever blocks schedule no extra events, so the
            knob changes nothing on runs that never block.  EPaxos-only:
            the builder rejects any *other* explicit value for the Paxos
            family rather than silently ignoring it (the class default is
            treated as unset there).
        leader_retry_timeout: How long a round leader waits for a quorum on
            an in-flight round before re-sending it through the overlay
            (fresh relays under ``RelayFanout``).  Consumed by EPaxos,
            where ``None`` (the default) disables it and rounds rely on
            client retries; PigPaxos has always had its own (Figure 5b,
            via :class:`~repro.core.config.PigPaxosConfig`, default 0.15).
            Plain Multi-Paxos has no use for it and the builder rejects it.
        overlay: Fan-out overlay for wide-cast messages
            (:class:`~repro.overlay.config.OverlayConfig`, a kind string, or
            a mapping of its fields; ``None`` means the protocol's default
            -- direct broadcast for Multi-Paxos and EPaxos).  PigPaxos *is*
            the relay overlay and configures it through
            :class:`~repro.core.config.PigPaxosConfig` instead.
        batch_max_commands: Leader-side command batching -- how many client
            commands a leader may pack into one consensus slot (Paxos
            family) or one instance (EPaxos).  The default of 1 disables
            batching entirely: no buffer, no timers, no extra events, so
            every recorded fingerprint is byte-identical.  Values > 1 let
            the leader accumulate commands into a pending buffer and flush
            a :class:`~repro.statemachine.command.CommandBatch` when the
            buffer fills (see :data:`batch_max_delay` for the time bound).
        batch_max_delay: Upper bound (virtual seconds) a buffered command
            may wait before its batch is flushed regardless of occupancy.
            ``None`` (default) means no delay flush: with batching enabled
            a partial buffer then flushes only when the pipeline frees or
            the buffer fills.  Must stay well under the client timeout or
            delayed flushes answer already-retried requests (the session
            dedup window still makes that safe, just wasteful).  Only
            takes effect when ``batch_max_commands > 1``.
        pipeline_depth: Bound on concurrently in-flight (proposed but not
            yet committed) slots at a batching Paxos-family leader.  While
            the pipeline is full, new commands buffer past the size
            trigger and flush as soon as a slot commits.  ``None``
            (default) leaves the pipeline unbounded, the historical
            behaviour.  EPaxos ignores it (instances are not a pipeline).
    """

    heartbeat_interval: float = 0.05
    election_timeout_min: float = 0.4
    election_timeout_max: float = 0.8
    phase1_timeout: float = 0.25
    fill_gap_timeout: float = 0.1
    initial_leader: int = 0
    session_window: int = DEFAULT_SESSION_WINDOW
    recovery_timeout: Optional[float] = DEFAULT_RECOVERY_TIMEOUT
    leader_retry_timeout: Optional[float] = None
    overlay: Optional[Union[OverlayConfig, str, dict]] = None
    batch_max_commands: int = 1
    batch_max_delay: Optional[float] = None
    pipeline_depth: Optional[int] = None

    def __post_init__(self) -> None:
        self.overlay = OverlayConfig.coerce(self.overlay)
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if self.session_window < 1:
            raise ConfigurationError("session_window must be >= 1")
        if self.recovery_timeout is not None and self.recovery_timeout <= 0:
            raise ConfigurationError("recovery_timeout must be positive (or None to disable)")
        if self.leader_retry_timeout is not None and self.leader_retry_timeout <= 0:
            raise ConfigurationError("leader_retry_timeout must be positive (or None to disable)")
        if self.election_timeout_min <= 0 or self.election_timeout_max < self.election_timeout_min:
            raise ConfigurationError("invalid election timeout range")
        if self.election_timeout_min <= self.heartbeat_interval:
            raise ConfigurationError(
                "election_timeout_min must exceed heartbeat_interval or leaders will be deposed spuriously"
            )
        if self.batch_max_commands < 1:
            raise ConfigurationError("batch_max_commands must be >= 1 (1 disables batching)")
        if self.batch_max_delay is not None and self.batch_max_delay <= 0:
            raise ConfigurationError("batch_max_delay must be positive (or None to disable)")
        if self.pipeline_depth is not None and self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1 (or None for unbounded)")
        if self.batch_max_commands == 1 and (
            self.batch_max_delay is not None or self.pipeline_depth is not None
        ):
            raise ConfigurationError(
                "batch_max_delay / pipeline_depth require batch_max_commands > 1"
            )
