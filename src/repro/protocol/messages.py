"""Wire messages shared by Multi-Paxos and PigPaxos (and the client API).

These correspond one-to-one to the arrows in the paper's Figure 1/2:
``P1a``/``P1b`` are propose/promise, ``P2a``/``P2b`` are accept/accepted and
``Commit`` is phase-3.  Phase-3 is normally piggybacked on the next ``P2a``
through its ``commit_upto`` field, exactly as in the Multi-Paxos optimization
the paper applies to both Paxos and PigPaxos.

The per-message types (client request/reply, phase-2, commit, heartbeat) are
hand-written ``__slots__`` classes rather than frozen dataclasses: one is
allocated per protocol step per follower, and the frozen-dataclass
``object.__setattr__``-per-field constructor costs ~2.5x a plain ``__init__``
on this hot path.  They are immutable by convention -- messages are shared
by reference across simulated nodes and must never be mutated after being
sent -- and compare by object identity (nothing in the repo relied on the
generated value equality; match on fields/uids explicitly if you need it).
The phase-1 and gap-fill types stay frozen dataclasses; they are rare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.net.message import Message
from repro.protocol.ballot import Ballot
from repro.statemachine.command import Command, CommandResult


# --------------------------------------------------------------------- client
class ClientRequest(Message):
    """A command submitted by a client to a replica."""

    __slots__ = ("command",)

    def __init__(self, command: Command) -> None:
        self.command = command

    def payload_bytes(self) -> int:
        return self.command.payload_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClientRequest(command={self.command!r})"


class ClientReply(Message):
    """The reply sent back to the client after its command executed."""

    __slots__ = (
        "command_uid",
        "request_id",
        "client_id",
        "success",
        "result",
        "leader_hint",
        "request_send_time",
    )

    def __init__(
        self,
        command_uid: int,
        request_id: int,
        client_id: int,
        success: bool,
        result: Optional[CommandResult] = None,
        leader_hint: Optional[int] = None,
        request_send_time: float = 0.0,
    ) -> None:
        self.command_uid = command_uid
        self.request_id = request_id
        self.client_id = client_id
        self.success = success
        self.result = result
        self.leader_hint = leader_hint
        self.request_send_time = request_send_time

    def payload_bytes(self) -> int:
        return self.result.payload_bytes() if self.result is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClientReply(client={self.client_id} req={self.request_id} "
            f"success={self.success})"
        )


# --------------------------------------------------------------------- phase 1
# lint: ok(no-frozen-dataclass-hot-path) phase-1 runs once per leader change, not per command; ctor cost is irrelevant here
@dataclass(frozen=True, slots=True)
class P1a(Message):
    """Phase-1a: "lead with ballot b?"."""

    ballot: Ballot


# lint: ok(no-frozen-dataclass-hot-path) phase-1 runs once per leader change, not per command; ctor cost is irrelevant here
@dataclass(frozen=True, slots=True)
class P1b(Message):
    """Phase-1b promise.  ``accepted`` maps slot -> (ballot, command).

    ``commit_upto`` is the voter's gap-free committed frontier.  Executed
    entries are pruned from ``accepted`` (they would grow without bound), so
    the frontier is how a new leader learns that slots exist beyond its own
    log and must be fetched -- not overwritten with fresh proposals.
    """

    ballot: Ballot
    voter: int
    ok: bool
    accepted: Dict[int, Tuple[Ballot, object]] = field(default_factory=dict)
    commit_upto: int = 0

    def payload_bytes(self) -> int:
        total = 0
        # lint: ok(no-unordered-iteration) sum accumulation; order-insensitive
        for _, command in self.accepted.values():
            try:
                total += command.payload_bytes()
            except AttributeError:
                pass
            total += 16  # slot + ballot encoding
        return total


# --------------------------------------------------------------------- phase 2
class P2a(Message):
    """Phase-2a accept request for one slot, with phase-3 piggybacked.

    ``commit_upto`` tells followers that every slot <= commit_upto is
    committed (the Multi-Paxos piggybacking of phase-3 onto the next
    phase-2a).
    """

    __slots__ = ("ballot", "slot", "command", "commit_upto")

    def __init__(self, ballot: Ballot, slot: int, command: object, commit_upto: int = 0) -> None:
        self.ballot = ballot
        self.slot = slot
        self.command = command
        self.commit_upto = commit_upto

    def payload_bytes(self) -> int:
        try:
            return self.command.payload_bytes()
        except AttributeError:
            return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"P2a(ballot={self.ballot} slot={self.slot} commit_upto={self.commit_upto})"


class P2b(Message):
    """Phase-2b accepted/rejected vote from one follower."""

    __slots__ = ("ballot", "slot", "voter", "ok")

    def __init__(self, ballot: Ballot, slot: int, voter: int, ok: bool) -> None:
        self.ballot = ballot
        self.slot = slot
        self.voter = voter
        self.ok = ok

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"P2b(ballot={self.ballot} slot={self.slot} voter={self.voter} ok={self.ok})"


class Commit(Message):
    """Explicit phase-3 commit notification (used when there is no next P2a)."""

    __slots__ = ("ballot", "slot", "command", "commit_upto")

    def __init__(self, ballot: Ballot, slot: int, command: object, commit_upto: int = 0) -> None:
        self.ballot = ballot
        self.slot = slot
        self.command = command
        self.commit_upto = commit_upto

    def payload_bytes(self) -> int:
        try:
            return self.command.payload_bytes()
        except AttributeError:
            return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Commit(ballot={self.ballot} slot={self.slot})"


# --------------------------------------------------------------------- catch-up
# lint: ok(no-frozen-dataclass-hot-path) gap-fill is a rare recovery path, not the per-command hot path
@dataclass(frozen=True, slots=True)
class FillRequest(Message):
    """A follower asking the leader for slots it is missing."""

    slots: Tuple[int, ...]
    requester: int


# lint: ok(no-frozen-dataclass-hot-path) gap-fill is a rare recovery path, not the per-command hot path
@dataclass(frozen=True, slots=True)
class FillReply(Message):
    """Leader's response to a FillRequest: committed entries for the slots."""

    entries: Tuple[Tuple[int, Ballot, object], ...]

    def payload_bytes(self) -> int:
        total = 0
        for _, _, command in self.entries:
            try:
                total += command.payload_bytes()
            except AttributeError:
                pass
            total += 16
        return total


class Heartbeat(Message):
    """Periodic leader liveness signal carrying the commit frontier."""

    __slots__ = ("ballot", "commit_upto")

    def __init__(self, ballot: Ballot, commit_upto: int = 0) -> None:
        self.ballot = ballot
        self.commit_upto = commit_upto

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Heartbeat(ballot={self.ballot} commit_upto={self.commit_upto})"
