"""Wire messages shared by Multi-Paxos and PigPaxos (and the client API).

These correspond one-to-one to the arrows in the paper's Figure 1/2:
``P1a``/``P1b`` are propose/promise, ``P2a``/``P2b`` are accept/accepted and
``Commit`` is phase-3.  Phase-3 is normally piggybacked on the next ``P2a``
through its ``commit_upto`` field, exactly as in the Multi-Paxos optimization
the paper applies to both Paxos and PigPaxos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.message import Message
from repro.protocol.ballot import Ballot
from repro.statemachine.command import Command, CommandResult


# --------------------------------------------------------------------- client
@dataclass(frozen=True)
class ClientRequest(Message):
    """A command submitted by a client to a replica."""

    command: Command

    def payload_bytes(self) -> int:
        return self.command.payload_bytes()


@dataclass(frozen=True)
class ClientReply(Message):
    """The reply sent back to the client after its command executed."""

    command_uid: int
    request_id: int
    client_id: int
    success: bool
    result: Optional[CommandResult] = None
    leader_hint: Optional[int] = None
    request_send_time: float = 0.0

    def payload_bytes(self) -> int:
        return self.result.payload_bytes() if self.result is not None else 0


# --------------------------------------------------------------------- phase 1
@dataclass(frozen=True)
class P1a(Message):
    """Phase-1a: "lead with ballot b?"."""

    ballot: Ballot


@dataclass(frozen=True)
class P1b(Message):
    """Phase-1b promise.  ``accepted`` maps slot -> (ballot, command).

    ``commit_upto`` is the voter's gap-free committed frontier.  Executed
    entries are pruned from ``accepted`` (they would grow without bound), so
    the frontier is how a new leader learns that slots exist beyond its own
    log and must be fetched -- not overwritten with fresh proposals.
    """

    ballot: Ballot
    voter: int
    ok: bool
    accepted: Dict[int, Tuple[Ballot, object]] = field(default_factory=dict)
    commit_upto: int = 0

    def payload_bytes(self) -> int:
        total = 0
        for _, command in self.accepted.values():
            payload_fn = getattr(command, "payload_bytes", None)
            if callable(payload_fn):
                total += payload_fn()
            total += 16  # slot + ballot encoding
        return total


# --------------------------------------------------------------------- phase 2
@dataclass(frozen=True)
class P2a(Message):
    """Phase-2a accept request for one slot, with phase-3 piggybacked.

    ``commit_upto`` tells followers that every slot <= commit_upto is
    committed (the Multi-Paxos piggybacking of phase-3 onto the next
    phase-2a).
    """

    ballot: Ballot
    slot: int
    command: object
    commit_upto: int = 0

    def payload_bytes(self) -> int:
        payload_fn = getattr(self.command, "payload_bytes", None)
        return payload_fn() if callable(payload_fn) else 0


@dataclass(frozen=True)
class P2b(Message):
    """Phase-2b accepted/rejected vote from one follower."""

    ballot: Ballot
    slot: int
    voter: int
    ok: bool


@dataclass(frozen=True)
class Commit(Message):
    """Explicit phase-3 commit notification (used when there is no next P2a)."""

    ballot: Ballot
    slot: int
    command: object
    commit_upto: int = 0

    def payload_bytes(self) -> int:
        payload_fn = getattr(self.command, "payload_bytes", None)
        return payload_fn() if callable(payload_fn) else 0


# --------------------------------------------------------------------- catch-up
@dataclass(frozen=True)
class FillRequest(Message):
    """A follower asking the leader for slots it is missing."""

    slots: Tuple[int, ...]
    requester: int


@dataclass(frozen=True)
class FillReply(Message):
    """Leader's response to a FillRequest: committed entries for the slots."""

    entries: Tuple[Tuple[int, Ballot, object], ...]

    def payload_bytes(self) -> int:
        total = 0
        for _, _, command in self.entries:
            payload_fn = getattr(command, "payload_bytes", None)
            if callable(payload_fn):
                total += payload_fn()
            total += 16
        return total


@dataclass(frozen=True)
class Heartbeat(Message):
    """Periodic leader liveness signal carrying the commit frontier."""

    ballot: Ballot
    commit_upto: int = 0
