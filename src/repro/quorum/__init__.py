"""Quorum systems and vote tracking.

The paper relies on classical majority quorums, discusses flexible quorums
(Section 2.2) as a complementary technique, and compares against EPaxos which
uses fast (super-majority) quorums.  All three quorum systems are implemented
here, together with the per-ballot/per-slot vote trackers used by the
protocol replicas.
"""

from repro.quorum.systems import (
    QuorumSystem,
    MajorityQuorum,
    FlexibleQuorum,
    FastQuorum,
)
from repro.quorum.tracker import VoteTracker, BallotVoteTracker

__all__ = [
    "QuorumSystem",
    "MajorityQuorum",
    "FlexibleQuorum",
    "FastQuorum",
    "VoteTracker",
    "BallotVoteTracker",
]
