"""Quorum system definitions.

A quorum system answers two questions for a cluster of ``n`` voters:

* how many phase-1 (leader election / prepare) votes are needed, and
* how many phase-2 (accept) votes are needed.

Classical Paxos uses majorities for both; flexible Paxos only requires that
every phase-1 quorum intersects every phase-2 quorum (q1 + q2 > n); EPaxos'
fast path uses a super-majority of size ``f + floor((f+1)/2)`` out of
``n = 2f + 1``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import QuorumError


class QuorumSystem(ABC):
    """Sizes of the vote sets required by each protocol phase."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise QuorumError(f"cluster size must be >= 1, got {n}")
        self.n = n

    @property
    @abstractmethod
    def phase1_size(self) -> int:
        """Votes required to win phase-1 (prepare / leader election)."""

    @property
    @abstractmethod
    def phase2_size(self) -> int:
        """Votes required to win phase-2 (accept)."""

    def phase1_satisfied(self, votes: int) -> bool:
        return votes >= self.phase1_size

    def phase2_satisfied(self, votes: int) -> bool:
        return votes >= self.phase2_size

    @property
    def max_failures(self) -> int:
        """Crash failures tolerated while both phases can still complete."""
        return self.n - max(self.phase1_size, self.phase2_size)

    def describe(self) -> str:
        return f"{type(self).__name__}(n={self.n}, q1={self.phase1_size}, q2={self.phase2_size})"


class MajorityQuorum(QuorumSystem):
    """Classical Paxos majorities: q1 = q2 = floor(n/2) + 1."""

    @property
    def phase1_size(self) -> int:
        return self.n // 2 + 1

    @property
    def phase2_size(self) -> int:
        return self.n // 2 + 1


class FlexibleQuorum(QuorumSystem):
    """Flexible Paxos quorums with explicit q1 and q2 (q1 + q2 > n)."""

    def __init__(self, n: int, q1: int, q2: int) -> None:
        super().__init__(n)
        if not 1 <= q1 <= n or not 1 <= q2 <= n:
            raise QuorumError(f"quorum sizes must lie in [1, {n}]: q1={q1} q2={q2}")
        if q1 + q2 <= n:
            raise QuorumError(
                f"flexible quorums must intersect: q1 + q2 must exceed n ({q1}+{q2} <= {n})"
            )
        self._q1 = q1
        self._q2 = q2

    @property
    def phase1_size(self) -> int:
        return self._q1

    @property
    def phase2_size(self) -> int:
        return self._q2


class FastQuorum(QuorumSystem):
    """EPaxos-style quorums for a cluster of n nodes tolerating f = (n-1)//2.

    The fast-path quorum is ``f + floor((f+1)/2)`` (including the command
    leader), floored at a majority; the slow path (explicit accept round)
    uses a simple majority.

    The paper's formula assumes ``n = 2f + 1``.  For even n it can drop
    below a majority (n=4 gives 2, n=6 gives 3), and two fast quorums then
    no longer intersect -- two command leaders can fast-commit conflicting
    commands with disjoint vote sets, neither learning the other's
    dependency, so replicas execute the conflict in different orders.
    Dependency safety requires every pair of fast quorums to share at
    least one replica (2q > n), which a majority floor guarantees while
    leaving every odd-n quorum exactly at the paper's size.
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._f = (n - 1) // 2

    @property
    def f(self) -> int:
        return self._f

    @property
    def fast_path_size(self) -> int:
        return max(self._f + (self._f + 1) // 2, self.n // 2 + 1)

    @property
    def phase1_size(self) -> int:
        # EPaxos has no leader election; recovery uses a majority.
        return self.n // 2 + 1

    @property
    def phase2_size(self) -> int:
        return self.n // 2 + 1

    def fast_path_satisfied(self, votes: int) -> bool:
        return votes >= max(self.fast_path_size, 1)
