"""Vote trackers used by leaders while collecting responses.

``VoteTracker`` counts acks/nacks from distinct voters for one decision
(one slot at one ballot).  ``BallotVoteTracker`` does the same for phase-1,
additionally remembering the highest previously-accepted command reported per
slot, which the new leader must re-propose (the "Ok, but" arrow in the
paper's Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.errors import QuorumError


class VoteTracker:
    """Counts positive/negative votes from distinct voters."""

    def __init__(self, required: int, voters: Optional[Set[int]] = None) -> None:
        if required < 1:
            raise QuorumError("a quorum requires at least one vote")
        self.required = required
        self._allowed = set(voters) if voters is not None else None
        self._acks: Set[int] = set()
        self._nacks: Set[int] = set()

    def ack(self, voter: int) -> bool:
        """Record a positive vote; returns True if the quorum is now satisfied."""
        self._validate(voter)
        if voter not in self._nacks:
            self._acks.add(voter)
        return self.satisfied

    def nack(self, voter: int) -> None:
        self._validate(voter)
        self._acks.discard(voter)
        self._nacks.add(voter)

    def _validate(self, voter: int) -> None:
        if self._allowed is not None and voter not in self._allowed:
            raise QuorumError(f"voter {voter} is not part of this quorum")

    @property
    def ack_count(self) -> int:
        return len(self._acks)

    @property
    def nack_count(self) -> int:
        return len(self._nacks)

    @property
    def satisfied(self) -> bool:
        return len(self._acks) >= self.required

    @property
    def rejected(self) -> bool:
        """True when enough voters nacked that the quorum can never be met."""
        if self._allowed is None:
            return False
        remaining = len(self._allowed) - len(self._nacks)
        return remaining < self.required

    def voters(self) -> Set[int]:
        return set(self._acks)


@dataclass
class _SlotVote:
    ballot: Tuple[int, int]
    command: object


class BallotVoteTracker:
    """Phase-1 vote tracker that merges previously accepted commands."""

    def __init__(self, required: int) -> None:
        self._tracker = VoteTracker(required)
        self._accepted: Dict[int, _SlotVote] = {}
        self._commit_uptos: Dict[int, int] = {}

    def ack(
        self,
        voter: int,
        accepted: Optional[Dict[int, Tuple[Tuple[int, int], object]]] = None,
        commit_upto: int = 0,
    ) -> bool:
        """Record a promise, merging the voter's previously accepted entries.

        ``accepted`` maps slot -> (ballot, command) as reported by the voter.
        For each slot we keep the command accepted at the highest ballot,
        which is what the new leader must re-propose.  ``commit_upto`` is the
        voter's committed frontier; the new leader must treat every slot up
        to the quorum's maximum as already decided.
        """
        if accepted:
            # lint: ok(no-unordered-iteration) keep-highest-ballot merge per slot; order-insensitive
            for slot, (ballot, command) in accepted.items():
                current = self._accepted.get(slot)
                if current is None or ballot > current.ballot:
                    self._accepted[slot] = _SlotVote(ballot=ballot, command=command)
        if commit_upto > self._commit_uptos.get(voter, -1):
            self._commit_uptos[voter] = commit_upto
        return self._tracker.ack(voter)

    def nack(self, voter: int) -> None:
        self._tracker.nack(voter)

    @property
    def satisfied(self) -> bool:
        return self._tracker.satisfied

    @property
    def ack_count(self) -> int:
        return self._tracker.ack_count

    def commands_to_repropose(self) -> Dict[int, object]:
        """Slot -> command that must be re-proposed by the new leader."""
        return {slot: vote.command for slot, vote in sorted(self._accepted.items())}

    def commit_reports(self) -> Dict[int, int]:
        """Voter -> committed frontier reported with that voter's promise."""
        return dict(self._commit_uptos)

    @property
    def max_commit_upto(self) -> int:
        """Highest committed frontier reported by any promise (0 if none)."""
        return max(self._commit_uptos.values(), default=0)
