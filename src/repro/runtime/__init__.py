"""Asyncio runtime: run the same replicas over real TCP sockets.

The simulator answers the paper's performance questions; this runtime exists
to show the protocol implementations are real, runnable code (the paper's
implementation ran inside the Paxi framework's TCP stack).  A
:class:`~repro.runtime.server.NodeServer` hosts any replica class
(Multi-Paxos, PigPaxos, EPaxos) behind an asyncio TCP server, and
:class:`~repro.runtime.client.KVClient` gives applications a simple
``get``/``put`` API against the replicated store.
"""

from repro.runtime.codec import Codec, PickleCodec
from repro.runtime.server import NodeServer
from repro.runtime.client import KVClient
from repro.runtime.harness import LocalCluster

__all__ = ["Codec", "PickleCodec", "NodeServer", "KVClient", "LocalCluster"]
