"""Asyncio key-value client for the real-network runtime."""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional, Tuple

from repro.errors import RuntimeTransportError
from repro.protocol.messages import ClientReply, ClientRequest
from repro.runtime.codec import Codec, PickleCodec, frame, read_frame
from repro.statemachine.command import Command, CommandResult, OpType

Address = Tuple[str, int]

_client_ids = itertools.count(5000)


class KVClient:
    """A minimal replicated key-value client (get / put / delete).

    The client connects to one node (typically the leader for Paxos/PigPaxos,
    any node for EPaxos), sends one request at a time and waits for the
    matching reply.  ``leader_hint`` from replies is followed automatically.
    """

    def __init__(
        self,
        nodes: Dict[int, Address],
        client_id: Optional[int] = None,
        codec: Optional[Codec] = None,
        request_timeout: float = 5.0,
    ) -> None:
        if not nodes:
            raise RuntimeTransportError("KVClient needs at least one node address")
        self._nodes = dict(nodes)
        self._codec = codec or PickleCodec()
        self._client_id = client_id if client_id is not None else next(_client_ids)
        self._request_timeout = request_timeout
        self._request_counter = 0
        self._target = sorted(nodes)[0]
        self._connected_to: Optional[int] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def client_id(self) -> int:
        return self._client_id

    # ------------------------------------------------------------------ connection
    async def connect(self, node_id: Optional[int] = None) -> None:
        if node_id is not None:
            self._target = node_id
        await self._ensure_connection(reconnect=True)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._reader = None
        self._writer = None

    async def _ensure_connection(self, reconnect: bool = False) -> None:
        connected = (
            self._writer is not None
            and not self._writer.is_closing()
            and self._connected_to == self._target
        )
        if connected and not reconnect:
            return
        if self._writer is not None:
            self._writer.close()
        address = self._nodes[self._target]
        self._reader, self._writer = await asyncio.open_connection(*address)
        self._connected_to = self._target

    # ------------------------------------------------------------------ operations
    async def put(self, key: str, value: str) -> CommandResult:
        command = self._command(OpType.PUT, key, value=value)
        return await self._execute(command)

    async def get(self, key: str) -> Optional[str]:
        command = self._command(OpType.GET, key)
        result = await self._execute(command)
        return result.value

    async def delete(self, key: str) -> CommandResult:
        command = self._command(OpType.DELETE, key)
        return await self._execute(command)

    def _command(self, op: OpType, key: str, value: Optional[str] = None) -> Command:
        self._request_counter += 1
        payload = len(value.encode("utf-8")) if value else 0
        return Command(
            op=op,
            key=key,
            value=value,
            payload_size=payload,
            client_id=self._client_id,
            request_id=self._request_counter,
        )

    async def _execute(self, command: Command) -> CommandResult:
        request = ClientRequest(command=command)
        attempts = 0
        while attempts < 3:
            attempts += 1
            await self._ensure_connection()
            assert self._writer is not None and self._reader is not None
            self._writer.write(frame(self._codec.encode(self._client_id, request)))
            await self._writer.drain()
            try:
                reply = await asyncio.wait_for(
                    self._await_reply(command.request_id), timeout=self._request_timeout
                )
            except asyncio.TimeoutError:
                continue
            if reply.leader_hint is not None and reply.leader_hint in self._nodes:
                self._target = reply.leader_hint
            if reply.success and reply.result is not None:
                return reply.result
            if reply.success:
                return CommandResult(command_uid=command.uid, success=True)
        raise RuntimeTransportError(f"request {command.request_id} timed out after {attempts} attempts")

    async def _await_reply(self, request_id: int) -> ClientReply:
        assert self._reader is not None
        while True:
            data = await read_frame(self._reader)
            _, message = self._codec.decode(data)
            if isinstance(message, ClientReply) and message.request_id == request_id:
                return message
