"""Wire codec for the asyncio runtime.

Frames are length-prefixed: a 4-byte big-endian length followed by the
encoded ``(source_id, message)`` pair.  The default codec uses pickle, which
is acceptable for a research runtime where every peer is trusted (the same
assumption Paxi's gob encoding makes); the :class:`Codec` interface exists so
a deployment can swap in a vetted encoding without touching the transport.
"""

from __future__ import annotations

import pickle
import struct
from abc import ABC, abstractmethod
from typing import Any, Tuple

from repro.errors import RuntimeTransportError

_LENGTH = struct.Struct(">I")
MAX_FRAME_BYTES = 16 * 1024 * 1024


class Codec(ABC):
    """Encodes and decodes ``(source_id, message)`` frames."""

    @abstractmethod
    def encode(self, source: int, message: Any) -> bytes:
        """Encode one frame body (without the length prefix)."""

    @abstractmethod
    def decode(self, data: bytes) -> Tuple[int, Any]:
        """Decode one frame body into ``(source_id, message)``."""


class PickleCodec(Codec):
    """Pickle-based codec (trusted-peer research deployments only)."""

    def encode(self, source: int, message: Any) -> bytes:
        return pickle.dumps((source, message), protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Tuple[int, Any]:
        source, message = pickle.loads(data)
        return int(source), message


def frame(payload: bytes) -> bytes:
    """Prefix an encoded frame body with its length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise RuntimeTransportError(f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES} limit")
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(reader) -> bytes:
    """Read one length-prefixed frame body from an asyncio StreamReader."""
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RuntimeTransportError(f"incoming frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit")
    return await reader.readexactly(length)
