"""Local asyncio cluster harness.

``LocalCluster`` boots N :class:`~repro.runtime.server.NodeServer` processes
inside one asyncio event loop on localhost ports -- the quickest way to run
the protocols over real sockets (used by the runtime example and the runtime
integration tests).
"""

from __future__ import annotations

import asyncio
import socket
from typing import Dict, List, Optional, Tuple

from repro.core.config import PigPaxosConfig
from repro.core.replica import PigPaxosReplica
from repro.epaxos.replica import EPaxosReplica
from repro.errors import ConfigurationError
from repro.paxos.replica import MultiPaxosReplica
from repro.protocol.config import ProtocolConfig
from repro.runtime.client import KVClient
from repro.runtime.server import NodeServer

Address = Tuple[str, int]


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class LocalCluster:
    """N protocol nodes on localhost, all inside the current event loop."""

    def __init__(
        self,
        protocol: str = "pigpaxos",
        num_nodes: int = 3,
        relay_groups: int = 2,
        host: str = "127.0.0.1",
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        self.protocol = protocol
        self.num_nodes = num_nodes
        self.relay_groups = relay_groups
        self._host = host
        self.addresses: Dict[int, Address] = {}
        self.servers: List[NodeServer] = []

    # ------------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        self.addresses = {node_id: (self._host, _free_port()) for node_id in range(self.num_nodes)}
        for node_id in range(self.num_nodes):
            peers = {other: addr for other, addr in self.addresses.items() if other != node_id}
            replica = self._make_replica()
            server = NodeServer(
                node_id=node_id,
                listen=self.addresses[node_id],
                peers=peers,
                replica=replica,
            )
            self.servers.append(server)
        for server in self.servers:
            await server.start()
        # Give the initial leader a moment to finish phase-1.
        await asyncio.sleep(0.3)

    async def stop(self) -> None:
        for server in self.servers:
            await server.stop()
        self.servers.clear()

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------ helpers
    def _make_replica(self):
        if self.protocol == "paxos":
            return MultiPaxosReplica(config=ProtocolConfig())
        if self.protocol == "pigpaxos":
            return PigPaxosReplica(config=PigPaxosConfig(num_relay_groups=self.relay_groups))
        if self.protocol == "epaxos":
            return EPaxosReplica()
        raise ConfigurationError(f"unknown protocol {self.protocol!r}")

    def client(self, request_timeout: float = 5.0) -> KVClient:
        return KVClient(nodes=dict(self.addresses), request_timeout=request_timeout)

    def leader_id(self) -> Optional[int]:
        for server in self.servers:
            if getattr(server.replica, "is_leader", False):
                return server.node_id
        return None
