"""Asyncio node server hosting a protocol replica.

``NodeServer`` provides the :class:`~repro.protocol.base.NodeContext`
interface on top of real sockets and wall-clock timers, so the exact replica
classes used in simulation run unmodified over TCP.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.errors import RuntimeTransportError
from repro.protocol.base import Replica
from repro.runtime.codec import Codec, PickleCodec, frame, read_frame
from repro.sim.metrics import MetricsRegistry

Address = Tuple[str, int]


class _TimerHandle:
    """Adapts ``asyncio.TimerHandle`` to the replica-facing timer interface."""

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class NodeServer:
    """One consensus node listening on TCP and hosting a replica."""

    def __init__(
        self,
        node_id: int,
        listen: Address,
        peers: Dict[int, Address],
        replica: Replica,
        codec: Optional[Codec] = None,
    ) -> None:
        self._node_id = node_id
        self._listen = listen
        self._peers = dict(peers)
        self._replica = replica
        self._codec = codec or PickleCodec()
        self._metrics = MetricsRegistry(clock=time.monotonic)  # lint: ok(no-wall-clock) real asyncio deployment; wall clock IS this runtime's clock
        self._rng = random.Random(node_id * 7919 + 17)
        self._server: Optional[asyncio.AbstractServer] = None
        self._outgoing: Dict[int, asyncio.StreamWriter] = {}
        self._client_writers: Dict[int, asyncio.StreamWriter] = {}
        self._connection_tasks: set = set()
        self._started = time.monotonic()  # lint: ok(no-wall-clock) real asyncio deployment; wall clock IS this runtime's clock
        replica.bind(self)

    # ------------------------------------------------------------------ NodeContext
    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def all_nodes(self) -> Sequence[int]:
        return sorted(set(self._peers) | {self._node_id})

    @property
    def now(self) -> float:
        return time.monotonic() - self._started  # lint: ok(no-wall-clock) real asyncio deployment; wall clock IS this runtime's clock

    @property
    def rng(self) -> random.Random:
        return self._rng

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    def send(self, dst: int, message: Any) -> None:
        asyncio.get_running_loop().create_task(self._send_async(dst, message))

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> _TimerHandle:
        loop = asyncio.get_running_loop()
        return _TimerHandle(loop.call_later(delay, callback, *args))

    def charge_execution(self, commands: int = 1) -> None:
        """Real CPUs charge themselves; accounting only."""
        self._metrics.counter("runtime.executed_commands").increment(commands)

    def charge_graph_work(self, vertices: int) -> None:
        self._metrics.counter("runtime.graph_vertices").increment(vertices)

    def charge_overhead(self, units: float = 1.0) -> None:
        self._metrics.counter("runtime.bookkeeping_units").increment(units)

    def charge_seconds(self, seconds: float) -> None:
        self._metrics.counter("runtime.charged_seconds").increment(seconds)

    # ------------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        host, port = self._listen
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self._replica.start()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        self._connection_tasks.clear()
        for writer in list(self._outgoing.values()) + list(self._client_writers.values()):
            writer.close()
        self._outgoing.clear()
        self._client_writers.clear()

    @property
    def replica(self) -> Replica:
        return self._replica

    # ------------------------------------------------------------------ networking
    async def _send_async(self, dst: int, message: Any) -> None:
        payload = frame(self._codec.encode(self._node_id, message))
        try:
            writer = await self._writer_for(dst)
        except (OSError, RuntimeTransportError):
            self._metrics.counter("runtime.send_failures").increment()
            return
        if writer is None:
            self._metrics.counter("runtime.send_failures").increment()
            return
        try:
            writer.write(payload)
            await writer.drain()
            self._metrics.counter("runtime.messages_sent").increment()
        except (ConnectionError, OSError):
            self._metrics.counter("runtime.send_failures").increment()
            self._outgoing.pop(dst, None)

    async def _writer_for(self, dst: int) -> Optional[asyncio.StreamWriter]:
        if dst in self._client_writers:
            return self._client_writers[dst]
        writer = self._outgoing.get(dst)
        if writer is not None and not writer.is_closing():
            return writer
        address = self._peers.get(dst)
        if address is None:
            return None
        _, writer = await asyncio.open_connection(*address)
        self._outgoing[dst] = writer
        return writer

    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            while True:
                data = await read_frame(reader)
                source, message = self._codec.decode(data)
                # Remember how to reach clients (they connect in, nodes have
                # addresses in the peer map).
                if source not in self._peers and source != self._node_id:
                    self._client_writers[source] = writer
                self._metrics.counter("runtime.messages_received").increment()
                self._replica.on_message(source, message)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connection_tasks.discard(task)
            for client_id, client_writer in list(self._client_writers.items()):
                if client_writer is writer:
                    self._client_writers.pop(client_id, None)
            writer.close()
