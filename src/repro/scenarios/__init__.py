"""Deterministic adversarial scenario engine.

This package turns "as many scenarios as you can imagine" into a library:
a :class:`~repro.scenarios.spec.Scenario` declaratively describes a
cluster shape, workload, and a timed fault schedule (crashes, partitions,
relay churn, drop storms); a
:class:`~repro.scenarios.runner.ScenarioRunner` compiles it onto the
discrete-event simulator, records every client operation, and applies the
:mod:`repro.checkers` safety checkers post-hoc.  Everything is
deterministic per seed -- the same scenario always produces byte-identical
histories, which makes violations replayable and lets regression tests
assert on exact fingerprints.

Quick start::

    from repro.scenarios import get_scenario, run_scenario

    result = run_scenario(get_scenario("pig-crash-leader-during-round"))
    result.raise_on_violations()
    print(result.summary())

Or from the command line::

    PYTHONPATH=src python -m repro.scenarios --list
    PYTHONPATH=src python -m repro.scenarios --run pig-baseline-5
    PYTHONPATH=src python -m repro.scenarios --smoke
"""

from repro.scenarios.library import (
    SMOKE_SCENARIOS,
    all_scenarios,
    get_scenario,
    scenarios_for_protocol,
)
from repro.scenarios.runner import ScenarioResult, ScenarioRunner, run_scenario
from repro.scenarios.spec import Scenario, ScenarioEvent

__all__ = [
    "SMOKE_SCENARIOS",
    "Scenario",
    "ScenarioEvent",
    "ScenarioResult",
    "ScenarioRunner",
    "all_scenarios",
    "get_scenario",
    "run_scenario",
    "scenarios_for_protocol",
]
