"""Command-line front end for the scenario engine.

Used by CI for smoke runs and by developers to replay a scenario::

    PYTHONPATH=src python -m repro.scenarios --list
    PYTHONPATH=src python -m repro.scenarios --run pig-baseline-5 [--seed 7]
    PYTHONPATH=src python -m repro.scenarios --all [--protocol epaxos]
    PYTHONPATH=src python -m repro.scenarios --smoke --parallel 4
    PYTHONPATH=src python -m repro.scenarios --smoke --sharded --parallel 0

``--protocol`` filters ``--list``/``--all``/``--smoke`` to one protocol so a
protocol-specific sweep is one flag; ``--sharded`` restricts to the
multi-group scenarios (with ``--smoke``, the sharded smoke subset --
CI's cross-shard correctness step).  ``--parallel N`` fans a sweep out to
``N`` worker processes (``--parallel 0`` = one per core); runs stay
single-core deterministic, so results and fingerprints are identical to the
serial sweep -- only wall-clock changes.  Exit status is non-zero when any
checker reports a violation.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.cluster.builder import PROTOCOLS
from repro.scenarios.library import (
    SHARDED_SMOKE_SCENARIOS,
    SMOKE_SCENARIOS,
    all_scenarios,
    get_scenario,
    scenarios_for_protocol,
)
from repro.scenarios.runner import run_scenario
from repro.scenarios.sweep import sweep


def _run_one(scenario, verbose: bool = True) -> bool:
    result = run_scenario(scenario)
    print(result.summary())
    if verbose and result.events_fired:
        for line in result.events_fired:
            print(f"    fault: {line}")
    for violation in result.violations:
        print(f"    {violation}")
    return result.ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.scenarios", description=__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--list", action="store_true", help="list canned scenarios")
    group.add_argument("--run", metavar="NAME", help="run one canned scenario")
    group.add_argument("--all", action="store_true", help="run every canned scenario")
    group.add_argument("--smoke", action="store_true", help="run the CI smoke subset")
    parser.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    parser.add_argument(
        "--protocol", choices=PROTOCOLS, default=None,
        help="restrict --list/--all/--smoke to one protocol's scenarios",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="run --all/--smoke sweeps across N worker processes "
             "(0 = one per core); per-scenario results are identical to "
             "the serial sweep",
    )
    parser.add_argument(
        "--sharded", action="store_true",
        help="restrict --list/--all to multi-group scenarios (shards > 1); "
             "with --smoke, run the sharded smoke subset instead",
    )
    args = parser.parse_args(argv)

    selected = (
        scenarios_for_protocol(args.protocol) if args.protocol else all_scenarios()
    )
    if args.sharded:
        selected = {
            name: scenario
            for name, scenario in selected.items()
            if scenario.shards > 1
        }

    if args.list:
        for name, scenario in sorted(selected.items()):
            print(f"{name:36s} [{scenario.protocol}] {scenario.description}")
        return 0

    if args.run:
        try:
            scenario = get_scenario(args.run)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        if args.protocol is not None and scenario.protocol != args.protocol:
            print(
                f"error: scenario {args.run!r} is protocol "
                f"{scenario.protocol!r}, not {args.protocol!r}",
                file=sys.stderr,
            )
            return 2
        if args.seed is not None:
            scenario = replace(scenario, seed=args.seed)
        return 0 if _run_one(scenario) else 1

    if args.smoke:
        names = SHARDED_SMOKE_SCENARIOS if args.sharded else SMOKE_SCENARIOS
    else:
        names = sorted(selected)
    names = [name for name in names if name in selected]
    if not names:
        subset = "smoke scenarios" if args.smoke else "scenarios"
        qualifier = " (sharded)" if args.sharded else ""
        print(
            f"error: no {subset}{qualifier} for protocol {args.protocol!r}",
            file=sys.stderr,
        )
        return 2
    scenarios = [get_scenario(name) for name in names]
    if args.seed is not None:
        scenarios = [replace(s, seed=args.seed) for s in scenarios]
    outcomes = sweep(scenarios, parallel=args.parallel)
    ok = True
    for outcome in outcomes:
        print(outcome.summary())
        for _, message in outcome.violations:
            print(f"    {message}")
        ok = ok and outcome.ok
    print("ALL OK" if ok else "VIOLATIONS FOUND")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
