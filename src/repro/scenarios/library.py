"""The canned scenario library.

Adversarial scenarios spanning the paper's deployments (5/9/25-node LAN,
three-region WAN) and the failure modes each protocol must survive.  For
the Paxos family: leader crashes mid-round, relays crashing out from under
an open round, majority/minority partitions, message-drop storms that force
relay timeouts, and continuous relay-group churn.  For EPaxos: hot-key
contention storms (the paper's worst case for dependency tracking), drop
storms, node crashes -- covered twice: ``epaxos-crash-degraded`` pins
explicit-prepare recovery *off* (the historical degraded mode, where a
crashed leader's orphaned instances block their dependents but never break
safety; recovery is otherwise on by default), while ``epaxos-recovery-crash``
holds a ``progress`` floor proving
survivors finish the orphans and throughput actually recovers -- plus
partitions and duplicate-delivery torture (retransmission storms that bite
on any reply-counting bug).  The overlay family exercises the pluggable
fan-out layer: EPaxos PreAccept/Accept rounds through WAN relay trees,
relay-group churn under a drop storm, and thrifty (quorum-subset) rounds
whose fallback broadcast must hold a ``progress`` liveness floor under
crashes and severed links; ``epaxos-relay-recovery-25`` layers every
durability mechanism at once -- instance recovery, relay commit-durability
fallback and leader-side round retry -- on a paper-scale WAN relay
deployment losing a node mid-run.  The paper-scale tier exercises the headline
deployments the hot-path overhaul (PR 4) made affordable: the 25-node
Multi-Paxos control run and its PigPaxos counterpart (Fig. 8), 25-node
EPaxos over WAN relay trees, and a 40-virtual-second Fig.-13-style
fault-tolerance run with repeated follower and leader crashes.  Each
scenario runs with the linearizability
checker plus its protocol's invariant family enabled, so
``run_scenario(s).raise_on_violations()`` is a one-line whole-stack safety
test.

Both ``tests/test_scenarios.py`` and ``benchmarks/bench_scenarios.py``
iterate this library; add new scenarios here and both pick them up.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import Scenario, ScenarioEvent as E
from repro.workload.spec import WorkloadSpec

#: Check-family *names* every EPaxos scenario enables (distinct from the
#: checker-function tuple ``repro.checkers.invariants.EPAXOS_CHECKS``): the
#: slot-based log checks do not apply (and skip themselves), but quorum
#: sanity still does; the instance/dependency-graph checks are the EPaxos
#: equivalents.
EPAXOS_CHECK_NAMES = ("linearizability", "log_invariants", "epaxos_invariants")


#: Check-family names every Paxos/PigPaxos scenario enables.
PAXOS_CHECK_NAMES = ("linearizability", "log_invariants")


def _scenarios() -> List[Scenario]:
    # Every scenario declares its checks explicitly and holds a min_completed
    # liveness floor (enforced statically by the scenario-hygiene lint rule).
    # Floors are calibrated at roughly one third of the seed's observed
    # completion count, so a "safe but stuck" regression trips the progress
    # check long before it halves throughput, while scheduler-level noise
    # from legitimate changes never does.
    return [
        Scenario(
            name="pig-baseline-5",
            protocol="pigpaxos",
            num_nodes=5,
            relay_groups=2,
            num_clients=4,
            duration=1.5,
            seed=11,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1150,  # seed completes 3457
            description="Fault-free 5-node PigPaxos, 2 relay groups (Fig. 10 shape).",
        ),
        Scenario(
            name="paxos-baseline-5",
            protocol="paxos",
            num_nodes=5,
            num_clients=4,
            duration=1.5,
            seed=11,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1650,  # seed completes 4995
            description="Fault-free 5-node Multi-Paxos control run.",
        ),
        Scenario(
            name="pig-relay-sweep-25",
            protocol="pigpaxos",
            num_nodes=25,
            relay_groups=3,
            num_clients=6,
            duration=0.8,
            seed=7,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=750,  # seed completes 2281
            description="Paper-style 25-node cluster, 3 relay groups (Fig. 7/8 shape).",
        ),
        Scenario(
            name="pig-wan-9",
            protocol="pigpaxos",
            num_nodes=9,
            wan=True,
            use_region_groups=True,
            num_clients=6,
            duration=2.5,
            seed=3,
            client_timeout=1.0,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=75,  # seed completes 228
            description="Nine nodes over three WAN regions, one relay group per region (Fig. 9).",
        ),
        Scenario(
            name="pig-crash-follower",
            protocol="pigpaxos",
            num_nodes=7,
            relay_groups=2,
            num_clients=4,
            duration=2.0,
            seed=5,
            client_timeout=0.5,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1450,  # seed completes 4434
            events=(
                E.crash(0.5, node=3),
                E.recover(1.3, node=3),
            ),
            description="A follower (potential relay) crashes mid-run and recovers (Fig. 13 shape).",
        ),
        Scenario(
            name="pig-crash-leader-during-round",
            protocol="pigpaxos",
            num_nodes=5,
            relay_groups=2,
            num_clients=4,
            duration=3.0,
            seed=13,
            client_timeout=0.4,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1650,  # seed completes 5086
            events=(
                E.crash_leader(0.6),
                E.recover_all(2.0),
            ),
            description="The leader dies with rounds in flight; a new leader must take over safely.",
        ),
        Scenario(
            name="pig-partition-minority",
            protocol="pigpaxos",
            num_nodes=5,
            relay_groups=2,
            num_clients=4,
            duration=2.0,
            seed=17,
            client_timeout=0.5,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=850,  # seed completes 2604
            events=(
                E.partition(0.5, (0, 1, 2), (3, 4)),
                E.heal_partition(1.3),
            ),
            description="Two nodes are cut off; the majority keeps committing, then heals.",
        ),
        Scenario(
            name="pig-partition-leader-minority",
            protocol="pigpaxos",
            num_nodes=5,
            relay_groups=2,
            num_clients=4,
            duration=3.0,
            seed=19,
            client_timeout=0.4,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1100,  # seed completes 3320
            events=(
                E.partition(0.5, (0, 1), (2, 3, 4)),
                E.heal_partition(1.8),
            ),
            description="The leader is stranded in a minority; the majority elects around it.",
        ),
        Scenario(
            name="pig-relay-timeout-storm",
            protocol="pigpaxos",
            num_nodes=9,
            relay_groups=3,
            num_clients=4,
            duration=2.0,
            seed=23,
            client_timeout=0.5,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=640,  # seed completes 1920
            config_overrides={"relay_timeout": 0.02},
            events=(
                E.set_drop(0.4, probability=0.25),
                E.set_drop(1.2, probability=0.0),
            ),
            description="A lossy window forces relay timeouts, partial aggregates and retries.",
        ),
        Scenario(
            name="pig-relay-churn",
            protocol="pigpaxos",
            num_nodes=9,
            relay_groups=3,
            num_clients=4,
            duration=1.8,
            seed=29,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1300,  # seed completes 3943
            config_overrides={"group_response_threshold": 0.75},
            events=tuple(
                E.reshuffle_relays(round(0.2 * step, 3)) for step in range(1, 8)
            ),
            description="Continuous relay-group reshuffling with early threshold flushing (Sec. 4).",
        ),
        Scenario(
            name="pig-lossy-background",
            protocol="pigpaxos",
            num_nodes=7,
            relay_groups=2,
            num_clients=4,
            duration=2.0,
            seed=31,
            client_timeout=0.5,
            drop_probability=0.05,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=25,  # seed completes 87 under sustained 5% loss
            description="Every message faces 5% loss for the whole run.",
        ),
        # ------------------------------------------------------------ EPaxos
        Scenario(
            name="epaxos-baseline-5",
            protocol="epaxos",
            num_nodes=5,
            num_clients=4,
            duration=1.5,
            seed=11,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=600,  # seed completes 1852
            description="Fault-free 5-node EPaxos control run, every client a leader.",
        ),
        Scenario(
            name="epaxos-hot-key-storm",
            protocol="epaxos",
            num_nodes=5,
            num_clients=6,
            duration=1.5,
            seed=37,
            workload=WorkloadSpec.checking_default(num_keys=3),
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=650,  # seed completes 1984
            description="Three hot keys, six leaders: maximal conflict rate and dependency churn.",
        ),
        Scenario(
            name="epaxos-drop-storm",
            protocol="epaxos",
            num_nodes=5,
            num_clients=4,
            duration=2.0,
            seed=41,
            client_timeout=0.4,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=290,  # seed completes 877
            events=(
                E.set_drop(0.4, probability=0.25),
                E.set_drop(1.2, probability=0.0),
            ),
            description="A lossy window strands instances mid-round; retries spawn duplicate instances.",
        ),
        Scenario(
            # Shrunk from fuzz seed 42 (`python -m repro.fuzz --seed 42`).
            # On an even-size cluster the paper's fast-quorum formula
            # f + floor((f+1)/2) drops below a majority (2 of 4), so two
            # command leaders could fast-commit conflicting commands with
            # disjoint vote sets and execute them in different orders.
            # WAN latencies + a short client timeout make the client
            # re-send the same command through a second leader, which is
            # what manufactures the concurrent conflicting proposals.
            name="epaxos-even-cluster-retry",
            protocol="epaxos",
            num_nodes=4,
            num_clients=1,
            duration=1.125,
            seed=42,
            wan=True,
            workload=WorkloadSpec(num_keys=1, read_ratio=0.25,
                                  distribution="zipfian", unique_values=True),
            client_timeout=0.4,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=10,
            description="Fuzz-found (seed 42, shrunk): even-cluster fast quorums must still pairwise intersect or conflicting commands execute divergently.",
        ),
        Scenario(
            # Fuzz-found regression (fleet seed 257, shrunk).  A deposed
            # PigPaxos leader whose in-flight slot is NoOp-filled by the
            # new leader's recovery used to acknowledge the orphaned
            # client command with the NoOp's empty result -- a phantom
            # "not found" read.  The partition inflates node 6's ballot
            # (phase-1 retries while isolated), the duplicate storm shifts
            # timing so a proposal is in flight at heal, and the takeover
            # NoOp-fills its slot.
            name="pig-deposed-leader-phantom-read",
            protocol="pigpaxos",
            num_nodes=7,
            num_clients=6,
            duration=2.0,
            seed=257,
            relay_groups=1,
            wan=True,
            workload=WorkloadSpec(num_keys=1, read_ratio=0.25,
                                  unique_values=True),
            client_timeout=0.3,
            checks=("linearizability", "log_invariants", "progress"),
            min_completed=40,
            events=(
                E.partition(0.576, (0, 1, 2, 3, 4, 5), (6,)),
                E.duplicate_storm(1.349, probability=0.1),
                E.heal_partition(1.58),
            ),
            description="Fuzz-found (seed 257, shrunk): a deposed leader must not answer a client with the result of the NoOp that displaced its proposal.",
        ),
        Scenario(
            # Fuzz-found regression (fleet seed 462, shrunk).  A region
            # partition of a 12-node WAN cluster forces explicit-prepare
            # recovery of fast-committed instances; the recovery's
            # fast-commit-disproof heuristic must treat a dependency on a
            # *later* same-origin instance as covering every earlier one
            # (deps keep only the latest interfering instance per origin),
            # or it re-proposes with inflated deps and replicas commit
            # divergent attributes for the same instance.
            name="epaxos-region-partition-recovery",
            protocol="epaxos",
            num_nodes=12,
            num_clients=3,
            duration=0.844,
            seed=462,
            wan=True,
            workload=WorkloadSpec(num_keys=1, read_ratio=0.0,
                                  unique_values=True),
            client_timeout=0.5,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=10,
            events=(
                E.partition(0.406, (1, 2, 4, 5, 7, 8, 9, 10, 11), (0, 3, 6)),
            ),
            description="Fuzz-found (seed 462, shrunk): recovery's fast-commit disproof must respect latest-per-origin deps semantics or instance attributes diverge.",
        ),
        Scenario(
            name="epaxos-crash-degraded",
            protocol="epaxos",
            num_nodes=5,
            num_clients=4,
            duration=2.0,
            seed=43,
            client_timeout=0.4,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            # Degraded mode still commits plenty off the unblocked keys; the
            # floor is a third of the observed 639.
            min_completed=210,
            # Recovery is on by default everywhere else; this scenario pins
            # it off deliberately -- the degraded-mode control proving that
            # orphaned instances block liveness but never safety.
            config_overrides={"recovery_timeout": None},
            events=(E.crash(0.5, node=4),),
            description="A leader dies for good with recovery disabled: the degraded-mode control where orphans stay blocked, safely.",
        ),
        Scenario(
            name="epaxos-recovery-crash",
            protocol="epaxos",
            num_nodes=5,
            num_clients=5,
            duration=3.0,
            seed=45,
            client_timeout=0.4,
            workload=WorkloadSpec.checking_default(num_keys=3),
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            # Without explicit prepare this seed completes 590 ops (post-crash
            # throughput collapses to ~2 ops once an orphan blocks the hot
            # keyspace); with recovery it completes 739 (~170 after the crash).
            # The floor proves the orphans actually get finished, not merely
            # tolerated.  Recovery now defaults on; the explicit override
            # stays so the scenario keeps meaning "0.25s deadline" even if
            # the default moves.
            min_completed=650,
            config_overrides={"recovery_timeout": 0.25},
            events=(E.crash(0.5, node=4),),
            description="A leader dies with rounds in flight on a 3-key keyspace; explicit-prepare recovery must finish its orphans and restore throughput.",
        ),
        Scenario(
            name="epaxos-partition-heal",
            protocol="epaxos",
            num_nodes=5,
            num_clients=4,
            duration=2.2,
            seed=47,
            client_timeout=0.4,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=195,  # seed completes 595
            events=(
                E.partition(0.5, (0, 1, 2), (3, 4)),
                E.heal_partition(1.4),
            ),
            description="A minority is cut off; its instances stall while the majority commits, then heals.",
        ),
        # -------------------------------------------------- EPaxos overlays
        Scenario(
            name="epaxos-relay-wan-9",
            protocol="epaxos",
            num_nodes=9,
            wan=True,
            num_clients=6,
            duration=2.5,
            seed=61,
            client_timeout=1.0,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=115,  # seed completes 351
            config_overrides={
                "overlay": {"kind": "relay", "use_region_groups": True}
            },
            description="Nine WAN nodes, PreAccept/Accept via region relay trees (paper's overlay on the leaderless protocol).",
        ),
        Scenario(
            name="epaxos-relay-reshuffle-storm",
            protocol="epaxos",
            num_nodes=9,
            num_clients=5,
            duration=2.0,
            seed=67,
            client_timeout=0.5,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=165,  # seed completes 504
            config_overrides={
                "overlay": {"kind": "relay", "num_groups": 3, "relay_timeout": 0.02}
            },
            events=(
                E.set_drop(0.4, probability=0.2),
                E.reshuffle_relays(0.6),
                E.reshuffle_relays(0.9),
                E.set_drop(1.2, probability=0.0),
                E.reshuffle_relays(1.5),
            ),
            description="Relay-overlay EPaxos through a drop storm with continuous relay-group churn.",
        ),
        Scenario(
            name="epaxos-thrifty-crash",
            protocol="epaxos",
            num_nodes=5,
            num_clients=4,
            duration=2.0,
            seed=71,
            client_timeout=0.4,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=40,
            config_overrides={
                "overlay": {"kind": "thrifty", "thrifty_fallback_timeout": 0.08}
            },
            events=(E.crash(0.5, node=3),),
            description="Thrifty EPaxos loses a node: rounds that targeted it must recover via the fallback broadcast.",
        ),
        Scenario(
            name="epaxos-thrifty-severed-links",
            protocol="epaxos",
            num_nodes=5,
            num_clients=4,
            duration=2.0,
            seed=73,
            client_timeout=0.4,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=90,
            config_overrides={
                "overlay": {"kind": "thrifty", "thrifty_fallback_timeout": 0.08}
            },
            events=(
                E.sever_link(0.1, 0, 1),
                E.sever_link(0.1, 2, 3),
            ),
            description="Two severed links stall thrifty rounds that sampled the unreachable peer; the fallback broadcast must keep throughput above the progress floor.",
        ),
        # ------------------------------------------------- paper scale / long
        Scenario(
            name="paxos-throughput-25",
            protocol="paxos",
            num_nodes=25,
            num_clients=6,
            duration=1.0,
            seed=7,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=740,  # seed completes 2225
            description="Paper-scale 25-node Multi-Paxos control run (Fig. 8 baseline): the leader touches 2(N-1) messages per op.",
        ),
        # ------------------------------------------------- batching & pipelining
        # Batched twins of hot scenarios: identical cluster shape and seed,
        # plus the PR-9 batching knobs.  Their unbatched originals stay
        # byte-identical (batching defaults off); these cells pin the
        # batched code path's own determinism and its liveness floor.
        Scenario(
            name="paxos-throughput-25-batched",
            protocol="paxos",
            num_nodes=25,
            num_clients=6,
            duration=1.0,
            seed=7,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1050,  # seed completes 3179
            config_overrides={"batch_max_commands": 8, "pipeline_depth": 2},
            description="Batched twin of paxos-throughput-25: pipeline back-pressure packs up to 8 commands per slot, amortising the leader's 2(N-1) messages per op.",
        ),
        Scenario(
            name="pig-batched-5",
            protocol="pigpaxos",
            num_nodes=5,
            relay_groups=2,
            num_clients=4,
            duration=1.5,
            seed=11,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1080,  # seed completes 3248
            config_overrides={"batch_max_commands": 4, "pipeline_depth": 2},
            description="Batched twin of pig-baseline-5: command batches ride the relay trees unsplit, one RelayRequest per slot.",
        ),
        Scenario(
            name="epaxos-batched-5",
            protocol="epaxos",
            num_nodes=5,
            num_clients=6,
            duration=1.5,
            seed=11,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=245,  # seed completes 746
            config_overrides={"batch_max_commands": 4, "batch_max_delay": 0.01},
            description="EPaxos delay batching: each opportunistic leader holds non-conflicting commands up to 10 ms and leads them as one instance.",
        ),
        Scenario(
            name="epaxos-relay-wan-25",
            protocol="epaxos",
            num_nodes=25,
            wan=True,
            num_clients=8,
            duration=2.5,
            seed=83,
            client_timeout=1.0,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=60,
            config_overrides={
                "overlay": {"kind": "relay", "use_region_groups": True}
            },
            description="Paper-scale 25-node EPaxos across three WAN regions, PreAccept/Accept/commit through region relay trees.",
        ),
        Scenario(
            name="epaxos-relay-recovery-25",
            protocol="epaxos",
            num_nodes=25,
            wan=True,
            num_clients=8,
            duration=2.5,
            seed=89,
            client_timeout=1.0,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            # Without the durability trio this seed completes 109 ops (21
            # after the crash); with them it completes 143 (~60 after).
            min_completed=125,
            config_overrides={
                "overlay": {
                    "kind": "relay",
                    "use_region_groups": True,
                    "commit_fallback_timeout": 0.25,
                },
                "recovery_timeout": 0.4,
                "leader_retry_timeout": 0.3,
            },
            events=(E.crash(0.8, node=7),),
            description="Paper-scale WAN relay EPaxos loses a node mid-run: instance recovery, relay commit-durability fallback and leader round retry must together hold the progress floor.",
        ),
        Scenario(
            name="pig-fault-tolerance-long",
            protocol="pigpaxos",
            num_nodes=7,
            relay_groups=2,
            num_clients=4,
            duration=40.0,
            seed=97,
            client_timeout=0.5,
            checks=("linearizability", "log_invariants", "progress"),
            min_completed=5000,
            events=(
                E.crash(3.0, node=3),
                E.recover(6.0, node=3),
                E.crash_leader(9.0),
                E.recover_all(13.0),
                E.crash(16.0, node=5),
                E.recover(19.0, node=5),
                E.crash_leader(21.0),
                E.recover_all(25.0),
                E.crash(28.0, node=1),
                E.recover(31.0, node=1),
                E.crash_leader(34.0),
            ),
            description="Long-duration fault-tolerance run (Fig. 13 shape): repeated follower and leader crashes over 40 virtual seconds.",
        ),
        # ---------------------------------------------------------- sharded
        # Multi-group consensus over a shared node set (see repro.shard):
        # each scenario runs `shards` independent consensus groups on the
        # same machines, leaders placed round-robin, clients routing per
        # key.  The safety checkers apply per group; linearizability is
        # per-key and spans groups unchanged.
        Scenario(
            name="paxos-sharded-4",
            protocol="paxos",
            num_nodes=5,
            num_clients=8,
            duration=1.0,
            seed=1,
            shards=4,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=2150,  # seed completes 6566
            description="Fault-free 4-shard Multi-Paxos on 5 shared nodes, leaders round-robin.",
        ),
        Scenario(
            name="pig-sharded-4",
            protocol="pigpaxos",
            num_nodes=5,
            relay_groups=2,
            num_clients=8,
            duration=1.0,
            seed=1,
            shards=4,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1500,  # seed completes 4581
            description="Fault-free 4-shard PigPaxos, every group fanning out through 2 relay groups.",
        ),
        Scenario(
            name="epaxos-sharded-4",
            protocol="epaxos",
            num_nodes=5,
            num_clients=8,
            duration=1.0,
            seed=1,
            shards=4,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=480,  # seed completes 1448
            description="Fault-free 4-shard EPaxos: four leaderless groups sharing 5 nodes.",
        ),
        Scenario(
            name="sharded-crash-shard-leader",
            protocol="paxos",
            num_nodes=5,
            num_clients=6,
            duration=1.5,
            seed=3,
            shards=4,
            client_timeout=0.3,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=1490,  # seed completes 4476
            events=(
                # Node 1 hosts shard 1's leader under round-robin placement;
                # crashing it also takes down follower instances of every
                # other shard (co-hosting is the point of the tentpole).
                E.crash(0.5, node=1),
                E.recover(1.0, node=1),
            ),
            description="Crash the machine hosting shard 1's leader mid-run; other shards keep committing.",
        ),
        Scenario(
            name="sharded-partition-straddle",
            protocol="paxos",
            num_nodes=5,
            num_clients=6,
            duration=1.8,
            seed=5,
            shards=4,
            client_timeout=0.3,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=610,  # seed completes 1849
            events=(
                # {0, 1} is the minority side and holds the leaders of
                # shards 0 and 1 -- both stall until heal while shards 2
                # and 3 (leaders on the majority side) keep committing.
                E.partition(0.4, (0, 1), (2, 3, 4)),
                E.heal_partition(1.0),
            ),
            description="Partition straddling two shards' leader nodes: minority-side shards stall, majority-side shards stay live.",
        ),
        Scenario(
            name="sharded-hot-shard-zipf",
            protocol="epaxos",
            num_nodes=5,
            num_clients=6,
            duration=1.2,
            seed=7,
            shards=4,
            workload=WorkloadSpec(
                num_keys=25,
                read_ratio=0.5,
                distribution="zipfian",
                unique_values=True,
            ),
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=550,  # seed completes 1652
            description="Zipfian skew concentrates load on shard 0 (the hot group); per-shard counters expose the imbalance.",
        ),
        Scenario(
            name="sharded-hot-shard-zipf-batched",
            protocol="epaxos",
            num_nodes=5,
            num_clients=6,
            duration=1.2,
            seed=7,
            shards=4,
            workload=WorkloadSpec(
                num_keys=25,
                read_ratio=0.5,
                distribution="zipfian",
                unique_values=True,
            ),
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=190,  # seed completes 578
            config_overrides={"batch_max_commands": 4, "batch_max_delay": 0.01},
            description="Batched twin of sharded-hot-shard-zipf: delay batching on every group coalesces the hot shard's zipf-concentrated load.",
        ),
        Scenario(
            name="epaxos-sharded-relay-wan-9",
            protocol="epaxos",
            num_nodes=9,
            wan=True,
            num_clients=6,
            duration=1.5,
            seed=23,
            shards=3,
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=65,  # seed completes 196
            config_overrides={
                "overlay": {"kind": "relay", "use_region_groups": True}
            },
            description="3-shard EPaxos over the three-region WAN, each group's rounds through region relay trees.",
        ),
        # ------------------------------------------------- planet scale
        # Region -> zone -> node hierarchies (PR 10): 49-81 nodes across
        # 3-5 regions with 3 zones each, zone-aligned two-level relay
        # trees.  The region-loss family cuts whole regions/zones out of
        # the cluster; the wan-degradation family degrades the links
        # themselves (loss + a sluggish region).  Node->region placement
        # is round-robin (node i lives in region i % R, zone (i // R) % Z),
        # which is what makes the partition groups below whole regions.
        Scenario(
            name="pig-planet-region-loss-49",
            protocol="pigpaxos",
            num_nodes=49,
            hierarchy=(3, 3),
            use_region_groups=True,
            num_clients=8,
            duration=2.5,
            seed=101,
            client_timeout=1.0,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=110,  # seed completes 329
            config_overrides={"relay_levels": 2},
            events=(
                # Region "oregon" (node i % 3 == 2: 16 of 49 nodes) drops
                # off the planet; the two surviving regions still hold 33
                # nodes -- a comfortable majority that must keep committing.
                E.partition(
                    0.7,
                    tuple(n for n in range(49) if n % 3 != 2),
                    tuple(n for n in range(49) if n % 3 == 2),
                ),
                E.heal_partition(1.8),
            ),
            description="49 nodes over 3 regions x 3 zones, two-level zone relay trees; a whole region partitions away and later rejoins.",
        ),
        Scenario(
            name="pig-planet-zone-crash-75",
            protocol="pigpaxos",
            num_nodes=75,
            hierarchy=(5, 3),
            use_region_groups=True,
            num_clients=8,
            duration=2.5,
            seed=103,
            client_timeout=1.0,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=44,  # seed completes 132
            config_overrides={"relay_levels": 2},
            events=tuple(
                # Zone virginia-z0 = {0, 15, 30, 45, 60} under round-robin
                # placement: all five machines of one zone fail together
                # (a zone outage), then power back on.
                E.crash(0.6, node=n) for n in (0, 15, 30, 45, 60)
            ) + (E.recover_all(1.6),),
            description="75 nodes over 5 regions x 3 zones: one complete zone (5 machines) crashes and recovers; zone-aligned subtrees route around it.",
        ),
        Scenario(
            name="epaxos-planet-deep-relay-crash-49",
            protocol="epaxos",
            num_nodes=49,
            hierarchy=(3, 3),
            num_clients=16,
            duration=4.0,
            seed=127,
            client_timeout=0.75,
            # Hot keyspace so the surviving leaders' instances all conflict:
            # a leader that misses a dependency's ECommit stalls execution
            # and its client visibly times out, which is what makes the
            # fallback's healing measurable from the outside.
            workload=WorkloadSpec(num_keys=4, read_ratio=0.25, unique_values=True),
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            # Fixed relays pin node 0 as region virginia's first-hop relay
            # and node 4 as the california-z1 sub-relay in every root's
            # tree; crashing both tears a hole at depth 1 *and* depth 2 of
            # all 48 surviving fan-out trees at once.  With the hop-by-hop
            # commit fallback this seed completes 50 ops; with
            # commit_fallback_timeout=None the starved subtrees silently
            # miss ECommits, dependents stall until instance recovery
            # limps in, and it completes only 44 (see the mutation test in
            # tests/test_scenario_mutations.py).  The floor sits between.
            min_completed=47,
            config_overrides={
                "overlay": {
                    "kind": "relay",
                    "use_region_groups": True,
                    "relay_levels": 2,
                    "fixed_relays": True,
                    "commit_fallback_timeout": 0.25,
                },
                "recovery_timeout": 1.5,
            },
            events=(E.crash(0.5, node=0), E.crash(0.5, node=4)),
            description="Depth-2 zone relay trees on 49 planet nodes lose a first-hop relay and an interior sub-relay mid-run: the hop-by-hop ack/resend fallback must heal the torn subtrees below the first hop.",
        ),
        Scenario(
            name="pig-planet-wan-degradation-81",
            protocol="pigpaxos",
            num_nodes=81,
            hierarchy=(3, 3),
            use_region_groups=True,
            num_clients=8,
            duration=2.5,
            seed=109,
            client_timeout=1.0,
            checks=PAXOS_CHECK_NAMES + ("progress",),
            min_completed=58,  # seed completes 176
            config_overrides={"relay_levels": 2},
            events=(
                # The WAN degrades rather than partitions: a lossy window
                # hits every link while one whole region turns sluggish
                # (node i % 3 == 1 is region "california", 27 of 81 nodes),
                # then both clear.
                E.set_drop(0.6, probability=0.15),
            ) + tuple(
                E.sluggish(0.6, node=n, factor=4.0) for n in range(81) if n % 3 == 1
            ) + (
                E.set_drop(1.5, probability=0.0),
            ) + tuple(
                E.sluggish(1.5, node=n, factor=1.0) for n in range(81) if n % 3 == 1
            ),
            description="81 planet nodes under WAN degradation: 15% loss everywhere plus one 4x-sluggish region, through two-level relay trees.",
        ),
        Scenario(
            name="epaxos-duplicate-torture",
            protocol="epaxos",
            num_nodes=5,
            num_clients=5,
            duration=1.8,
            seed=53,
            workload=WorkloadSpec.checking_default(num_keys=4),
            checks=EPAXOS_CHECK_NAMES + ("progress",),
            min_completed=570,  # seed completes 1716
            events=(
                E.duplicate_storm(0.2, probability=0.35),
                E.duplicate_storm(1.4, probability=0.0),
            ),
            description="35% of messages delivered twice: retransmission torture for reply accounting.",
        ),
    ]


def all_scenarios() -> Dict[str, Scenario]:
    """Name -> scenario for every canned scenario."""
    scenarios = _scenarios()
    return {scenario.name: scenario for scenario in scenarios}


def get_scenario(name: str) -> Scenario:
    scenarios = all_scenarios()
    if name not in scenarios:
        known = ", ".join(sorted(scenarios))
        raise KeyError(f"unknown scenario {name!r}; known: {known}")
    return scenarios[name]


def scenarios_for_protocol(protocol: str) -> Dict[str, Scenario]:
    """Name -> scenario restricted to one protocol (CLI ``--protocol``)."""
    return {
        name: scenario
        for name, scenario in all_scenarios().items()
        if scenario.protocol == protocol
    }


#: A small subset used by CI smoke runs and quick local checks.  CI runs
#: the full EPaxos sweep in a separate step, so smoke carries only the
#: fast EPaxos baseline plus one scenario per new fan-out overlay (relay,
#: thrifty) so an overlay regression fails fast.  The paper-scale 25-node
#: scenarios ride along because they finish in about a second each after
#: the hot-path overhaul; the 40-virtual-second fault-tolerance run stays
#: full-sweep-only (tens of seconds of wall clock).  The two recovery
#: scenarios are in smoke so a regression in the explicit-prepare path (or
#: its overlay durability companions) fails fast.
SMOKE_SCENARIOS = (
    "pig-baseline-5",
    "pig-crash-follower",
    "epaxos-baseline-5",
    "epaxos-relay-wan-9",
    "epaxos-thrifty-crash",
    "paxos-throughput-25",
    "epaxos-relay-wan-25",
    "epaxos-recovery-crash",
    "epaxos-relay-recovery-25",
    # One batched cell per protocol so a batching regression fails fast.
    "paxos-throughput-25-batched",
    "pig-batched-5",
    "epaxos-batched-5",
    # One planet-scale hierarchy cell so a region/zone topology or deep
    # relay-tree regression fails fast (the rest of the planet family is
    # full-sweep-only).
    "pig-planet-region-loss-49",
)


#: The sharded smoke sweep (CI's multi-group step, ``--smoke --sharded``):
#: the whole sharded family -- one fault-free cell per protocol, the two
#: fault-confinement scenarios, the hot-group skew probe and the WAN relay
#: cell.  Small enough to stay a smoke run, complete enough that any
#: regression in routing, co-hosting or per-group checking fails fast.
SHARDED_SMOKE_SCENARIOS = (
    "paxos-sharded-4",
    "pig-sharded-4",
    "epaxos-sharded-4",
    "sharded-crash-shard-leader",
    "sharded-partition-straddle",
    "sharded-hot-shard-zipf",
    "sharded-hot-shard-zipf-batched",
    "epaxos-sharded-relay-wan-9",
)
