"""Compiles a :class:`~repro.scenarios.spec.Scenario` onto the simulator.

``ScenarioRunner`` is the bridge between the declarative spec layer and the
concrete stack: it builds the topology, protocol config, cluster, clients
and history recorder, arms the timed event schedule, runs the simulation,
and applies the requested checkers post-hoc.  The returned
:class:`ScenarioResult` bundles everything a test or benchmark needs: the
cluster (for poking at replica state), the recorded history, the violations
found, throughput stats and a determinism fingerprint.

Example::

    from repro.scenarios import ScenarioRunner, get_scenario

    runner = ScenarioRunner(get_scenario("epaxos-relay-wan-9"))
    result = runner.run()
    assert result.ok, result.violations
    print(result.summary())
    print(result.counters()["net.messages_sent"])
    # Same spec + seed => identical fingerprint, every time:
    assert ScenarioRunner(result.scenario).run().fingerprint() == result.fingerprint()
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkers.history import History, HistoryRecorder
from repro.checkers.invariants import Violation, run_epaxos_checks, run_log_checks
from repro.checkers.linearizability import check_linearizability
from repro.cluster.builder import Cluster, ClusterBuilder
from repro.cluster.faults import FaultEvent, FaultKind
from repro.cluster.topologies import planet_topology, wan_topology
from repro.core.config import PigPaxosConfig
from repro.errors import ConfigurationError, ReproError
from repro.protocol.config import ProtocolConfig
from repro.scenarios.spec import Scenario, ScenarioEvent


@dataclass
class ScenarioResult:
    """Everything produced by one scenario run."""

    scenario: Scenario
    cluster: Cluster
    history: History
    violations: List[Violation]
    completed_requests: int
    events_processed: int
    virtual_duration: float
    events_fired: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every enabled checker passed."""
        return not self.violations

    def fingerprint(self) -> str:
        """Stable digest of the run; identical for identical (spec, seed)."""
        digest = hashlib.sha256()
        digest.update(self.history.fingerprint().encode("utf-8"))
        digest.update(
            f"|completed={self.completed_requests}"
            f"|events={self.events_processed}"
            f"|now={self.virtual_duration:.9f}".encode("utf-8")
        )
        return digest.hexdigest()

    def counters(self) -> Dict[str, float]:
        return self.cluster.sim.metrics.counters()

    def raise_on_violations(self, max_listed: int = 20) -> None:
        if self.violations:
            listed = self.violations[:max_listed]
            details = "\n".join(str(v) for v in listed)
            if len(self.violations) > max_listed:
                details += f"\n... and {len(self.violations) - max_listed} more"
            raise AssertionError(
                f"scenario {self.scenario.name!r} violated "
                f"{len(self.violations)} invariant(s):\n{details}"
            )

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"{self.scenario.name}: {status}, "
            f"{self.completed_requests} ops completed, "
            f"{len(self.history)} recorded, "
            f"{self.events_processed} sim events, "
            f"{len(self.events_fired)} faults fired"
        )


class ScenarioRunner:
    """Builds, runs and checks one scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self._recorder = HistoryRecorder()

    # ------------------------------------------------------------------ build
    def build(self) -> Cluster:
        """Compile the spec into a ready-to-run cluster (without running)."""
        scenario = self.scenario
        builder = (
            ClusterBuilder()
            .protocol(scenario.protocol)
            .nodes(scenario.num_nodes)
            .clients(scenario.num_clients)
            .seed(scenario.seed)
            .workload(scenario.workload)
            .client_timeout(scenario.client_timeout)
            .history_recorder(self._recorder)
        )
        if scenario.wan:
            builder.topology(wan_topology(num_nodes=scenario.num_nodes))
        if scenario.hierarchy is not None:
            num_regions, zones_per_region = scenario.hierarchy
            builder.topology(
                planet_topology(
                    num_nodes=scenario.num_nodes,
                    num_regions=num_regions,
                    zones_per_region=zones_per_region,
                )
            )
        if scenario.shards != 1:
            builder.shards(scenario.shards)
        if scenario.relay_groups is not None:
            builder.relay_groups(scenario.relay_groups)
        if scenario.use_region_groups:
            builder.region_relay_groups(True)
        if scenario.drop_probability > 0.0:
            builder.message_drop_probability(scenario.drop_probability)
        config = self._protocol_config()
        if config is not None:
            builder.protocol_config(config)
        return builder.build()

    def _protocol_config(self) -> Optional[ProtocolConfig]:
        overrides = dict(self.scenario.config_overrides or {})
        if self.scenario.protocol == "pigpaxos":
            return PigPaxosConfig(**overrides)
        if self.scenario.protocol == "paxos":
            return ProtocolConfig(**overrides)
        if self.scenario.protocol == "epaxos":
            # EPaxos only consumes the shared session_window and overlay
            # knobs; the builder rejects a config carrying anything else.
            return ProtocolConfig(**overrides) if overrides else None
        if overrides:
            raise ConfigurationError(
                f"protocol {self.scenario.protocol!r} takes no config overrides"
            )
        return None

    # ------------------------------------------------------------------ run
    def run(self) -> ScenarioResult:
        cluster = self.build()
        events_fired: List[str] = []
        cluster.start()
        for event in self.scenario.events:
            cluster.sim.schedule_at(event.at, self._fire, cluster, event, events_fired)
        violations: List[Violation] = []
        try:
            cluster.sim.run(until=self.scenario.duration)
        except ReproError as exc:
            # A broken protocol can trip the stack's own safety guards (e.g.
            # "overwrite committed slot") before the post-hoc checkers see
            # the state.  Report it as a violation and still check whatever
            # partial state exists -- mutation tests rely on this.
            violations.append(
                Violation(
                    checker="runtime",
                    message=f"simulation aborted: {type(exc).__name__}: {exc}",
                )
            )

        history = self._recorder.history()
        if "log_invariants" in self.scenario.checks:
            violations.extend(self._grouped_checks(cluster, run_log_checks))
        if "epaxos_invariants" in self.scenario.checks:
            violations.extend(self._grouped_checks(cluster, run_epaxos_checks))
        if "linearizability" in self.scenario.checks:
            violations.extend(check_linearizability(history))
        if "progress" in self.scenario.checks:
            completed = cluster.total_completed_requests()
            if completed < self.scenario.min_completed:
                violations.append(
                    Violation(
                        checker="progress",
                        message=(
                            f"liveness floor missed: {completed} operations "
                            f"completed, scenario requires >= "
                            f"{self.scenario.min_completed}"
                        ),
                    )
                )

        return ScenarioResult(
            scenario=self.scenario,
            cluster=cluster,
            history=history,
            violations=violations,
            completed_requests=cluster.total_completed_requests(),
            events_processed=cluster.sim.events_processed,
            virtual_duration=cluster.sim.now,
            events_fired=events_fired,
        )

    @staticmethod
    def _grouped_checks(cluster: Cluster, check) -> List[Violation]:
        """Apply a cluster-shaped checker per consensus group.

        Unsharded clusters go straight through (the historical path); a
        sharded cluster is checked one :class:`ShardGroupView` at a time,
        with each violation labelled by the group it came from.
        """
        if cluster.num_shards == 1:
            return check(cluster)
        violations: List[Violation] = []
        for view in cluster.shard_views():
            for violation in check(view):
                violations.append(
                    Violation(
                        checker=violation.checker,
                        message=f"[shard {view.shard}] {violation.message}",
                    )
                )
        return violations

    # ------------------------------------------------------------------ events
    #: Static actions map 1:1 onto the cluster's own fault dispatcher.
    _STATIC_FAULT_KINDS = {
        "crash": FaultKind.CRASH,
        "recover": FaultKind.RECOVER,
        "sluggish": FaultKind.SLUGGISH,
        "sever_link": FaultKind.SEVER_LINK,
        "heal_link": FaultKind.HEAL_LINK,
        "partition": FaultKind.PARTITION,
        "heal_partition": FaultKind.HEAL_PARTITION,
    }

    def _fire(self, cluster: Cluster, event: ScenarioEvent, fired: List[str]) -> None:
        """Apply one scheduled event, resolving dynamic targets now.

        Static faults are translated to :class:`FaultEvent` and routed
        through :meth:`Cluster.apply_fault` so there is exactly one fault
        dispatch path; only the dynamic actions live here.
        """
        action = event.action
        label = f"t={event.at:.3f} {action}"
        kind = self._STATIC_FAULT_KINDS.get(action)
        if kind is not None:
            cluster.apply_fault(
                FaultEvent(
                    at=event.at,
                    kind=kind,
                    node=event.node,
                    peer=event.peer,
                    factor=event.factor,
                    groups=event.groups,
                )
            )
        elif action == "crash_leader":
            leader = cluster.leader_id()
            if leader is None:
                fired.append(f"{label} (no leader)")
                return
            cluster.crash_node(leader)
            label = f"{label} (node {leader})"
        elif action == "recover_all":
            for node_id, node in cluster.nodes.items():
                if node.crashed:
                    cluster.recover_node(node_id)
        elif action == "reshuffle_relays":
            # Paxos-family: only the leader owns a relay plan.  EPaxos:
            # every replica is a fan-out root with its own plan, so all of
            # them reshuffle (a no-op under non-relay overlays).  Sharded
            # clusters reshuffle every hosted group's eligible replicas.
            for node in cluster.all_replica_hosts():
                replica = node.replica
                if node.crashed or not hasattr(replica, "reshuffle_groups"):
                    continue
                if getattr(replica, "is_leader", False) or replica.protocol_name == "epaxos":
                    replica.reshuffle_groups()
        elif action == "set_drop":
            cluster.network.faults.drop_probability = event.probability
        elif action == "duplicate_storm":
            cluster.network.faults.duplicate_probability = event.probability
        fired.append(label)


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """One-call convenience wrapper."""
    return ScenarioRunner(scenario).run()
