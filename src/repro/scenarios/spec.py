"""Declarative scenario specifications.

A :class:`Scenario` describes one complete adversarial experiment without
touching any simulator machinery: the cluster shape (protocol, node count,
LAN/WAN topology, relay-group layout), the workload mix, how long to run,
and a timed schedule of :class:`ScenarioEvent` faults.  The
:class:`~repro.scenarios.runner.ScenarioRunner` compiles a spec onto the
existing :class:`~repro.sim.engine.Simulator` /
:class:`~repro.cluster.builder.ClusterBuilder` stack and runs the safety
checkers afterwards.

Events come in two flavours:

* **static** -- the target node is named in the spec (``crash``,
  ``recover``, ``partition``, ``sever_link`` ...), and
* **dynamic** -- the target is resolved when the event fires
  (``crash_leader`` crashes whoever leads at that instant,
  ``reshuffle_relays`` reshuffles the current leader's relay groups,
  ``set_drop`` rewrites the network's drop probability mid-run).

Dynamic events are what make adversarial schedules portable across seeds:
"crash the leader during a round" works no matter which node won the
election.

Example -- a complete scenario, runnable as-is::

    from repro.scenarios import Scenario, ScenarioEvent, run_scenario

    scenario = Scenario(
        name="my-partition-probe",
        protocol="pigpaxos",
        num_nodes=5,
        relay_groups=2,
        duration=2.0,
        seed=7,
        client_timeout=0.5,
        events=(
            ScenarioEvent.partition(0.5, (0, 1, 2), (3, 4)),
            ScenarioEvent.heal_partition(1.3),
        ),
    )
    result = run_scenario(scenario)
    result.raise_on_violations()      # linearizability + log invariants
    print(result.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.workload.spec import WorkloadSpec

#: Every event action the runner knows how to fire.
EVENT_ACTIONS = (
    "crash",
    "recover",
    "crash_leader",
    "recover_all",
    "partition",
    "heal_partition",
    "sever_link",
    "heal_link",
    "sluggish",
    "reshuffle_relays",
    "set_drop",
    "duplicate_storm",
)

#: Checker names accepted by ``Scenario.checks``.  The first three are
#: safety families (see :mod:`repro.checkers`); ``progress`` is a liveness
#: floor -- it fires when the run completes fewer than
#: ``Scenario.min_completed`` client operations, which is how scenarios
#: catch "safe but stuck" regressions (e.g. a thrifty overlay whose
#: fallback re-send was broken).
CHECK_NAMES = ("linearizability", "log_invariants", "epaxos_invariants", "progress")


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed fault/chaos action within a scenario."""

    at: float
    action: str
    node: Optional[int] = None
    peer: Optional[int] = None
    factor: float = 1.0
    probability: float = 0.0
    groups: Tuple[Tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("event time must be non-negative")
        if self.action not in EVENT_ACTIONS:
            raise ConfigurationError(
                f"unknown scenario action {self.action!r}; expected one of {EVENT_ACTIONS}"
            )
        if self.action in ("crash", "recover", "sluggish") and self.node is None:
            raise ConfigurationError(f"action {self.action!r} needs a node")
        if self.action in ("sever_link", "heal_link") and (self.node is None or self.peer is None):
            raise ConfigurationError(f"action {self.action!r} needs node and peer")
        if self.action == "partition" and not self.groups:
            raise ConfigurationError("partition needs at least one group")
        if self.action in ("set_drop", "duplicate_storm") and not 0.0 <= self.probability < 1.0:
            # Same invariant the NetworkFaults constructor enforces; the
            # runner assigns the live fault object directly.
            raise ConfigurationError(f"{self.action} probability must be in [0, 1)")
        if self.action == "sluggish" and self.factor <= 0:
            raise ConfigurationError("sluggish factor must be positive")

    # ------------------------------------------------------------- factories
    @staticmethod
    def crash(at: float, node: int) -> "ScenarioEvent":
        return ScenarioEvent(at=at, action="crash", node=node)

    @staticmethod
    def recover(at: float, node: int) -> "ScenarioEvent":
        return ScenarioEvent(at=at, action="recover", node=node)

    @staticmethod
    def crash_leader(at: float) -> "ScenarioEvent":
        """Crash whichever node is leader when the event fires."""
        return ScenarioEvent(at=at, action="crash_leader")

    @staticmethod
    def recover_all(at: float) -> "ScenarioEvent":
        """Recover every node that is crashed when the event fires."""
        return ScenarioEvent(at=at, action="recover_all")

    @staticmethod
    def partition(at: float, *groups: Sequence[int]) -> "ScenarioEvent":
        return ScenarioEvent(
            at=at, action="partition", groups=tuple(tuple(group) for group in groups)
        )

    @staticmethod
    def heal_partition(at: float) -> "ScenarioEvent":
        return ScenarioEvent(at=at, action="heal_partition")

    @staticmethod
    def sever_link(at: float, a: int, b: int) -> "ScenarioEvent":
        return ScenarioEvent(at=at, action="sever_link", node=a, peer=b)

    @staticmethod
    def heal_link(at: float, a: int, b: int) -> "ScenarioEvent":
        return ScenarioEvent(at=at, action="heal_link", node=a, peer=b)

    @staticmethod
    def sluggish(at: float, node: int, factor: float) -> "ScenarioEvent":
        return ScenarioEvent(at=at, action="sluggish", node=node, factor=factor)

    @staticmethod
    def reshuffle_relays(at: float) -> "ScenarioEvent":
        """Reshuffle the current leader's relay groups (relay churn)."""
        return ScenarioEvent(at=at, action="reshuffle_relays")

    @staticmethod
    def set_drop(at: float, probability: float) -> "ScenarioEvent":
        """Rewrite the network-wide message drop probability."""
        return ScenarioEvent(at=at, action="set_drop", probability=probability)

    @staticmethod
    def duplicate_storm(at: float, probability: float) -> "ScenarioEvent":
        """Rewrite the network-wide duplicate-delivery probability.

        While active, every delivered message is re-delivered a second time
        with probability ``probability`` (its own latency draw, so copies
        reorder).  Retransmission torture for reply-accounting bugs; end the
        storm with a second event at probability 0.
        """
        return ScenarioEvent(at=at, action="duplicate_storm", probability=probability)


@dataclass(frozen=True)
class Scenario:
    """A complete, declarative description of one adversarial run.

    Attributes:
        name: Unique scenario name (library key, CLI argument).
        protocol: "paxos", "pigpaxos" or "epaxos".
        num_nodes: Cluster size.
        num_clients: Closed-loop clients driving the workload.
        duration: Virtual seconds to run.
        seed: Master seed; two runs of the same scenario+seed are
            bit-for-bit identical (histories, metrics, everything).
        relay_groups: PigPaxos relay-group count (None = protocol default).
        wan: Use the paper's three-region WAN topology instead of a LAN.
        hierarchy: ``(num_regions, zones_per_region)`` -- deploy on the
            planet-scale region/zone topology of
            :func:`~repro.cluster.topologies.planet_topology` instead of a
            LAN.  Mutually exclusive with ``wan`` (the hierarchy *is* a WAN
            with a finer intra-region structure); combine with
            ``use_region_groups`` and ``relay_levels`` overrides to get
            zone-aligned multi-level relay trees.
        use_region_groups: Align relay groups with WAN regions.
        workload: Client workload; defaults to the contended, identifiable
            ``WorkloadSpec.checking_default()`` the checkers need.
        client_timeout: Client request timeout before rotating targets;
            fault scenarios lower it so clients re-find the leader within
            the scenario's duration.
        shards: Number of independent consensus groups sharing the node set
            (1 = the historical single-group deployment).  Each group owns a
            contiguous key range, leaders spread round-robin across nodes,
            and clients route per key (see :mod:`repro.shard`).  The safety
            checkers apply per group; linearizability stays per-key and
            needs no adaptation.
        drop_probability: Baseline random message-drop probability.
        events: Timed fault schedule.
        config_overrides: Extra protocol-config fields (e.g.
            ``{"relay_timeout": 0.02, "group_response_threshold": 0.75}``,
            or for Paxos/EPaxos an overlay choice:
            ``{"overlay": {"kind": "relay", "num_groups": 3}}``).
        checks: Which checker families the runner applies post-hoc.
        min_completed: Liveness floor for the ``progress`` check -- the
            minimum number of client operations the run must complete.
            Calibrate well below the healthy throughput for the seed so the
            check only fires on order-of-magnitude collapses, not noise.
        description: One line shown by the CLI and benchmark reports.
    """

    name: str
    protocol: str = "pigpaxos"
    num_nodes: int = 5
    num_clients: int = 4
    duration: float = 1.5
    seed: int = 0
    relay_groups: Optional[int] = None
    wan: bool = False
    hierarchy: Optional[Tuple[int, int]] = None
    use_region_groups: bool = False
    workload: WorkloadSpec = field(default_factory=WorkloadSpec.checking_default)
    client_timeout: float = 2.0
    shards: int = 1
    drop_probability: float = 0.0
    events: Tuple[ScenarioEvent, ...] = ()
    config_overrides: Optional[Mapping[str, object]] = None
    checks: Tuple[str, ...] = ("linearizability", "log_invariants")
    min_completed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.num_clients < 1:
            raise ConfigurationError("num_clients must be >= 1")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.client_timeout is None or self.client_timeout <= 0:
            raise ConfigurationError("client_timeout must be positive")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.shards > self.workload.num_keys:
            raise ConfigurationError(
                f"shards={self.shards} exceeds workload num_keys="
                f"{self.workload.num_keys}; every shard needs at least one key"
            )
        if self.min_completed < 0:
            raise ConfigurationError("min_completed must be >= 0")
        if self.hierarchy is not None:
            if self.wan:
                raise ConfigurationError(
                    "hierarchy and wan are mutually exclusive; the "
                    "hierarchical topology already spans regions"
                )
            if len(self.hierarchy) != 2:
                raise ConfigurationError(
                    "hierarchy must be (num_regions, zones_per_region)"
                )
            num_regions, zones_per_region = self.hierarchy
            if num_regions < 1 or zones_per_region < 1:
                raise ConfigurationError(
                    "hierarchy counts must both be >= 1"
                )
            if num_regions > self.num_nodes:
                raise ConfigurationError(
                    f"hierarchy wants {num_regions} regions but the cluster "
                    f"has only {self.num_nodes} nodes"
                )
        for check in self.checks:
            if check not in CHECK_NAMES:
                raise ConfigurationError(
                    f"unknown check {check!r}; expected one of {CHECK_NAMES}"
                )
        for event in self.events:
            if event.at > self.duration:
                raise ConfigurationError(
                    f"event {event.action!r} at t={event.at} fires after the "
                    f"scenario ends (duration={self.duration})"
                )

    def with_seed(self, seed: int) -> "Scenario":
        """The same scenario under a different seed (for seed sweeps)."""
        return replace(self, seed=seed, name=f"{self.name}@{seed}")
