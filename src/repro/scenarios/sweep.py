"""Parallel scenario sweeps.

Scenario runs are single-process deterministic and fully independent of
one another (each builds its own simulator from its own seed), which makes
a sweep embarrassingly parallel: farming scenarios out to worker processes
changes *wall-clock only* -- every per-scenario fingerprint is identical to
the serial runner's, and ``tests/test_fuzz.py`` pins that equivalence.

The unit that crosses process boundaries is :class:`SweepOutcome`, a small
picklable digest of a :class:`~repro.scenarios.runner.ScenarioResult`:
clusters, simulators and histories hold closures and megabytes of state, so
workers summarise before returning.  Anything that needs the full result
(replica poking, history analysis) should run the scenario in-process via
:class:`~repro.scenarios.runner.ScenarioRunner` instead.

Example::

    from repro.scenarios import all_scenarios
    from repro.scenarios.sweep import sweep

    outcomes = sweep(all_scenarios().values(), parallel=8)
    assert all(o.ok for o in outcomes)

The CLI exposes the same thing as ``python -m repro.scenarios --all
--parallel 8``, and the fuzz fleet driver (:mod:`repro.fuzz.fleet`) reuses
the pool helpers for its seed sweeps.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import Scenario


@dataclass(frozen=True)
class SweepOutcome:
    """Picklable summary of one scenario run.

    ``violations`` keeps (checker, message) pairs so callers -- the CLI,
    the fuzz fleet, tests -- can both print the evidence and reason about
    *which* checker family fired without re-running the scenario.
    """

    name: str
    ok: bool
    fingerprint: str
    completed_requests: int
    events_processed: int
    virtual_duration: float
    violations: Tuple[Tuple[str, str], ...] = ()
    events_fired: Tuple[str, ...] = ()

    @property
    def checkers_violated(self) -> Tuple[str, ...]:
        """Sorted, de-duplicated checker names that reported violations."""
        return tuple(sorted({checker for checker, _ in self.violations}))

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"{self.name}: {status}, "
            f"{self.completed_requests} ops completed, "
            f"{self.events_processed} sim events, "
            f"{len(self.events_fired)} faults fired"
        )


def run_outcome(scenario: Scenario) -> SweepOutcome:
    """Run one scenario and summarise it (the worker-process entry point)."""
    result = ScenarioRunner(scenario).run()
    return SweepOutcome(
        name=scenario.name,
        ok=result.ok,
        fingerprint=result.fingerprint(),
        completed_requests=result.completed_requests,
        events_processed=result.events_processed,
        virtual_duration=result.virtual_duration,
        violations=tuple((v.checker, str(v)) for v in result.violations),
        events_fired=tuple(result.events_fired),
    )


def default_workers() -> int:
    """Worker count when the caller says "parallel" without a number."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without CPU affinity (macOS)
        return max(1, os.cpu_count() or 1)


def pool_context() -> multiprocessing.context.BaseContext:
    """Fork when available (cheap, inherits the imported tree), else spawn.

    Everything shipped to workers (:class:`Scenario`, :class:`SweepOutcome`
    and the module-level worker functions) is picklable, so both start
    methods produce identical results.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def sweep(
    scenarios: Iterable[Scenario],
    parallel: Optional[int] = None,
) -> List[SweepOutcome]:
    """Run scenarios, optionally across worker processes.

    ``parallel=None`` or ``1`` runs in-process (the historical serial
    path); ``parallel=N`` uses an ``N``-worker pool; ``parallel=0`` means
    "one worker per available core".  Outcomes come back in input order
    regardless of which worker finished first, so output is deterministic
    either way.
    """
    scenarios = list(scenarios)
    workers = default_workers() if parallel == 0 else (parallel or 1)
    workers = min(workers, len(scenarios)) if scenarios else 1
    if workers <= 1:
        return [run_outcome(scenario) for scenario in scenarios]
    with pool_context().Pool(processes=workers) as pool:
        # chunksize=1: scenario costs vary by two orders of magnitude, so
        # batching would serialise a cheap scenario behind a 25-node one.
        return pool.map(run_outcome, scenarios, chunksize=1)
