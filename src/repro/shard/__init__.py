"""Sharded multi-group consensus over a shared node set.

One consensus group tops out at one leader's throughput; production
systems (Spanner-, CockroachDB-style) run thousands of consensus groups
over a shared set of machines.  This package provides the pieces that turn
the single-group simulator into a sharded deployment:

* :mod:`repro.shard.addressing` -- the endpoint-id scheme under which one
  physical node hosts one replica *per shard*, plus the latency wrapper
  that keeps WAN/LAN delays a property of the physical machines.
* :mod:`repro.shard.router` -- the deterministic key-range router clients
  use to aim each command at the consensus group owning its key, and the
  round-robin leader placement that spreads group leaders across nodes.

The cluster-side hosting lives in :mod:`repro.cluster.node`
(:class:`~repro.cluster.node.ShardReplicaHost`) and is wired by
``ClusterBuilder.shards(n)``; scenarios opt in with ``Scenario(shards=N)``.
Sharding defaults off everywhere, and the unsharded code paths are
bit-for-bit unchanged (see ``tests/test_golden_fingerprints.py``).
"""

from repro.shard.addressing import (
    SHARD_ENDPOINT_STRIDE,
    ShardAwareLatency,
    physical_node,
    shard_endpoint,
    shard_of_endpoint,
)
from repro.shard.router import ShardMap, ShardRouter, round_robin_leaders

__all__ = [
    "SHARD_ENDPOINT_STRIDE",
    "ShardAwareLatency",
    "ShardMap",
    "ShardRouter",
    "physical_node",
    "round_robin_leaders",
    "shard_endpoint",
    "shard_of_endpoint",
]
