"""Endpoint addressing for multi-shard hosting.

Every consensus group ("shard") gets its own endpoint-id namespace: the
replica instance for shard ``s`` hosted on physical node ``n`` is network
endpoint ``s * SHARD_ENDPOINT_STRIDE + n``.  Shard 0 therefore uses the raw
physical node ids -- which is exactly the unsharded deployment, so the
single-group code paths are untouched by construction.

The stride is far above both node ids (tens to hundreds) and benchmark
client ids (``CLIENT_ID_BASE`` = 1000), so the three id spaces never
collide; the builder validates node ids against the stride when sharding is
enabled.

Network latency is a property of the *physical* machines, not of the
replica instances they host: two co-hosted shard instances are one
``localhost`` apart, and a WAN link between two machines is equally wide
for every group that crosses it.  :class:`ShardAwareLatency` wraps the
topology's latency model and folds shard endpoints back onto their
physical node before every delay draw.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.latency import LatencyModel

#: Endpoint-id stride between consecutive shards' namespaces.  Physical
#: node ids and client ids (``CLIENT_ID_BASE`` = 1000) both stay below it.
SHARD_ENDPOINT_STRIDE = 1_000_000


def shard_endpoint(shard: int, node_id: int) -> int:
    """The endpoint id of shard ``shard``'s replica hosted on ``node_id``."""
    return shard * SHARD_ENDPOINT_STRIDE + node_id


def physical_node(endpoint_id: int) -> int:
    """The physical node hosting ``endpoint_id`` (identity for shard 0)."""
    return endpoint_id % SHARD_ENDPOINT_STRIDE


def shard_of_endpoint(endpoint_id: int) -> int:
    """Which shard's namespace an endpoint id belongs to."""
    return endpoint_id // SHARD_ENDPOINT_STRIDE


@dataclass(frozen=True)
class ShardAwareLatency(LatencyModel):
    """Delegates to a base model after mapping endpoints to physical nodes.

    Client ids sit below the stride and pass through unchanged, so the base
    model's existing "clients are co-located" behaviour is preserved.
    """

    base: LatencyModel

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return self.base.delay(
            src % SHARD_ENDPOINT_STRIDE, dst % SHARD_ENDPOINT_STRIDE, rng
        )

    def describe(self) -> str:
        return f"ShardAware({self.base.describe()})"
