"""Deterministic key->shard routing and leader placement.

The workload layer generates fixed-width Paxi-style keys (``k0042``), so the
router partitions the *index space* ``[0, num_keys)`` into contiguous ranges
-- shard ``i`` owns ``[i*K//S, (i+1)*K//S)`` -- and recovers the index by
parsing the digits back out of the key.  Keys that do not follow the
``k<digits>`` convention fall back to ``zlib.crc32`` (never ``hash()``,
whose salt would break run-to-run determinism) so the mapping stays total.

Every mapping here is pure arithmetic over immutable tuples: no dict or set
iteration, no RNG, no ambient state.  Two processes with the same
``(num_shards, num_keys)`` agree on every key, which is what lets the
per-key linearizability checker treat a sharded run exactly like an
unsharded one.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.errors import ConfigurationError
from repro.shard.addressing import shard_endpoint


@dataclass(frozen=True)
class ShardMap:
    """Contiguous key-range partition of the index space ``[0, num_keys)``.

    Shard ``i`` owns indices ``[i*num_keys//num_shards,
    (i+1)*num_keys//num_shards)`` -- the ranges tile the keyspace exactly
    (no gaps, no overlaps) and differ in size by at most one key.
    """

    num_shards: int
    num_keys: int
    _boundaries: Tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {self.num_keys}")
        if not 1 <= self.num_shards <= self.num_keys:
            raise ConfigurationError(
                f"num_shards must be in [1, num_keys={self.num_keys}], "
                f"got {self.num_shards}"
            )
        object.__setattr__(
            self,
            "_boundaries",
            tuple(i * self.num_keys // self.num_shards for i in range(self.num_shards + 1)),
        )

    def shard_of_index(self, index: int) -> int:
        """The shard owning key index ``index`` (indices wrap modulo keyspace)."""
        return bisect_right(self._boundaries, index % self.num_keys) - 1

    def shard_of_key(self, key: str) -> int:
        """The shard owning ``key``; total over arbitrary strings."""
        if len(key) >= 2 and key[0] == "k" and key[1:].isdigit():
            return self.shard_of_index(int(key[1:]))
        return zlib.crc32(key.encode("utf-8")) % self.num_shards

    def range_of(self, shard: int) -> Tuple[int, int]:
        """Half-open index range ``[lo, hi)`` owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        return self._boundaries[shard], self._boundaries[shard + 1]


def round_robin_leaders(num_shards: int, node_ids: Sequence[int]) -> Tuple[int, ...]:
    """Initial leader endpoint per shard, spread round-robin across nodes.

    Shard ``s`` elects its replica hosted on ``node_ids[s % len(node_ids)]``,
    so with >= ``len(node_ids)`` shards every physical node carries an equal
    (+/-1) share of the leaders -- the load-spreading that makes the
    multi-group ops/sec curve climb instead of re-bottlenecking one machine.
    """
    if not node_ids:
        raise ConfigurationError("round_robin_leaders needs at least one node")
    ids = tuple(node_ids)
    return tuple(shard_endpoint(s, ids[s % len(ids)]) for s in range(num_shards))


class ShardRouter:
    """What a workload client needs to aim a command at the right group.

    Holds the key-range map plus, per shard, the group's replica endpoints
    and its initial leader endpoint.  Instances are immutable after
    construction; clients keep their own mutable leader *hints* on top.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        groups: Sequence[Sequence[int]],
        leaders: Sequence[int],
    ) -> None:
        if len(groups) != shard_map.num_shards:
            raise ConfigurationError(
                f"expected {shard_map.num_shards} shard groups, got {len(groups)}"
            )
        if len(leaders) != shard_map.num_shards:
            raise ConfigurationError(
                f"expected {shard_map.num_shards} shard leaders, got {len(leaders)}"
            )
        self._map = shard_map
        self._groups: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(group) for group in groups
        )
        self._leaders: Tuple[int, ...] = tuple(leaders)
        for shard, (group, leader) in enumerate(zip(self._groups, self._leaders)):
            if not group:
                raise ConfigurationError(f"shard {shard} has an empty replica group")
            if leader not in group:
                raise ConfigurationError(
                    f"shard {shard} leader endpoint {leader} is not in its group"
                )

    @property
    def num_shards(self) -> int:
        return self._map.num_shards

    @property
    def shard_map(self) -> ShardMap:
        return self._map

    @property
    def leaders(self) -> Tuple[int, ...]:
        return self._leaders

    def shard_of_key(self, key: str) -> int:
        return self._map.shard_of_key(key)

    def group_of(self, shard: int) -> Tuple[int, ...]:
        return self._groups[shard]

    def leader_of(self, shard: int) -> int:
        return self._leaders[shard]
