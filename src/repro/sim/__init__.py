"""Deterministic discrete-event simulation engine.

The simulator is the substrate that stands in for the paper's AWS/Paxi
testbed.  It provides a virtual clock, an event queue, named deterministic
random-number streams, cancellable timers and a metrics registry.  Everything
above it (network, nodes, protocols, clients) is written against this engine,
which makes every experiment in ``benchmarks/`` fully reproducible from a
seed.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.engine import Simulator, TimerHandle
from repro.sim.rng import RandomStreams
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "TimerHandle",
    "RandomStreams",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
]
