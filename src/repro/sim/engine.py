"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock, the event queue, the random
streams and the metrics registry.  Components schedule work with
:meth:`Simulator.schedule` (relative delay) or :meth:`Simulator.schedule_at`
(absolute time) and may cancel it via the returned :class:`TimerHandle`.
Fire-and-forget hot paths (the network fabric, the node CPU queue) use
:meth:`Simulator.post_at`, which skips the handle allocation.

The engine is single-threaded and runs events strictly in
``(time, priority, insertion order)`` order, which makes every run with the
same seed bit-for-bit reproducible.  The main loop in :meth:`Simulator.run`
is deliberately inlined -- it pops heap entries directly instead of going
through ``peek_time()`` + ``step()``, which would traverse the heap top
twice per event.  Any change here must keep the pop order identical; the
golden-fingerprint tests (``tests/test_golden_fingerprints.py``) are the
tripwire.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RandomStreams


class TimerHandle:
    """A cancellable handle for a scheduled callback."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Virtual time at which the callback is due to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the callback if it has not fired yet."""
        self._event.cancel()


class Simulator:
    """Single-threaded deterministic discrete-event simulator."""

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._streams = RandomStreams(seed)
        self._metrics = MetricsRegistry(clock=lambda: self._now)
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for progress/debugging)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------ rng / metrics
    @property
    def random(self) -> RandomStreams:
        return self._streams

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    # ------------------------------------------------------------------ scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return TimerHandle(self._queue.push(self._now + delay, callback, args, priority))

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` at an absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, which is in the past (now={self._now!r})"
            )
        return TimerHandle(self._queue.push(time, callback, args, priority))

    def post_at(self, time: float, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Hot-path scheduling: no TimerHandle, no Event, no validation.

        For engine-internal fire-and-forget work (message delivery, CPU-queue
        completions) whose times are derived from ``now`` plus a non-negative
        cost and whose events are never cancelled.  Anything user-facing or
        cancellable should use :meth:`schedule` / :meth:`schedule_at`.  The
        queue push is inlined (see ``EventQueue.push_call``) because this is
        the single most-called scheduling entry point.
        """
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        heappush(queue._heap, (time, 0, seq, callback, args))
        queue._live += 1

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Schedule ``callback`` at the current time (after already-queued events)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------ running
    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue produced an event in the past")
        self._now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        queue = self._queue
        heap = queue._heap
        # The hot loop allocates heavily (envelopes, heap entries, messages)
        # but almost entirely acyclically, so reference counting reclaims it;
        # the cyclic collector only adds generation-scan pauses.  Suspend it
        # for the duration of the run and restore the caller's setting after.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            executed = 0
            budget = float("inf") if max_events is None else max_events
            horizon = float("inf") if until is None else until
            # Inlined pop->fire loop: one heap traversal per event, cancelled
            # entries discarded as they surface.  `heap` is bound once; the
            # queue clears its list in place, so the binding stays valid even
            # across a mid-run reset().
            while heap:
                if executed >= budget:
                    break
                entry = heap[0]
                args = entry[4]
                if args is not None:
                    # Fire-and-forget call entry: (time, 0, seq, cb, args).
                    time = entry[0]
                    if time > horizon:
                        self._now = until
                        break
                    heappop(heap)
                    queue._live -= 1
                    self._now = time
                    self._events_processed += 1
                    entry[3](*args)
                    executed += 1
                    continue
                event = entry[3]
                if event.cancelled:
                    heappop(heap)
                    continue
                time = entry[0]
                if time > horizon:
                    self._now = until
                    break
                heappop(heap)
                event._queue = None
                queue._live -= 1
                self._now = time
                self._events_processed += 1
                event.callback(*event.args)
                executed += 1
            else:
                queue._live = 0
            if until is not None and self._now < until and queue.peek_time() is None:
                self._now = until
            return self._now
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def run_until(self, until: float) -> float:
        """Convenience wrapper for :meth:`run` with a time bound."""
        return self.run(until=until)

    def reset(self, seed: Optional[int] = None) -> None:
        """Clear the queue and clock; optionally reseed the random streams."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0
        if seed is not None:
            self._streams = RandomStreams(seed)
        self._metrics = MetricsRegistry(clock=lambda: self._now)
