"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock, the event queue, the random
streams and the metrics registry.  Components schedule work with
:meth:`Simulator.schedule` (relative delay) or :meth:`Simulator.schedule_at`
(absolute time) and may cancel it via the returned :class:`TimerHandle`.

The engine is single-threaded and runs events strictly in
``(time, priority, insertion order)`` order, which makes every run with the
same seed bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RandomStreams


class TimerHandle:
    """A cancellable handle for a scheduled callback."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: EventQueue) -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """Virtual time at which the callback is due to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the callback if it has not fired yet."""
        self._queue.cancel(self._event)


class Simulator:
    """Single-threaded deterministic discrete-event simulator."""

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._streams = RandomStreams(seed)
        self._metrics = MetricsRegistry(clock=lambda: self._now)
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for progress/debugging)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------ rng / metrics
    @property
    def random(self) -> RandomStreams:
        return self._streams

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    # ------------------------------------------------------------------ scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        event = self._queue.push(self._now + delay, callback, args, priority)
        return TimerHandle(event, self._queue)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` at an absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, which is in the past (now={self._now!r})"
            )
        event = self._queue.push(time, callback, args, priority)
        return TimerHandle(event, self._queue)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Schedule ``callback`` at the current time (after already-queued events)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------ running
    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue produced an event in the past")
        self._now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            executed = 0
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
            if until is not None and self._now < until and self._queue.peek_time() is None:
                self._now = until
            return self._now
        finally:
            self._running = False

    def run_until(self, until: float) -> float:
        """Convenience wrapper for :meth:`run` with a time bound."""
        return self.run(until=until)

    def reset(self, seed: Optional[int] = None) -> None:
        """Clear the queue and clock; optionally reseed the random streams."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0
        if seed is not None:
            self._streams = RandomStreams(seed)
        self._metrics = MetricsRegistry(clock=lambda: self._now)
