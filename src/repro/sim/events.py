"""Event and event-queue primitives for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
a monotonically increasing tiebreaker which guarantees FIFO ordering among
events scheduled for the same instant, making simulations fully deterministic.

Hot-path design (this queue is the single hottest structure in the repo --
every message send, delivery, CPU reservation and timer goes through it):

* :class:`Event` is a plain ``__slots__`` class, not a dataclass.  The heap
  stores ``(time, priority, seq, payload, args)`` tuples so orderings
  resolve via C-level tuple comparison instead of a Python-level generated
  ``__lt__`` (which used to account for ~15% of a scenario run on its own);
  hot fire-and-forget work is stored as a bare callback, skipping the Event
  allocation entirely (see :class:`EventQueue`).
* Cancellation is unified: :meth:`Event.cancel` is the *only* cancel path
  and keeps the queue's live-event count exact.  ``queue.cancel(event)`` and
  ``TimerHandle.cancel()`` both delegate to it, so calling any of the three
  is equivalent (this used to be a bookkeeping footgun where a direct
  ``Event.cancel()`` silently skipped the ``_live`` decrement).
* Time validation happens once at the engine boundary
  (:meth:`repro.sim.engine.Simulator.schedule` / ``schedule_at``), not per
  push: the queue trusts its callers and stays branch-lean.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A single scheduled callback in the simulation.

    Attributes:
        time: Virtual time (seconds) at which the event fires.
        priority: Lower values fire first among events at the same time.
        seq: Monotonic tiebreaker assigned by the queue.
        callback: Callable invoked when the event fires.
        args: Positional arguments passed to the callback.
        cancelled: When True, the engine skips the event.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        This is the canonical cancel path: it also keeps the owning queue's
        live-event count exact, so ``len(queue)`` / ``pending_events`` never
        drift no matter which cancel entry point callers use.  Idempotent,
        and harmless on events that already fired or were cleared.
        """
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                self._queue = None
                queue._live -= 1

    def fire(self) -> Any:
        """Invoke the event callback (the engine calls this)."""
        return self.callback(*self.args)


class EventQueue:
    """A binary-heap priority queue of scheduled callbacks.

    The heap holds uniform ``(time, priority, seq, payload, args)`` entries
    in two flavours:

    * ``(time, priority, seq, Event, None)`` -- cancellable events created
      by :meth:`push`; cancelled ones are removed lazily when they surface.
    * ``(time, 0, seq, callback, args)`` -- fire-and-forget entries created
      by :meth:`push_call` for the hot paths (message delivery, CPU-queue
      completions) that never cancel, skipping the :class:`Event`
      allocation entirely.

    Entries order correctly under tuple comparison because ``seq`` is
    unique: comparison always resolves before reaching the payload field.
    The flavour is distinguished by ``entry[4] is None`` (cheaper per event
    than a ``len()`` call in the engine's inner loop).

    CANONICAL ENTRY LAYOUT: the call-entry push here is also hand-inlined
    at the three hottest scheduling sites -- ``Simulator.post_at``,
    ``SimNode.send``/``SimNode.deliver`` (cluster/node.py) and
    ``SimNetwork.send`` (net/network.py).  Changing the entry shape means
    updating every one of them; grep for "push_call" to find the list.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at virtual ``time`` and return the event.

        Time validation lives at the engine boundary, not here; the queue
        accepts whatever the engine already vetted.
        """
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, self)
        heappush(self._heap, (time, priority, seq, event, None))
        self._live += 1
        return event

    def push_call(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> None:
        """Schedule a fire-and-forget callback (priority 0, not cancellable).

        Hand-inlined at the hot sites listed in the class docstring; keep
        them in sync with any change here.
        """
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, 0, seq, callback, args))
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or None if the queue is drained.

        Fire-and-forget entries are wrapped in a fresh :class:`Event` so
        callers see a uniform interface (this path is only taken by
        ``Simulator.step``; the inlined run loop consumes entries directly).
        """
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if entry[4] is not None:
                self._live -= 1
                return Event(entry[0], 0, entry[2], entry[3], entry[4])
            event = entry[3]
            if event.cancelled:
                continue
            event._queue = None
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[4] is None and entry[3].cancelled:
                heappop(heap)
                continue
            return entry[0]
        self._live = 0
        return None

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancel()

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            if entry[4] is None:
                entry[3]._queue = None
        self._heap.clear()
        self._live = 0
