"""Event and event-queue primitives for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
a monotonically increasing tiebreaker which guarantees FIFO ordering among
events scheduled for the same instant, making simulations fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A single scheduled callback in the simulation.

    Attributes:
        time: Virtual time (seconds) at which the event fires.
        priority: Lower values fire first among events at the same time.
        seq: Monotonic tiebreaker assigned by the queue.
        callback: Callable invoked when the event fires.
        args: Positional arguments passed to the callback.
        cancelled: When True, the engine skips the event.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def fire(self) -> Any:
        """Invoke the event callback (the engine calls this)."""
        return self.callback(*self.args)


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at virtual ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time!r}")
        event = Event(time=time, priority=priority, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or None if the queue is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            self._live = 0
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        if not event.cancelled:
            event.cancel()
            self._live = max(0, self._live - 1)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
