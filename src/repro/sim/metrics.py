"""Lightweight metrics used by the simulator, nodes, protocols and clients.

The registry deliberately mirrors what the Paxi benchmark records: message
counters per node, latency histograms per client, and throughput time-series
sampled over fixed intervals (the paper's Figure 13 samples throughput over
one-second windows).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing counter.

    ``increment`` is branch-free: it is called for every message sent,
    delivered and counted per-type, so it must stay a single add.  The
    monotonicity contract (non-negative amounts) is the caller's to honour;
    every in-repo call site passes a count or a byte size.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A value that can move up and down (e.g. queue depth)."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.max_value = max(self.max_value, value)

    def add(self, amount: float) -> None:
        self.set(self.value + amount)


class Histogram:
    """An exact histogram of observations with percentile queries.

    Observations are recorded with a plain append (O(1)) and sorted lazily
    the first time a read needs order (min/max/percentiles); the sort result
    is reused until the next observation.  The previous implementation kept
    the list sorted on every ``observe`` via ``insort``, which is an O(n)
    memmove per sample -- O(n^2) per run over the tens of thousands of
    latency samples a scenario records, all to serve a handful of end-of-run
    percentile reads.  Exact (non-approximated) percentiles are preserved.
    """

    __slots__ = ("name", "_values", "_sum", "_unsorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []
        self._sum = 0.0
        self._unsorted = False

    def observe(self, value: float) -> None:
        self._values.append(value)
        self._sum += value
        self._unsorted = True

    def _sorted_values(self) -> List[float]:
        if self._unsorted:
            self._values.sort()
            self._unsorted = False
        return self._values

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        return self._sorted_values()[0] if self._values else 0.0

    @property
    def max(self) -> float:
        return self._sorted_values()[-1] if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Return the ``p``-th percentile (0 <= p <= 100) by linear interpolation."""
        if not self._values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be within [0, 100], got {p!r}")
        values = self._sorted_values()
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return values[int(rank)]
        low_value, high_value = values[low], values[high]
        if low_value == high_value:
            return low_value
        fraction = rank - low
        interpolated = low_value * (1.0 - fraction) + high_value * fraction
        # Clamp to the neighbouring samples: interpolation may stray by one ulp.
        return min(max(interpolated, low_value), high_value)

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics as a plain dictionary."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class TimeSeries:
    """Event counts bucketed into fixed-width windows of virtual time."""

    __slots__ = ("name", "interval", "_buckets")

    def __init__(self, name: str, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.name = name
        self.interval = interval
        self._buckets: Dict[int, float] = {}

    def record(self, time: float, amount: float = 1.0) -> None:
        bucket = int(time // self.interval)
        self._buckets[bucket] = self._buckets.get(bucket, 0.0) + amount

    def series(self, start: float = 0.0, end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Return ``(window_start_time, count_per_window)`` pairs covering [start, end)."""
        if not self._buckets and end is None:
            return []
        last_bucket = max(self._buckets) if self._buckets else 0
        end_bucket = int(end // self.interval) if end is not None else last_bucket + 1
        start_bucket = int(start // self.interval)
        return [
            (bucket * self.interval, self._buckets.get(bucket, 0.0))
            for bucket in range(start_bucket, end_bucket)
        ]

    def rates(self, start: float = 0.0, end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Like :meth:`series`, but values are per-second rates."""
        return [(t, count / self.interval) for t, count in self.series(start, end)]


class MetricsRegistry:
    """A named collection of counters, gauges, histograms and time-series.

    The getters are single-dict-lookup on the hit path: hot callers cache the
    returned metric object, but enough call sites resolve by name per event
    (protocol ``count()``, client latency observes) that the lookup itself
    must stay cheap.
    """

    __slots__ = ("_clock", "_counters", "_gauges", "_histograms", "_series")

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    @property
    def now(self) -> float:
        return self._clock()

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def timeseries(self, name: str, interval: float = 1.0) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name, interval)
        return series

    def counters(self) -> Dict[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        return {name: h.snapshot() for name, h in sorted(self._histograms.items())}

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly dump of everything recorded so far."""
        return {
            "counters": self.counters(),
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": self.histograms(),
        }


# --------------------------------------------------------------------------
# Communication-cost aggregation
#
# The network and the nodes record per-node directional traffic counters
# (``node.<id>.messages_in/out`` and ``node.<id>.bytes_in/out``) plus
# per-message-type counters (``net.sent.<Kind>``, ``net.sent_bytes.<Kind>``).
# These helpers fold a counter dump into the per-node / bottleneck views the
# paper's communication-cost tables are built from.

#: The directional traffic fields recorded per node.
TRAFFIC_FIELDS = ("messages_in", "messages_out", "bytes_in", "bytes_out")


def node_traffic(counters: Dict[str, float]) -> Dict[int, Dict[str, float]]:
    """Per-node traffic from a counter dump.

    Returns ``{node_id: {messages_in, messages_out, bytes_in, bytes_out,
    messages_total, bytes_total}}``, parsed from the ``node.<id>.*``
    counters recorded by :class:`repro.cluster.node.SimNode`.
    """
    traffic: Dict[int, Dict[str, float]] = {}
    for name, value in sorted(counters.items()):
        if not name.startswith("node."):
            continue
        _, node_id_text, field = name.split(".", 2)
        if field not in TRAFFIC_FIELDS:
            continue
        traffic.setdefault(int(node_id_text), dict.fromkeys(TRAFFIC_FIELDS, 0.0))[field] = value
    for stats in traffic.values():  # lint: ok(no-unordered-iteration) independent per-node in-place update; no cross-node state
        stats["messages_total"] = stats["messages_in"] + stats["messages_out"]
        stats["bytes_total"] = stats["bytes_in"] + stats["bytes_out"]
    return traffic


def bottleneck_node(counters: Dict[str, float]) -> Tuple[Optional[int], Dict[str, float]]:
    """The node touching the most messages, with its traffic breakdown.

    "Touches" is sends plus receives -- the quantity the paper's message-load
    tables bound at the leader, and the one the fan-out overlays exist to
    shrink.  Returns ``(None, {})`` when no per-node counters exist yet.
    """
    traffic = node_traffic(counters)
    if not traffic:
        return None, {}
    node_id = max(traffic, key=lambda nid: (traffic[nid]["messages_total"], -nid))
    return node_id, traffic[node_id]


def sent_by_kind(counters: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    """Per-message-type ``{kind: {count, bytes}}`` from a counter dump."""
    by_kind: Dict[str, Dict[str, float]] = {}
    for name, value in sorted(counters.items()):
        if name.startswith("net.sent_bytes."):
            kind = name[len("net.sent_bytes."):]
            by_kind.setdefault(kind, {"count": 0.0, "bytes": 0.0})["bytes"] = value
        elif name.startswith("net.sent."):
            kind = name[len("net.sent."):]
            by_kind.setdefault(kind, {"count": 0.0, "bytes": 0.0})["count"] = value
    return by_kind


# --------------------------------------------------------------------------
# Per-shard aggregation
#
# Sharded clusters record ``shard.<s>.requests`` / ``shard.<s>.completions``
# from the routing clients (one request per issued command, one completion
# per successful reply; retries re-use the original request's count).  The
# physical ``node.<id>.*`` counters above deliberately stay machine-level --
# co-hosted shard instances bill traffic to their host -- so these helpers
# are the *logical* per-group view that sits alongside them.


def shard_traffic(counters: Dict[str, float]) -> Dict[int, Dict[str, float]]:
    """Per-shard workload traffic from a counter dump.

    Returns ``{shard: {requests, completions}}`` parsed from the
    ``shard.<s>.*`` counters; empty for unsharded runs (which record none).
    """
    traffic: Dict[int, Dict[str, float]] = {}
    for name, value in sorted(counters.items()):
        if not name.startswith("shard."):
            continue
        _, shard_text, field = name.split(".", 2)
        if field not in ("requests", "completions"):
            continue
        traffic.setdefault(int(shard_text), {"requests": 0.0, "completions": 0.0})[field] = value
    return traffic


def shard_summary(counters: Dict[str, float]) -> Dict[str, float]:
    """Cluster-wide totals plus balance statistics across shards.

    ``hottest_share`` is the hottest shard's fraction of all completions
    (1/num_shards = perfectly balanced, 1.0 = one shard took everything) --
    the single number that tells a scaling benchmark whether its win came
    from real load-spreading or from one group doing all the work.
    """
    traffic = shard_traffic(counters)
    if not traffic:
        return {}
    completions = [stats["completions"] for _, stats in sorted(traffic.items())]
    total = sum(completions)
    return {
        "num_shards": float(len(traffic)),
        "requests_total": sum(stats["requests"] for stats in traffic.values()),
        "completions_total": total,
        "hottest_shard_completions": max(completions),
        "hottest_share": (max(completions) / total) if total else 0.0,
    }
