"""Named deterministic random-number streams.

Different parts of a simulation (network latency jitter, relay selection,
workload key choice, fault injection) each get their own ``random.Random``
stream derived from the master seed.  Keeping the streams separate means that
changing how many random draws one component makes does not perturb the
others, which keeps experiments comparable across configurations.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of named, independently seeded ``random.Random`` instances."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self._master_seed}:{name}".encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(seed)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Create a child factory whose master seed is derived from ``name``."""
        digest = hashlib.sha256(f"{self._master_seed}:fork:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def reset(self) -> None:
        """Forget all streams so they are re-created from the master seed."""
        self._streams.clear()
