"""Replicated state machine substrate: commands, key-value store, log, snapshots.

This is the in-memory key-value store that the Paxi benchmark (and therefore
the paper's evaluation) replicates.  All three protocols (Multi-Paxos,
PigPaxos, EPaxos) drive the same :class:`~repro.statemachine.kvstore.KVStore`
through the same :class:`~repro.statemachine.command.Command` type.
"""

from repro.statemachine.command import Command, CommandResult, OpType
from repro.statemachine.kvstore import KVStore
from repro.statemachine.log import LogEntry, ReplicatedLog
from repro.statemachine.sessions import ClientSessionCache
from repro.statemachine.snapshot import Snapshot

__all__ = [
    "ClientSessionCache",
    "Command",
    "CommandResult",
    "OpType",
    "KVStore",
    "LogEntry",
    "ReplicatedLog",
    "Snapshot",
]
