"""Client commands and their results.

The paper's workload is a key-value workload: 1000 distinct 8-byte keys, with
8-byte values by default and values up to 1280 bytes in the payload-size
experiment (Figure 12).  Commands carry an explicit ``payload_size`` so the
wire-size model can charge for large values without materialising them.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional


class OpType(enum.Enum):
    """Operation type of a command."""

    GET = "get"
    PUT = "put"
    DELETE = "delete"

    @property
    def is_read(self) -> bool:
        return self is OpType.GET

    @property
    def is_write(self) -> bool:
        return self is not OpType.GET


_command_uids = itertools.count(1)


class Command:
    """A single key-value operation issued by a client.

    A plain slotted class (one is allocated per client request, plus the
    simulator passes it by reference through every replica); immutable by
    convention, like the message types that carry it.  Equality is object
    identity: ``uid`` is globally unique, so the old dataclass-generated
    value equality (which included ``uid``) never compared two distinct
    objects equal either -- compare ``uid`` explicitly when matching
    commands across replicas, as the checkers do.

    Attributes:
        op: Operation type.
        key: Key operated on.
        value: Value written (PUT only); may be None when only the size matters.
        payload_size: Number of value bytes carried on the wire.  For PUTs this
            is the value size; reads carry no payload.
        client_id: Endpoint id of the issuing client.
        request_id: Client-local sequence number, unique per client.
        uid: Globally unique command id (assigned automatically).
    """

    __slots__ = ("op", "key", "value", "payload_size", "client_id", "request_id", "uid")

    def __init__(
        self,
        op: "OpType",
        key: str,
        value: Optional[str] = None,
        payload_size: int = 8,
        client_id: int = -1,
        request_id: int = 0,
        uid: Optional[int] = None,
    ) -> None:
        if payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        self.op = op
        self.key = key
        self.value = value
        self.payload_size = payload_size
        self.client_id = client_id
        self.request_id = request_id
        self.uid = next(_command_uids) if uid is None else uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Command({self.op.value} {self.key!r} client={self.client_id} "
            f"req={self.request_id} uid={self.uid})"
        )

    @property
    def is_read(self) -> bool:
        return self.op.is_read

    @property
    def is_write(self) -> bool:
        return self.op.is_write

    def payload_bytes(self) -> int:
        """Bytes of user data this command adds to a message carrying it."""
        key_bytes = len(self.key.encode("utf-8"))
        if self.op is OpType.GET:
            return key_bytes
        return key_bytes + self.payload_size

    def conflicts_with(self, other) -> bool:
        """EPaxos-style conflict: same key and at least one of them writes."""
        if type(other) is CommandBatch:
            return other.conflicts_with(self)
        if self.key != other.key:
            return False
        return self.is_write or other.is_write


class CommandResult:
    """Outcome of applying a command to the state machine.

    A plain slotted class (one is allocated per applied command per
    replica); immutable by convention.  Equality is object identity;
    compare ``command_uid`` (and fields) explicitly when needed.
    """

    __slots__ = ("command_uid", "success", "value", "existed")

    def __init__(self, command_uid: int, success: bool,
                 value: Optional[str] = None, existed: bool = False) -> None:
        self.command_uid = command_uid
        self.success = success
        self.value = value
        self.existed = existed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommandResult(uid={self.command_uid} success={self.success} value={self.value!r})"

    def payload_bytes(self) -> int:
        return len(self.value.encode("utf-8")) if self.value else 0


class CommandBatch:
    """An ordered group of client commands occupying one slot / instance.

    Built by a batching leader (``ProtocolConfig.batch_max_commands > 1``)
    and carried through the replication path as a single command: one
    ``P2a``/``EPreAccept``/``RelayRequest`` ships the whole batch, so the
    per-message wire header (``SizeModel.header_bytes``) and the per-message
    CPU charge are amortised over every command inside.  Execution unpacks
    the batch in order on every replica, applying each sub-command through
    the normal per-client session dedup, so at-most-once semantics and the
    linearizability checker see exactly the per-command histories they
    always did.

    Deliberately has **no** ``client_id`` / ``request_id`` / ``key``
    attributes: the per-command bookkeeping paths in the replicas detect
    plain commands via those attributes (``try/except AttributeError`` and
    ``getattr(..., None)``) and take the explicit batch-unpacking branch
    for this type instead.  Like :class:`Command`, a batch is immutable by
    convention and compared by ``uid``.

    Attributes:
        commands: The batched commands, in client-arrival order.
        uid: Globally unique id (same counter as :class:`Command`), used by
            the log agreement checks exactly like a plain command's uid.
    """

    __slots__ = ("commands", "uid")

    def __init__(self, commands, uid: Optional[int] = None) -> None:
        self.commands = tuple(commands)
        if not self.commands:
            raise ValueError("a CommandBatch needs at least one command")
        self.uid = next(_command_uids) if uid is None else uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommandBatch(n={len(self.commands)} uid={self.uid})"

    def __len__(self) -> int:
        return len(self.commands)

    @property
    def is_read(self) -> bool:
        """True only when every sub-command is a read."""
        return all(command.is_read for command in self.commands)

    @property
    def is_write(self) -> bool:
        return any(command.is_write for command in self.commands)

    def keys(self):
        """Distinct keys touched, in first-occurrence order (EPaxos deps)."""
        seen = []
        for command in self.commands:
            if command.key not in seen:
                seen.append(command.key)
        return tuple(seen)

    def payload_bytes(self) -> int:
        """Summed sub-command payloads; the shared header is priced once."""
        return sum(command.payload_bytes() for command in self.commands)

    def conflicts_with(self, other) -> bool:
        """A batch conflicts when any of its commands does."""
        if type(other) is CommandBatch:
            return any(self.conflicts_with(sub) for sub in other.commands)
        return any(sub.conflicts_with(other) for sub in self.commands)


class NoOp:
    """Sentinel command used by Paxos to fill gaps when recovering slots."""

    __slots__ = ("uid",)

    def __init__(self) -> None:
        self.uid = next(_command_uids)

    @property
    def is_read(self) -> bool:
        return False

    @property
    def is_write(self) -> bool:
        return False

    def payload_bytes(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"NoOp(uid={self.uid})"
