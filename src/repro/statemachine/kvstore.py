"""In-memory key-value store applied by every replica.

Equivalent to Paxi's ``Database`` component: a dictionary keyed by string,
with GET/PUT/DELETE semantics.  Values are stored verbatim when provided;
when a command carries only a payload size (the common case in throughput
benchmarks) a compact placeholder is stored so memory stays bounded.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.statemachine.command import CommandResult, NoOp, OpType


class KVStore:
    """A deterministic in-memory key-value store."""

    def __init__(self) -> None:
        self._data: Dict[str, str] = {}
        self._applied_count = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    @property
    def applied_count(self) -> int:
        """Number of commands applied so far (NoOps included)."""
        return self._applied_count

    def get(self, key: str) -> Optional[str]:
        return self._data.get(key)

    def apply(self, command) -> CommandResult:
        """Apply a committed command and return its result."""
        self._applied_count += 1
        if type(command) is NoOp:
            return CommandResult(command_uid=command.uid, success=True)

        if command.op is OpType.GET:
            value = self._data.get(command.key)
            return CommandResult(
                command_uid=command.uid,
                success=True,
                value=value,
                existed=value is not None,
            )
        if command.op is OpType.PUT:
            existed = command.key in self._data
            stored = command.value if command.value is not None else f"<{command.payload_size}B>"
            self._data[command.key] = stored
            return CommandResult(command_uid=command.uid, success=True, existed=existed)
        if command.op is OpType.DELETE:
            existed = command.key in self._data
            self._data.pop(command.key, None)
            return CommandResult(command_uid=command.uid, success=True, existed=existed)
        return CommandResult(command_uid=command.uid, success=False)

    def items(self) -> Dict[str, str]:
        """Copy of the current contents (used by snapshots and tests)."""
        return dict(self._data)

    def restore(self, data: Dict[str, str], applied_count: int = 0) -> None:
        """Replace contents from a snapshot."""
        self._data = dict(data)
        self._applied_count = applied_count
