"""The replicated command log shared by Multi-Paxos and PigPaxos.

Each slot holds at most one accepted command together with the ballot under
which it was accepted.  The log tracks three monotone frontiers:

* the highest slot that holds any entry,
* the commit frontier (all slots committed up to and including it), and
* the execute frontier (all slots executed against the state machine).

Execution never skips a gap: a committed slot is executed only when every
earlier slot has been executed, which is what gives Paxos/PigPaxos their
linearizable total order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import StateMachineError


@dataclass(slots=True)
class LogEntry:
    """State of a single consensus slot."""

    slot: int
    ballot: Tuple[int, int]
    command: object
    committed: bool = False
    executed: bool = False


class ReplicatedLog:
    """Slot-indexed log with gap-aware in-order execution.

    ``dirty_slots`` records every slot whose entry was created, replaced or
    committed since a consumer last cleared it.  The Paxos commit-frontier
    scan uses it to re-examine only slots that could have become committable
    instead of rescanning its whole announced window per message (which was
    quadratic across a recovery gap).
    """

    def __init__(self) -> None:
        self._entries: Dict[int, LogEntry] = {}
        self._next_execute = 1
        self._max_slot = 0
        self.dirty_slots: set = set()

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, slot: int) -> bool:
        return slot in self._entries

    def get(self, slot: int) -> Optional[LogEntry]:
        return self._entries.get(slot)

    @property
    def max_slot(self) -> int:
        """Highest slot that holds an entry (0 when empty)."""
        return self._max_slot

    @property
    def next_execute_slot(self) -> int:
        """The lowest slot that has not been executed yet."""
        return self._next_execute

    @property
    def executed_count(self) -> int:
        return self._next_execute - 1

    def entries(self) -> Iterator[LogEntry]:
        for slot in sorted(self._entries):
            yield self._entries[slot]

    # ----------------------------------------------------------------- writes
    def accept(self, slot: int, ballot: Tuple[int, int], command: object) -> LogEntry:
        """Record ``command`` as accepted in ``slot`` under ``ballot``.

        A slot may be overwritten by an entry with a higher or equal ballot
        (leader re-proposal); overwriting a committed slot with a different
        command is a safety violation and raises.
        """
        if slot < 1:
            raise StateMachineError(f"slots are 1-based, got {slot}")
        existing = self._entries.get(slot)
        if existing is not None:
            if existing.committed and existing.command is not command:
                same_uid = getattr(existing.command, "uid", None) == getattr(command, "uid", object())
                if not same_uid:
                    raise StateMachineError(
                        f"attempt to overwrite committed slot {slot} with a different command"
                    )
            if ballot < existing.ballot and not existing.committed:
                # Stale accept from an older ballot: keep the newer entry.
                return existing
        entry = LogEntry(slot=slot, ballot=ballot, command=command,
                         committed=existing.committed if existing else False)
        self._entries[slot] = entry
        self.dirty_slots.add(slot)
        if slot > self._max_slot:
            self._max_slot = slot
        return entry

    def commit(self, slot: int, ballot: Tuple[int, int], command: object) -> LogEntry:
        """Mark ``slot`` committed with ``command`` (idempotent)."""
        entry = self._entries.get(slot)
        if entry is None:
            entry = self.accept(slot, ballot, command)
        elif not entry.committed:
            entry.command = command
            entry.ballot = ballot
        elif getattr(entry.command, "uid", None) != getattr(command, "uid", None):
            raise StateMachineError(f"conflicting commit for slot {slot}")
        entry.committed = True
        self.dirty_slots.add(slot)
        return entry

    def is_committed(self, slot: int) -> bool:
        entry = self._entries.get(slot)
        return entry is not None and entry.committed

    # ----------------------------------------------------------------- execute
    def executable_entries(self) -> List[LogEntry]:
        """Committed-but-unexecuted entries forming a gap-free prefix."""
        ready: List[LogEntry] = []
        slot = self._next_execute
        while True:
            entry = self._entries.get(slot)
            if entry is None or not entry.committed:
                break
            ready.append(entry)
            slot += 1
        return ready

    def execute_ready(self, apply_fn: Callable[[object], object]) -> List[Tuple[LogEntry, object]]:
        """Execute every ready entry through ``apply_fn`` and advance the frontier."""
        # Fast path: this runs after every commit-frontier advance, and most
        # of those find nothing new to execute.
        first = self._entries.get(self._next_execute)
        if first is None or not first.committed:
            return []
        executed: List[Tuple[LogEntry, object]] = []
        for entry in self.executable_entries():
            result = apply_fn(entry.command)
            entry.executed = True
            executed.append((entry, result))
            self._next_execute = entry.slot + 1
        return executed

    # ----------------------------------------------------------------- queries
    def first_gap(self) -> int:
        """Lowest slot >= 1 that holds no entry."""
        slot = 1
        while slot in self._entries:
            slot += 1
        return slot

    def uncommitted_slots(self) -> List[int]:
        return [slot for slot, entry in sorted(self._entries.items()) if not entry.committed]

    def committed_commands(self) -> List[object]:
        """Commands of committed slots, in slot order (for agreement checks)."""
        return [
            self._entries[slot].command
            for slot in sorted(self._entries)
            if self._entries[slot].committed
        ]

    def committed_prefix_uids(self) -> List[Optional[int]]:
        """uids of the gap-free committed prefix, used to compare replicas."""
        uids: List[Optional[int]] = []
        slot = 1
        while True:
            entry = self._entries.get(slot)
            if entry is None or not entry.committed:
                break
            uids.append(getattr(entry.command, "uid", None))
            slot += 1
        return uids
