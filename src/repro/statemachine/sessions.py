"""Bounded client-session result caches for at-most-once execution.

Replicas must apply each client command exactly once even when it is
committed more than once: a client that times out re-sends the *same*
command, and the retry can land in a second Paxos slot (old leader's
proposal survives recovery) or a second EPaxos instance (the retry reaches
a different opportunistic command leader).  Every replica executes the same
committed sequence, so filtering duplicates at apply time keeps all state
machines identical -- but an unbounded per-client result map grows forever
under long-lived clients (a ROADMAP open item since PR 1).

:class:`ClientSessionCache` keeps, per client, an LRU window of the most
recent ``window`` applied request ids with their results, and bounds the
number of client sessions themselves with a second LRU (``max_clients``):
a replica serving a long stream of short-lived clients drops the sessions
of clients it has not heard from longest.  A retry that arrives while its
original is still inside both windows gets the cached result back
(at-most-once preserved); entries beyond either window belong to requests
answered long ago.  Both bounds are counts, not times: closed-loop clients
have at most one request in flight and open-loop clients a handful, so
even small windows comfortably cover every retry the harness can produce.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

#: Default per-client window; far larger than any in-flight request count
#: the workload generators produce, small enough to bound memory.
DEFAULT_SESSION_WINDOW = 256

#: Default bound on concurrently remembered clients.
DEFAULT_MAX_CLIENTS = 4096


class ClientSessionCache:
    """Doubly bounded LRU of ``(session_id, request_id) -> result``.

    ``session_id`` is any hashable session identity: Multi-Paxos uses the
    client id, EPaxos a ``(client_id, key)`` pair (see the replicas for why
    the scoping differs).
    """

    def __init__(
        self,
        window: int = DEFAULT_SESSION_WINDOW,
        max_clients: int = DEFAULT_MAX_CLIENTS,
    ) -> None:
        if window < 1:
            raise ValueError(f"session window must be >= 1, got {window}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self._window = window
        self._max_clients = max_clients
        self._sessions: "OrderedDict[Hashable, OrderedDict[int, object]]" = OrderedDict()
        self.evictions = 0
        self.session_evictions = 0

    # ----------------------------------------------------------------- access
    @property
    def window(self) -> int:
        return self._window

    @property
    def max_clients(self) -> int:
        return self._max_clients

    def get(self, session_id: Hashable, request_id: int) -> Optional[object]:
        """The cached result of ``(session_id, request_id)``, or ``None``."""
        session = self._sessions.get(session_id)
        if session is None:
            return None
        self._sessions.move_to_end(session_id)
        result = session.get(request_id)
        if result is not None:
            session.move_to_end(request_id)
        return result

    def put(self, session_id: Hashable, request_id: int, result: object) -> None:
        """Record an applied command's result, evicting beyond the windows."""
        sessions = self._sessions
        session = sessions.get(session_id)
        if session is None:
            # A fresh insert already lands at the MRU end of both dicts, so
            # the explicit move_to_end calls are only needed on re-touch.
            session = sessions[session_id] = OrderedDict()
            session[request_id] = result
        else:
            sessions.move_to_end(session_id)
            if request_id in session:
                session[request_id] = result
                session.move_to_end(request_id)
            else:
                session[request_id] = result
        while len(session) > self._window:
            session.popitem(last=False)
            self.evictions += 1
        while len(sessions) > self._max_clients:
            sessions.popitem(last=False)
            self.session_evictions += 1

    # ----------------------------------------------------------------- stats
    def __len__(self) -> int:
        """Total cached entries across all clients."""
        return sum(len(session) for session in self._sessions.values())

    def client_count(self) -> int:
        return len(self._sessions)

    def session_size(self, session_id: Hashable) -> int:
        session = self._sessions.get(session_id)
        return 0 if session is None else len(session)
