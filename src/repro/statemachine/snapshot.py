"""State-machine snapshots.

Snapshots are not part of the paper's evaluation, but any practical
deployment of a Paxos-backed key-value store compacts its log; the snapshot
type is used by the recovery tests and the asyncio runtime's catch-up path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.statemachine.kvstore import KVStore


@dataclass(frozen=True)
class Snapshot:
    """An immutable copy of the store contents up to ``last_executed_slot``."""

    last_executed_slot: int
    data: Dict[str, str] = field(default_factory=dict)
    applied_count: int = 0

    @classmethod
    def capture(cls, store: KVStore, last_executed_slot: int) -> "Snapshot":
        return cls(
            last_executed_slot=last_executed_slot,
            # lint: ok(no-unordered-iteration) KVStore.items() returns a dict copy; nothing iterates here
            data=store.items(),
            applied_count=store.applied_count,
        )

    def restore_into(self, store: KVStore) -> None:
        store.restore(self.data, applied_count=self.applied_count)

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size, used when shipping snapshots over the wire."""
        return sum(len(k.encode("utf-8")) + len(v.encode("utf-8")) for k, v in self.data.items())
