"""Paxi-style benchmark workload: key distributions, specs and clients.

The paper's workload is: 1000 distinct 8-byte keys picked uniformly at
random, 8-byte values (up to 1280 bytes in the payload experiment), an even
read/write mix (write-only for the payload experiment), driven by closed-loop
clients that are provisioned so they never become the bottleneck.
"""

from repro.workload.spec import WorkloadSpec
from repro.workload.distributions import KeyDistribution, UniformKeys, ZipfianKeys, SequentialKeys
from repro.workload.generator import CommandGenerator
from repro.workload.client import ClosedLoopClient, OpenLoopClient, ClientStats

__all__ = [
    "WorkloadSpec",
    "KeyDistribution",
    "UniformKeys",
    "ZipfianKeys",
    "SequentialKeys",
    "CommandGenerator",
    "ClosedLoopClient",
    "OpenLoopClient",
    "ClientStats",
]
