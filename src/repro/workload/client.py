"""Benchmark clients.

``ClosedLoopClient`` reproduces the Paxi benchmark client: it keeps exactly
one request outstanding, measures the latency of each reply, and immediately
issues the next request.  System throughput is then swept by varying the
number of concurrent clients (that is how the latency/throughput curves in
Figures 8-11 were produced).  ``OpenLoopClient`` issues requests at a fixed
Poisson rate regardless of replies and is used by the extension benchmarks.

Clients are network endpoints with *zero* CPU cost -- the paper provisions
client machines so they are never the bottleneck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.net.message import Envelope
from repro.net.network import SimNetwork
from repro.protocol.messages import ClientReply, ClientRequest
from repro.shard.addressing import shard_of_endpoint
from repro.sim.engine import Simulator
from repro.workload.generator import CommandGenerator
from repro.workload.spec import WorkloadSpec


@dataclass
class ClientStats:
    """Per-client record of completed operations."""

    client_id: int
    completions: List[Tuple[float, float]] = field(default_factory=list)
    """(completion_time, latency_seconds) pairs, in completion order."""
    sent: int = 0
    received: int = 0
    retries: int = 0

    def latencies(self, start: float = 0.0, end: Optional[float] = None) -> List[float]:
        return [
            latency
            for completed_at, latency in self.completions
            if completed_at >= start and (end is None or completed_at <= end)
        ]


class _BaseClient:
    """Shared plumbing for simulated clients (network endpoint + generator)."""

    def __init__(
        self,
        client_id: int,
        sim: Simulator,
        network: SimNetwork,
        spec: WorkloadSpec,
        targets: Sequence[int],
        target_policy: str = "leader",
        request_timeout: float = 2.0,
        recorder=None,
        router=None,
    ) -> None:
        if not targets:
            raise WorkloadError("client needs at least one target node")
        if target_policy not in ("leader", "random"):
            raise WorkloadError(f"unknown target policy {target_policy!r}")
        self.endpoint_id = client_id
        self._sim = sim
        self._network = network
        self._targets = list(targets)
        self._target_policy = target_policy
        self._request_timeout = request_timeout
        self._rng = sim.random.stream(f"client-{client_id}")
        self._generator = CommandGenerator(spec, client_id, self._rng)
        self._leader_hint = self._targets[0]
        self._recorder = recorder
        # Sharded routing (see repro.shard.router.ShardRouter): when set,
        # every command is aimed at the consensus group owning its key, with
        # one mutable leader hint per shard.  ``None`` keeps the historical
        # single-group behaviour bit-for-bit (no extra RNG draws, no extra
        # counters).
        self._router = router
        if router is not None:
            self._shard_leader_hints = list(router.leaders)
            metrics = sim.metrics
            self._shard_requests = [
                metrics.counter(f"shard.{shard}.requests")
                for shard in range(router.num_shards)
            ]
            self._shard_completions = [
                metrics.counter(f"shard.{shard}.completions")
                for shard in range(router.num_shards)
            ]
        self.stats = ClientStats(client_id=client_id)
        network.register(self)

    # --------------------------------------------------------------- endpoint
    def is_reachable(self) -> bool:
        return True

    def deliver(self, envelope: Envelope) -> None:
        message = envelope.message
        if isinstance(message, ClientReply):
            self._on_reply(message)

    def _on_reply(self, reply: ClientReply) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # --------------------------------------------------------------- helpers
    def _pick_target(self) -> int:
        if self._target_policy == "random":
            return self._rng.choice(self._targets)
        return self._leader_hint

    def _pick_target_for(self, key: str) -> int:
        """Target for a command on ``key``: its shard's group when routed."""
        router = self._router
        if router is None:
            return self._pick_target()
        shard = router.shard_of_key(key)
        if self._target_policy == "random":
            return self._rng.choice(router.group_of(shard))
        return self._shard_leader_hints[shard]

    def _note_leader_hint(self, reply: ClientReply) -> None:
        hint = reply.leader_hint
        if hint is None:
            return
        router = self._router
        if router is None:
            if hint in self._targets:
                self._leader_hint = hint
            return
        shard = shard_of_endpoint(hint)
        if shard < router.num_shards and hint in router.group_of(shard):
            self._shard_leader_hints[shard] = hint

    def _send(self, request: ClientRequest, target: int) -> None:
        self._network.send(self.endpoint_id, target, request)
        self.stats.sent += 1

    def _record_invoke(self, command) -> None:
        if self._recorder is not None:
            self._recorder.invoke(command, self._sim.now)

    def _record_complete(self, reply: ClientReply) -> None:
        if self._recorder is not None:
            self._recorder.complete(reply, self._sim.now)


class ClosedLoopClient(_BaseClient):
    """One-outstanding-request client (the Paxi benchmark model)."""

    def __init__(
        self,
        client_id: int,
        sim: Simulator,
        network: SimNetwork,
        spec: WorkloadSpec,
        targets: Sequence[int],
        target_policy: str = "leader",
        request_timeout: float = 2.0,
        start_time: float = 0.0,
        max_requests: Optional[int] = None,
        recorder=None,
        router=None,
    ) -> None:
        super().__init__(client_id, sim, network, spec, targets, target_policy,
                         request_timeout, recorder=recorder, router=router)
        self._start_time = start_time
        self._max_requests = max_requests
        self._outstanding_request_id: Optional[int] = None
        self._outstanding_request: Optional[ClientRequest] = None
        self._outstanding_sent_at = 0.0
        self._outstanding_shard: Optional[int] = None
        self._timeout_timer = None
        self._stopped = False

    def start(self) -> None:
        stagger = self._rng.uniform(0.0, 0.002)
        self._sim.schedule(self._start_time + stagger, self._issue_next)

    def stop(self) -> None:
        self._stopped = True

    # --------------------------------------------------------------- flow
    def _issue_next(self) -> None:
        if self._stopped:
            return
        if self._max_requests is not None and self._generator.requests_generated >= self._max_requests:
            return
        command = self._generator.next_command()
        request = ClientRequest(command=command)
        self._outstanding_request_id = command.request_id
        self._outstanding_request = request
        self._outstanding_sent_at = self._sim.now
        if self._router is not None:
            shard = self._router.shard_of_key(command.key)
            self._outstanding_shard = shard
            self._shard_requests[shard].value += 1
        self._record_invoke(command)
        self._send(request, self._pick_target_for(command.key))
        self._timeout_timer = self._sim.schedule(
            self._request_timeout, self._on_timeout, command.request_id, request
        )

    def _on_reply(self, reply: ClientReply) -> None:
        if reply.request_id != self._outstanding_request_id:
            return  # duplicate or stale reply
        if not reply.success:
            # Redirect: follow the leader hint and re-send the same request.
            self._note_leader_hint(reply)
            self.stats.retries += 1
            if self._outstanding_request is not None:
                self._send(
                    self._outstanding_request,
                    self._pick_target_for(self._outstanding_request.command.key),
                )
            return
        self._outstanding_request_id = None
        self._outstanding_request = None
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
            self._timeout_timer = None
        if self._router is not None and self._outstanding_shard is not None:
            self._shard_completions[self._outstanding_shard].value += 1
            self._outstanding_shard = None
        latency = self._sim.now - self._outstanding_sent_at
        self.stats.received += 1
        self.stats.completions.append((self._sim.now, latency))
        self._record_complete(reply)
        self._note_leader_hint(reply)
        self._sim.metrics.histogram("client.latency").observe(latency)
        self._sim.metrics.timeseries("client.completions", interval=1.0).record(self._sim.now)
        self._issue_next()

    def _on_timeout(self, request_id: int, request: ClientRequest) -> None:
        if self._stopped or request_id != self._outstanding_request_id:
            return
        # Re-send the same request; rotate the target in case the leader died.
        # Sharded: rotate only within the shard's own group so a retry can
        # never cross a shard boundary.
        self.stats.retries += 1
        key = request.command.key
        if self._target_policy == "leader":
            if self._router is None:
                current = self._leader_hint
                others = [t for t in self._targets if t != current]
                if others:
                    self._leader_hint = self._rng.choice(others)
            else:
                shard = self._router.shard_of_key(key)
                current = self._shard_leader_hints[shard]
                others = [t for t in self._router.group_of(shard) if t != current]
                if others:
                    self._shard_leader_hints[shard] = self._rng.choice(others)
        self._send(request, self._pick_target_for(key))
        self._timeout_timer = self._sim.schedule(
            self._request_timeout, self._on_timeout, request_id, request
        )


class OpenLoopClient(_BaseClient):
    """Poisson-arrival client issuing requests at a fixed rate."""

    def __init__(
        self,
        client_id: int,
        sim: Simulator,
        network: SimNetwork,
        spec: WorkloadSpec,
        targets: Sequence[int],
        rate_per_sec: float,
        target_policy: str = "leader",
        start_time: float = 0.0,
        duration: Optional[float] = None,
        recorder=None,
        router=None,
    ) -> None:
        super().__init__(client_id, sim, network, spec, targets, target_policy,
                         recorder=recorder, router=router)
        if rate_per_sec <= 0:
            raise WorkloadError("rate_per_sec must be positive")
        self._rate = rate_per_sec
        self._start_time = start_time
        self._duration = duration
        self._in_flight: dict = {}
        self._in_flight_shards: dict = {}

    def start(self) -> None:
        self._sim.schedule(self._start_time + self._next_gap(), self._issue)

    def _next_gap(self) -> float:
        return self._rng.expovariate(self._rate)

    def _issue(self) -> None:
        if self._duration is not None and self._sim.now > self._start_time + self._duration:
            return
        command = self._generator.next_command()
        self._in_flight[command.request_id] = self._sim.now
        if self._router is not None:
            shard = self._router.shard_of_key(command.key)
            self._in_flight_shards[command.request_id] = shard
            self._shard_requests[shard].value += 1
        self._record_invoke(command)
        self._send(ClientRequest(command=command), self._pick_target_for(command.key))
        self._sim.schedule(self._next_gap(), self._issue)

    def _on_reply(self, reply: ClientReply) -> None:
        if not reply.success:
            self._note_leader_hint(reply)
            return
        sent_at = self._in_flight.pop(reply.request_id, None)
        if sent_at is None:
            return
        if self._router is not None:
            shard = self._in_flight_shards.pop(reply.request_id, None)
            if shard is not None:
                self._shard_completions[shard].value += 1
        latency = self._sim.now - sent_at
        self.stats.received += 1
        self.stats.completions.append((self._sim.now, latency))
        self._record_complete(reply)
        self._note_leader_hint(reply)
        self._sim.metrics.histogram("client.latency").observe(latency)
        self._sim.metrics.timeseries("client.completions", interval=1.0).record(self._sim.now)
