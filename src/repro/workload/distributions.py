"""Key-selection distributions.

Uniform selection over 1000 keys is what every experiment in the paper uses;
Zipfian and sequential selection are provided for the extension benchmarks
(skewed workloads change the EPaxos conflict rate dramatically, which is a
natural ablation of the paper's comparison).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import WorkloadError


class KeyDistribution(ABC):
    """Chooses a key index in ``[0, num_keys)`` per operation."""

    def __init__(self, num_keys: int) -> None:
        if num_keys < 1:
            raise WorkloadError("num_keys must be >= 1")
        self.num_keys = num_keys

    @abstractmethod
    def next_index(self, rng: random.Random) -> int:
        """Return the next key index."""

    def describe(self) -> str:
        return f"{type(self).__name__}({self.num_keys})"


class UniformKeys(KeyDistribution):
    """Every key equally likely (the paper's workload)."""

    def next_index(self, rng: random.Random) -> int:
        return rng.randrange(self.num_keys)


class SequentialKeys(KeyDistribution):
    """Round-robin key selection (useful for deterministic tests)."""

    def __init__(self, num_keys: int) -> None:
        super().__init__(num_keys)
        self._next = 0

    def next_index(self, rng: random.Random) -> int:
        index = self._next
        self._next = (self._next + 1) % self.num_keys
        return index


class ZipfianKeys(KeyDistribution):
    """Zipfian selection using the classic rejection-free inverse-CDF method.

    The CDF is precomputed once; draws are a binary search, so per-operation
    cost stays O(log num_keys) even for large key spaces.
    """

    def __init__(self, num_keys: int, theta: float = 0.99) -> None:
        super().__init__(num_keys)
        if theta <= 0:
            raise WorkloadError("theta must be positive")
        self.theta = theta
        weights = [1.0 / math.pow(rank + 1, theta) for rank in range(num_keys)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0

    def next_index(self, rng: random.Random) -> int:
        target = rng.random()
        low, high = 0, self.num_keys - 1
        while low < high:
            mid = (low + high) // 2
            if self._cdf[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low


def make_distribution(name: str, num_keys: int, zipf_theta: float = 0.99) -> KeyDistribution:
    """Factory used by the command generator."""
    if name == "uniform":
        return UniformKeys(num_keys)
    if name == "zipfian":
        return ZipfianKeys(num_keys, theta=zipf_theta)
    if name == "sequential":
        return SequentialKeys(num_keys)
    raise WorkloadError(f"unknown distribution {name!r}")
