"""Command generation from a workload specification."""

from __future__ import annotations

import random

from repro.statemachine.command import Command, OpType
from repro.workload.distributions import KeyDistribution, make_distribution
from repro.workload.spec import WorkloadSpec


class CommandGenerator:
    """Turns a :class:`WorkloadSpec` into a stream of commands for one client."""

    def __init__(self, spec: WorkloadSpec, client_id: int, rng: random.Random) -> None:
        self.spec = spec
        self.client_id = client_id
        self._rng = rng
        self._distribution: KeyDistribution = make_distribution(
            spec.distribution, spec.num_keys, spec.zipf_theta
        )
        self._request_id = 0

    @property
    def requests_generated(self) -> int:
        return self._request_id

    def key_for_index(self, index: int) -> str:
        """A key string padded to the spec's key size (Paxi uses fixed-width keys)."""
        return f"k{index:0{max(1, self.spec.key_size - 1)}d}"

    def next_command(self) -> Command:
        self._request_id += 1
        index = self._distribution.next_index(self._rng)
        key = self.key_for_index(index)
        is_read = self._rng.random() < self.spec.read_ratio
        if is_read:
            return Command(
                op=OpType.GET,
                key=key,
                payload_size=0,
                client_id=self.client_id,
                request_id=self._request_id,
            )
        value = None
        if self.spec.unique_values:
            # Identifiable writes for the linearizability checker: the value
            # names the (client, request) pair that wrote it.
            value = f"c{self.client_id}.r{self._request_id}"
        return Command(
            op=OpType.PUT,
            key=key,
            value=value,
            payload_size=self.spec.value_size,
            client_id=self.client_id,
            request_id=self._request_id,
        )
