"""Workload specification.

``WorkloadSpec`` captures everything the paper's benchmark section fixes:
key-space size, key/value sizes, read ratio and the key-selection
distribution.  ``WorkloadSpec.paper_default()`` reproduces the default
configuration used by most figures; ``payload(size)`` reproduces the
write-only payload sweep of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete description of the client workload.

    Attributes:
        num_keys: Number of distinct keys (the paper uses 1000).
        key_size: Encoded key size in bytes (8 in the paper).
        value_size: Value payload in bytes written by PUTs (8 by default,
            swept 8..1280 in Figure 12).
        read_ratio: Fraction of operations that are reads (0.5 in most
            experiments; 0.0 for the payload experiment).
        distribution: "uniform", "zipfian" or "sequential" key selection.
        zipf_theta: Skew parameter when distribution == "zipfian".
        unique_values: When True, every PUT carries a value string unique to
            its (client, request) pair instead of a size-only placeholder.
            Reads then identify the write they observed, which is what the
            linearizability checker needs (:mod:`repro.checkers`).
    """

    num_keys: int = 1000
    key_size: int = 8
    value_size: int = 8
    read_ratio: float = 0.5
    distribution: str = "uniform"
    zipf_theta: float = 0.99
    unique_values: bool = False

    def __post_init__(self) -> None:
        if self.num_keys < 1:
            raise WorkloadError("num_keys must be >= 1")
        if self.key_size < 1:
            raise WorkloadError("key_size must be >= 1")
        if self.value_size < 0:
            raise WorkloadError("value_size must be >= 0")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise WorkloadError("read_ratio must be in [0, 1]")
        if self.distribution not in ("uniform", "zipfian", "sequential"):
            raise WorkloadError(f"unknown distribution {self.distribution!r}")
        if self.distribution == "zipfian" and self.zipf_theta <= 0:
            raise WorkloadError("zipf_theta must be positive")

    # ------------------------------------------------------------------ presets
    @classmethod
    def paper_default(cls) -> "WorkloadSpec":
        """1000 uniform 8-byte keys, 8-byte values, 50/50 reads and writes."""
        return cls()

    @classmethod
    def payload(cls, value_size: int) -> "WorkloadSpec":
        """The write-only payload-size workload of Figure 12."""
        return cls(read_ratio=0.0, value_size=value_size)

    @classmethod
    def checking_default(cls, num_keys: int = 25) -> "WorkloadSpec":
        """A small, contended workload with identifiable writes.

        Used by the scenario engine: few keys (more per-key contention for
        the linearizability search to bite on) and unique values so a read's
        output names the write it observed.
        """
        return cls(num_keys=num_keys, read_ratio=0.5, unique_values=True)

    def with_value_size(self, value_size: int) -> "WorkloadSpec":
        return replace(self, value_size=value_size)

    def with_read_ratio(self, read_ratio: float) -> "WorkloadSpec":
        return replace(self, read_ratio=read_ratio)
