"""Pytest fixtures shared across the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the helper module importable as ``helpers`` regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))

from repro.sim.engine import Simulator  # noqa: E402
from repro.workload.spec import WorkloadSpec  # noqa: E402


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def tiny_workload() -> WorkloadSpec:
    """A small workload used by integration tests (few keys, small values)."""
    return WorkloadSpec(num_keys=20, value_size=8, read_ratio=0.5)
