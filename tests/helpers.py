"""Shared test helpers: a fake node context for replica unit tests."""

from __future__ import annotations

import random
from typing import Any, Callable, List, Sequence, Tuple

from repro.sim.metrics import MetricsRegistry


class FakeTimer:
    """A manually fired timer returned by :class:`FakeContext.schedule`."""

    def __init__(self, delay: float, callback: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self.delay = delay
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True

    def fire(self) -> None:
        if not self.cancelled:
            self.fired = True
            self.callback(*self.args)


class FakeContext:
    """In-memory NodeContext capturing sends and timers for unit tests."""

    def __init__(self, node_id: int = 0, all_nodes: Sequence[int] = (0, 1, 2, 3, 4), seed: int = 0) -> None:
        self._node_id = node_id
        self._all_nodes = list(all_nodes)
        self._now = 0.0
        self.sent: List[Tuple[int, Any]] = []
        self.timers: List[FakeTimer] = []
        self._rng = random.Random(seed)
        self._metrics = MetricsRegistry(clock=lambda: self._now)
        self.executed_commands = 0
        self.graph_vertices = 0
        self.overhead_units = 0.0

    # ----------------------------------------------------------------- context API
    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def all_nodes(self) -> Sequence[int]:
        return self._all_nodes

    @property
    def now(self) -> float:
        return self._now

    @property
    def rng(self) -> random.Random:
        return self._rng

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    def send(self, dst: int, message: Any) -> None:
        self.sent.append((dst, message))

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> FakeTimer:
        timer = FakeTimer(delay, callback, args)
        self.timers.append(timer)
        return timer

    def charge_execution(self, commands: int = 1) -> None:
        self.executed_commands += commands

    def charge_graph_work(self, vertices: int) -> None:
        self.graph_vertices += vertices

    def charge_overhead(self, units: float = 1.0) -> None:
        self.overhead_units += units

    def charge_seconds(self, seconds: float) -> None:
        pass

    # ----------------------------------------------------------------- test helpers
    def advance(self, seconds: float) -> None:
        self._now += seconds

    def sent_to(self, dst: int) -> List[Any]:
        return [message for target, message in self.sent if target == dst]

    def sent_of_type(self, message_type: type) -> List[Tuple[int, Any]]:
        return [(target, message) for target, message in self.sent if isinstance(message, message_type)]

    def clear_sent(self) -> None:
        self.sent.clear()

    def pending_timers(self) -> List[FakeTimer]:
        return [timer for timer in self.timers if not timer.cancelled and not timer.fired]
