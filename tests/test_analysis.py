"""Tests for the analytical model (Tables 1-2, Section 6) and the WAN model."""

from __future__ import annotations

import pytest

from repro.analysis.advisor import recommend_relay_groups
from repro.analysis.model import (
    follower_load_limit,
    leader_overhead,
    message_load_table,
    messages_at_follower,
    messages_at_leader,
    paxos_messages_at_follower,
    paxos_messages_at_leader,
)
from repro.analysis.wan import wan_messages_per_write, wan_traffic_table
from repro.errors import ConfigurationError


class TestMessageLoadFormulas:
    @pytest.mark.parametrize("r,expected", [(1, 4), (2, 6), (3, 8), (4, 10), (5, 12), (6, 14), (24, 50)])
    def test_leader_messages_formula1(self, r, expected):
        assert messages_at_leader(r) == expected

    @pytest.mark.parametrize(
        "n,r,expected",
        [
            (25, 2, 3.83), (25, 3, 3.75), (25, 4, 3.67), (25, 5, 3.58), (25, 6, 3.50), (25, 24, 2.0),
            (9, 2, 3.5), (9, 3, 3.25), (9, 4, 3.0), (9, 8, 2.0),
        ],
    )
    def test_follower_messages_match_paper_tables(self, n, r, expected):
        assert messages_at_follower(n, r) == pytest.approx(expected, abs=0.01)

    @pytest.mark.parametrize(
        "n,r,expected_pct",
        [(25, 2, 56), (25, 3, 113), (25, 4, 172), (25, 5, 234), (25, 6, 300), (25, 24, 2400),
         (9, 2, 71), (9, 3, 146), (9, 4, 233), (9, 8, 800)],
    )
    def test_leader_overhead_matches_paper_tables(self, n, r, expected_pct):
        assert leader_overhead(n, r) * 100 == pytest.approx(expected_pct, abs=2.0)

    def test_paxos_degenerate_case(self):
        assert paxos_messages_at_leader(25) == 50
        assert paxos_messages_at_follower(25) == 2.0

    def test_table1_reproduction(self):
        rows = message_load_table(25)
        assert [row.relay_groups for row in rows] == [2, 3, 4, 5, 6, 24]
        assert rows[-1].is_paxos
        assert rows[0].messages_at_leader == 6

    def test_table2_reproduction(self):
        rows = message_load_table(9, relay_group_counts=[2, 3, 4])
        assert [row.relay_groups for row in rows] == [2, 3, 4, 8]
        assert rows[0].messages_at_follower == pytest.approx(3.5)

    def test_follower_load_asymptote_is_four(self):
        # Section 6.3: with r=1 and N -> infinity, follower load approaches 4,
        # which equals the minimum leader load -- the leader stays the bottleneck.
        assert follower_load_limit(1) == 4.0
        assert messages_at_follower(10_001, 1) == pytest.approx(4.0, abs=0.001)
        assert messages_at_leader(1) == 4.0

    def test_leader_load_grows_with_groups_follower_load_capped(self):
        leader_loads = [messages_at_leader(r) for r in range(2, 10)]
        follower_loads = [messages_at_follower(25, r) for r in range(2, 10)]
        assert leader_loads == sorted(leader_loads)
        assert all(load <= 4.0 for load in follower_loads)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            messages_at_leader(0)
        with pytest.raises(ConfigurationError):
            messages_at_follower(5, 5)
        with pytest.raises(ConfigurationError):
            messages_at_follower(1, 1)


class TestWANModel:
    def test_paper_example_three_regions_of_three(self):
        regions = {"virginia": 3, "california": 3, "oregon": 3}
        assert wan_messages_per_write(regions, "virginia", "pigpaxos") == 2
        assert wan_messages_per_write(regions, "virginia", "paxos") == 6

    def test_traffic_table_ratio(self):
        rows = wan_traffic_table({"a": 3, "b": 3, "c": 3}, leader_region="a")
        by_protocol = {row.protocol: row for row in rows}
        assert by_protocol["paxos"].ratio_vs_pigpaxos == pytest.approx(3.0)

    def test_unknown_leader_region_rejected(self):
        with pytest.raises(ConfigurationError):
            wan_messages_per_write({"a": 3}, "z", "paxos")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            wan_messages_per_write({"a": 3, "b": 1}, "a", "raft")


class TestAdvisor:
    def test_lan_default_recommends_two_groups(self):
        rec = recommend_relay_groups(25)
        assert rec.num_groups == 2
        assert rec.messages_at_leader == 6

    def test_latency_sensitive_recommends_three(self):
        assert recommend_relay_groups(25, latency_sensitive=True).num_groups == 3

    def test_wan_recommends_one_group_per_region(self):
        assert recommend_relay_groups(15, num_regions=3).num_groups == 3

    def test_small_cluster_capped(self):
        assert recommend_relay_groups(3).num_groups == 2

    def test_too_small_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            recommend_relay_groups(2)
