"""Batching & pipelining on the replication path.

Three tiers:

* **Unit** -- flush triggers (size / delay / pipeline-full / conflict /
  immediate) driven through a :class:`FakeContext`, for both the
  Multi-Paxos leader and the EPaxos opportunistic leader.
* **Scenario** -- batches riding the PigPaxos relay overlay unsplit, and
  the ``client_timeout`` x ``batch_max_delay`` race: a delay flush that
  answers an already-retried command must stay at-most-once end to end.
* **Mutation** -- a build that unpacks batches out of order (execution
  reversed relative to the recorded reply mapping) must trip the
  linearizability checker, proving the checkers actually guard the
  batch-unpacking contract.
"""

from __future__ import annotations

from helpers import FakeContext
from repro.epaxos.messages import EPreAccept
from repro.epaxos.replica import EPaxosReplica
from repro.paxos.replica import MultiPaxosReplica
from repro.protocol.config import ProtocolConfig
from repro.protocol.messages import ClientReply, ClientRequest, P1b, P2a, P2b
from repro.scenarios import Scenario, get_scenario, run_scenario
from repro.statemachine.command import Command, CommandBatch, OpType
from repro.workload.spec import WorkloadSpec


def make_leader(**config_kwargs):
    """An elected 5-node Multi-Paxos leader on a fake context."""
    ctx = FakeContext(node_id=0, all_nodes=list(range(5)))
    replica = MultiPaxosReplica(config=ProtocolConfig(initial_leader=0, **config_kwargs))
    replica.bind(ctx)
    replica.start()
    for timer in list(ctx.pending_timers()):
        if timer.delay == 0.0:
            timer.fire()
    for voter in (1, 2):
        replica.on_message(voter, P1b(ballot=replica.ballot, voter=voter, ok=True))
    assert replica.is_leader
    ctx.clear_sent()
    return replica, ctx


def make_epaxos(**kwargs):
    ctx = FakeContext(node_id=0, all_nodes=list(range(5)))
    replica = EPaxosReplica(**kwargs)
    replica.bind(ctx)
    replica.start()
    return replica, ctx


def request(key="k", client_id=1000, request_id=1) -> ClientRequest:
    return ClientRequest(
        command=Command(
            op=OpType.PUT, key=key, payload_size=8, client_id=client_id, request_id=request_id
        )
    )


def flush_counts(ctx) -> dict:
    """``{trigger: count}`` from the ``batch.flush.*`` counters."""
    counters = ctx.metrics.snapshot()["counters"]
    return {
        name.rsplit(".", 1)[-1]: value
        for name, value in counters.items()
        if name.startswith("batch.flush.")
    }


def commit_slot(replica, slot: int) -> None:
    for voter in (1, 2):
        replica.on_message(voter, P2b(ballot=replica.ballot, slot=slot, voter=voter, ok=True))


class TestPaxosFlushTriggers:
    def test_partial_buffer_with_pipeline_room_flushes_immediately(self):
        """Light load degenerates to unbatched: a lone command is proposed
        right away, as a plain Command (not a one-element batch)."""
        replica, ctx = make_leader(batch_max_commands=4, pipeline_depth=2)
        replica.on_message(1000, request())
        p2as = ctx.sent_of_type(P2a)
        assert len(p2as) == 4  # fan-out to every peer, nothing buffered
        assert isinstance(p2as[0][1].command, Command)
        counts = flush_counts(ctx)
        assert counts.pop("immediate") == 1
        assert not any(counts.values())  # no other trigger fired

    def test_full_buffer_behind_full_pipeline_flushes_on_size(self):
        """Commands park while the pipeline is full; the commit that frees a
        slot flushes a full buffer as one size-triggered batch."""
        replica, ctx = make_leader(batch_max_commands=3, pipeline_depth=1)
        replica.on_message(1000, request(client_id=1000, request_id=1))
        first_slot = ctx.sent_of_type(P2a)[0][1].slot
        ctx.clear_sent()
        for i, client in enumerate((1001, 1002, 1003)):
            replica.on_message(client, request(key=f"k{i}", client_id=client, request_id=2))
        assert not ctx.sent_of_type(P2a)  # pipeline full: all three parked
        commit_slot(replica, first_slot)
        p2as = ctx.sent_of_type(P2a)
        assert p2as and isinstance(p2as[0][1].command, CommandBatch)
        batch = p2as[0][1].command
        assert len(batch.commands) == 3
        assert flush_counts(ctx)["size"] == 1
        # Commit the batch slot: every sub-command answers its own client.
        ctx.clear_sent()
        commit_slot(replica, p2as[0][1].slot)
        replies = ctx.sent_of_type(ClientReply)
        assert {(dst, reply.request_id) for dst, reply in replies} == {
            (1001, 2), (1002, 2), (1003, 2),
        }

    def test_partial_buffer_flushes_when_the_delay_timer_fires(self):
        replica, ctx = make_leader(batch_max_commands=8, batch_max_delay=0.05)
        replica.on_message(1000, request(client_id=1000, request_id=1))
        replica.on_message(1001, request(key="j", client_id=1001, request_id=1))
        assert not ctx.sent_of_type(P2a)  # delay bound set: accumulate
        (timer,) = [
            t for t in ctx.pending_timers() if t.callback == replica._batch_delay_fired
        ]
        timer.fire()
        p2as = ctx.sent_of_type(P2a)
        assert isinstance(p2as[0][1].command, CommandBatch)
        assert len(p2as[0][1].command.commands) == 2
        assert flush_counts(ctx)["delay"] == 1

    def test_partial_buffer_flushes_when_a_commit_frees_the_pipeline(self):
        replica, ctx = make_leader(batch_max_commands=8, pipeline_depth=1)
        replica.on_message(1000, request(client_id=1000, request_id=1))
        first_slot = ctx.sent_of_type(P2a)[0][1].slot
        ctx.clear_sent()
        replica.on_message(1001, request(key="a", client_id=1001, request_id=1))
        replica.on_message(1002, request(key="b", client_id=1002, request_id=1))
        assert not ctx.sent_of_type(P2a)
        commit_slot(replica, first_slot)
        p2as = ctx.sent_of_type(P2a)
        assert isinstance(p2as[0][1].command, CommandBatch)
        assert len(p2as[0][1].command.commands) == 2
        assert flush_counts(ctx)["pipeline"] == 1

    def test_unbatched_replica_registers_no_batch_metrics(self):
        """The default config must not even *touch* the batch counters --
        metric registration order feeds the determinism fingerprint."""
        replica, ctx = make_leader()
        replica.on_message(1000, request())
        assert ctx.sent_of_type(P2a)
        counters = ctx.metrics.snapshot()["counters"]
        assert not any(name.startswith("batch.") for name in counters)


class TestEPaxosFlushTriggers:
    def test_conflicting_arrival_flushes_the_standing_buffer(self):
        """Batches hold pairwise non-conflicting commands only: a conflicting
        arrival flushes what accumulated, then starts the next buffer."""
        replica, ctx = make_epaxos(batch_max_commands=4, batch_max_delay=0.05)
        replica.on_message(1000, request(key="a", client_id=1000, request_id=1))
        replica.on_message(1001, request(key="b", client_id=1001, request_id=1))
        assert not ctx.sent_of_type(EPreAccept)  # accumulating under the delay bound
        replica.on_message(1002, request(key="a", client_id=1002, request_id=1))
        pre_accepts = ctx.sent_of_type(EPreAccept)
        assert pre_accepts and isinstance(pre_accepts[0][1].command, CommandBatch)
        flushed = pre_accepts[0][1].command
        assert [cmd.key for cmd in flushed.commands] == ["a", "b"]
        assert flush_counts(ctx)["conflict"] == 1

    def test_buffer_reaching_capacity_flushes_on_size(self):
        replica, ctx = make_epaxos(batch_max_commands=3, batch_max_delay=0.05)
        for i, client in enumerate((1000, 1001, 1002)):
            replica.on_message(client, request(key=f"k{i}", client_id=client, request_id=1))
        pre_accepts = ctx.sent_of_type(EPreAccept)
        assert pre_accepts and len(pre_accepts[0][1].command.commands) == 3
        assert flush_counts(ctx)["size"] == 1

    def test_lone_command_flushes_as_plain_command_on_delay(self):
        replica, ctx = make_epaxos(batch_max_commands=4, batch_max_delay=0.05)
        replica.on_message(1000, request(key="a"))
        (timer,) = [
            t for t in ctx.pending_timers() if t.callback == replica._batch_delay_fired
        ]
        timer.fire()
        pre_accepts = ctx.sent_of_type(EPreAccept)
        assert pre_accepts and isinstance(pre_accepts[0][1].command, Command)
        assert flush_counts(ctx)["delay"] == 1


class TestBatchedScenarios:
    def test_batches_ride_the_relay_tree_unsplit(self):
        """PigPaxos: one RelayRequest per batched slot, fanned through the
        relay groups without splitting -- every sub-command still answers
        its own client correctly (linearizability holds end to end)."""
        result = run_scenario(get_scenario("pig-batched-5"))
        result.raise_on_violations()
        counters = result.counters()
        assert counters.get("pigpaxos.relay_fanouts", 0) > 0  # overlay actually in use
        total_flushes = sum(
            value for name, value in counters.items() if name.startswith("batch.flush.")
        )
        # Strictly more commands than flushes == multi-command batches
        # crossed the relay tree intact.
        assert counters["batch.commands_batched"] > total_flushes > 0

    def test_delay_flush_racing_client_timeout_stays_at_most_once(self):
        """Regression for the client_timeout x batch_max_delay audit: with
        the delay bound set *above* the client timeout, every buffered
        command is answered only after its client has already timed out,
        rotated targets and re-sent the same request_id.  The retried copy
        lands in the same (or a later) batch; the session window applies it
        once, the client completes once, linearizability holds."""
        scenario = Scenario(
            name="batched-delay-vs-client-timeout",
            protocol="paxos",
            num_nodes=5,
            num_clients=4,
            duration=2.0,
            seed=13,
            workload=WorkloadSpec.checking_default(num_keys=4),
            client_timeout=0.05,
            # Capacity high enough that the size trigger never preempts the
            # delay trigger: every flush in this run is a delayed one.
            config_overrides={"batch_max_commands": 64, "batch_max_delay": 0.2},
            checks=("linearizability", "log_invariants"),
            description="delay flush answers already-retried commands",
        )
        result = run_scenario(scenario)
        result.raise_on_violations()
        counters = result.counters()
        # The race actually happened: retried copies reached execution and
        # were filtered by the per-client session window...
        assert counters.get("paxos.duplicate_commands_skipped", 0) >= 1
        # ...and the delay trigger (not just size) did the flushing.
        assert counters.get("batch.flush.delay", 0) >= 1
        assert result.completed_requests > 0


class TestBatchMutationsAreCaught:
    def test_out_of_order_batch_unpacking_is_caught(self, monkeypatch):
        """A build that executes a batch in reverse order -- while the reply
        fan-out still zips results positionally with the recorded clients --
        hands clients each other's results.  The linearizability checker
        must see it (reads return values that contradict every valid
        linearization)."""
        original = MultiPaxosReplica._apply_command

        def apply_reversed(self, command):
            if isinstance(command, CommandBatch) and len(command.commands) > 1:
                return tuple(original(self, sub) for sub in reversed(command.commands))
            return original(self, command)

        monkeypatch.setattr(MultiPaxosReplica, "_apply_command", apply_reversed)
        scenario = Scenario(
            name="batched-out-of-order-mutation",
            protocol="paxos",
            num_nodes=5,
            num_clients=8,
            duration=1.5,
            seed=3,
            workload=WorkloadSpec.checking_default(num_keys=2),
            config_overrides={"batch_max_commands": 8, "pipeline_depth": 2},
            checks=("linearizability", "log_invariants"),
            description="batch unpack order reversed vs reply mapping",
        )
        result = run_scenario(scenario)
        assert not result.ok
        assert "linearizability" in {violation.checker for violation in result.violations}
