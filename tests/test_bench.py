"""Tests for the benchmark harness: results, runner, sweeps, time-series, plots."""

from __future__ import annotations

import json

import pytest

from repro.bench.plots import ascii_chart, format_table
from repro.bench.results import RunResult, SweepResult
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.bench.sweeps import latency_throughput_sweep, max_throughput
from repro.bench.timeseries import steady_state_rate, throughput_timeseries
from repro.cluster.faults import FaultSchedule
from repro.errors import BenchmarkError


def _result(throughput: float, latency: float = 0.002, clients: int = 10) -> RunResult:
    return RunResult(
        protocol="paxos",
        num_nodes=5,
        num_clients=clients,
        duration=1.0,
        measured_window=0.8,
        completed_requests=int(throughput * 0.8),
        throughput=throughput,
        latency_mean=latency,
        latency_p50=latency,
        latency_p95=latency * 1.5,
        latency_p99=latency * 2,
        latency_max=latency * 3,
    )


class TestResults:
    def test_run_result_serialization(self):
        result = _result(1000.0)
        data = result.to_dict()
        assert data["throughput"] == 1000.0
        assert data["latency_p99_ms"] == pytest.approx(4.0)
        json.loads(result.to_json())  # valid JSON

    def test_sweep_series_and_max(self):
        sweep = SweepResult(label="test")
        for throughput, latency in [(100, 0.001), (500, 0.002), (480, 0.01)]:
            sweep.add(_result(throughput, latency))
        assert sweep.max_throughput() == 500
        assert sweep.best_run().throughput == 500
        series = sweep.latency_throughput_series()
        assert series[0] == (100, 1.0)
        assert len(series) == 3

    def test_saturation_run_respects_latency_budget(self):
        sweep = SweepResult(label="test")
        sweep.add(_result(500, 0.002))
        sweep.add(_result(900, 0.050))
        assert sweep.saturation_run(latency_budget_ms=10).throughput == 500
        assert sweep.saturation_run().throughput == 900

    def test_unknown_percentile_rejected(self):
        sweep = SweepResult(label="test")
        sweep.add(_result(100))
        with pytest.raises(ValueError):
            sweep.latency_throughput_series(percentile="p75")


class TestRunner:
    def test_run_experiment_produces_throughput_and_latency(self, tiny_workload):
        config = ExperimentConfig(protocol="paxos", num_nodes=3, num_clients=4,
                                  duration=0.4, warmup=0.1, workload=tiny_workload, seed=2)
        result = run_experiment(config)
        assert result.completed_requests > 0
        assert result.throughput > 0
        assert 0 < result.latency_mean < 0.1
        assert result.latency_p99 >= result.latency_p50

    def test_invalid_window_rejected(self):
        config = ExperimentConfig(duration=0.2, warmup=0.2)
        with pytest.raises(BenchmarkError):
            run_experiment(config)

    def test_relay_groups_recorded_in_extra(self, tiny_workload):
        config = ExperimentConfig(protocol="pigpaxos", num_nodes=5, num_clients=2,
                                  relay_groups=2, duration=0.4, warmup=0.1,
                                  workload=tiny_workload, seed=2)
        result = run_experiment(config)
        assert result.extra["relay_groups"] == 2

    def test_same_seed_reproducible(self, tiny_workload):
        config = ExperimentConfig(protocol="pigpaxos", num_nodes=5, num_clients=3,
                                  relay_groups=2, duration=0.4, warmup=0.1,
                                  workload=tiny_workload, seed=7)
        assert run_experiment(config).throughput == run_experiment(config).throughput

    def test_fault_schedule_flows_through(self, tiny_workload):
        schedule = FaultSchedule().crash(2, at=0.1)
        config = ExperimentConfig(protocol="paxos", num_nodes=3, num_clients=2,
                                  duration=0.4, warmup=0.1, workload=tiny_workload,
                                  fault_schedule=schedule, seed=2)
        result = run_experiment(config)
        assert result.completed_requests > 0  # majority still alive


class TestSweeps:
    def test_latency_throughput_sweep_runs_each_point(self, tiny_workload):
        config = ExperimentConfig(protocol="paxos", num_nodes=3, duration=0.3, warmup=0.1,
                                  workload=tiny_workload, seed=2)
        sweep = latency_throughput_sweep(config, client_counts=[1, 2, 4])
        assert len(sweep) == 3
        assert [run.num_clients for run in sweep] == [1, 2, 4]

    def test_throughput_grows_then_saturates(self, tiny_workload):
        config = ExperimentConfig(protocol="paxos", num_nodes=3, duration=0.3, warmup=0.1,
                                  workload=tiny_workload, seed=2)
        sweep = latency_throughput_sweep(config, client_counts=[1, 8])
        assert sweep.runs[1].throughput > sweep.runs[0].throughput

    def test_max_throughput_returns_best(self, tiny_workload):
        config = ExperimentConfig(protocol="paxos", num_nodes=3, duration=0.3, warmup=0.1,
                                  workload=tiny_workload, seed=2)
        best, sweep = max_throughput(config, client_counts=[1, 4, 8])
        assert best.throughput == sweep.max_throughput()


class TestTimeseries:
    def test_throughput_timeseries_covers_run(self, tiny_workload):
        config = ExperimentConfig(protocol="paxos", num_nodes=3, num_clients=4,
                                  duration=1.0, warmup=0.1, workload=tiny_workload, seed=2)
        series, cluster = throughput_timeseries(config, interval=0.25)
        assert len(series) == 4
        assert sum(rate * 0.25 for _, rate in series) == cluster.total_completed_requests()
        assert steady_state_rate(series, skip=1) > 0


class TestPlots:
    def test_format_table_aligns_columns(self):
        table = format_table(["name", "value"], [["paxos", 2000.0], ["pigpaxos", 7000.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "paxos" in lines[2] and "pigpaxos" in lines[3]

    def test_ascii_chart_renders_series(self):
        chart = ascii_chart({"paxos": [(0, 1), (10, 2)], "pig": [(0, 1.5), (10, 1.6)]},
                            width=20, height=5)
        assert "legend" in chart
        assert "*" in chart and "o" in chart

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(no data)"
