"""Unit tests for the safety checkers: history recording, linearizability,
log invariants.  Violation *detection* is tested on hand-built histories and
clusters; whole-stack acceptance runs live in tests/test_scenarios.py."""

from __future__ import annotations

from types import SimpleNamespace


from repro.checkers.history import History, HistoryRecorder, Operation
from repro.checkers.invariants import (
    check_execution_frontier,
    check_prefix_agreement,
    check_quorum_sanity,
    check_slot_agreement,
)
from repro.checkers.linearizability import check_linearizability
from repro.protocol.messages import ClientReply
from repro.statemachine.command import Command, CommandResult, OpType
from repro.statemachine.log import ReplicatedLog


def op(client, rid, kind, key, value=None, inv=0.0, ret=None, output=None, found=None):
    return Operation(
        client_id=client, request_id=rid, op=kind, key=key, value=value,
        invoked_at=inv, completed_at=ret, output=output, found=found,
    )


def lin(*ops):
    return check_linearizability(History(list(ops)))


class TestLinearizabilityChecker:
    def test_empty_history_is_linearizable(self):
        assert lin() == []

    def test_sequential_writes_and_reads_pass(self):
        assert lin(
            op(1, 1, "put", "k", value="a", inv=0.0, ret=1.0),
            op(1, 2, "get", "k", inv=2.0, ret=3.0, output="a", found=True),
            op(2, 1, "put", "k", value="b", inv=4.0, ret=5.0),
            op(1, 3, "get", "k", inv=6.0, ret=7.0, output="b", found=True),
        ) == []

    def test_read_of_unwritten_key_returns_absent(self):
        assert lin(op(1, 1, "get", "k", inv=0.0, ret=1.0, output=None, found=False)) == []

    def test_stale_read_is_flagged(self):
        violations = lin(
            op(1, 1, "put", "k", value="a", inv=0.0, ret=1.0),
            op(2, 1, "put", "k", value="b", inv=2.0, ret=3.0),
            # Reads "a" strictly after "b" completed: not linearizable.
            op(3, 1, "get", "k", inv=4.0, ret=5.0, output="a", found=True),
        )
        assert len(violations) == 1
        assert violations[0].checker == "linearizability"
        assert "'k'" in violations[0].message

    def test_read_from_nowhere_is_flagged(self):
        violations = lin(
            op(1, 1, "put", "k", value="a", inv=0.0, ret=1.0),
            op(2, 1, "get", "k", inv=2.0, ret=3.0, output="ghost", found=True),
        )
        assert len(violations) == 1

    def test_lost_update_is_flagged(self):
        violations = lin(
            op(1, 1, "put", "k", value="a", inv=0.0, ret=1.0),
            op(2, 1, "get", "k", inv=2.0, ret=3.0, output=None, found=False),
        )
        assert len(violations) == 1

    def test_concurrent_read_may_observe_either_value(self):
        base = [
            op(1, 1, "put", "k", value="a", inv=0.0, ret=1.0),
            op(1, 2, "put", "k", value="b", inv=2.0, ret=6.0),
        ]
        overlapping_old = op(2, 1, "get", "k", inv=3.0, ret=4.0, output="a", found=True)
        overlapping_new = op(2, 1, "get", "k", inv=3.0, ret=4.0, output="b", found=True)
        assert lin(*base, overlapping_old) == []
        assert lin(*base, overlapping_new) == []

    def test_pending_write_may_have_taken_effect(self):
        assert lin(
            op(1, 1, "put", "k", value="a", inv=0.0, ret=None),  # never completed
            op(2, 1, "get", "k", inv=5.0, ret=6.0, output="a", found=True),
        ) == []

    def test_pending_write_may_also_never_take_effect(self):
        assert lin(
            op(1, 1, "put", "k", value="a", inv=0.0, ret=None),
            op(2, 1, "get", "k", inv=5.0, ret=6.0, output=None, found=False),
        ) == []

    def test_program_order_is_enforced_even_with_equal_timestamps(self):
        # Client 1 writes "a" then "b" back-to-back (reply and next invoke
        # share a timestamp, as in the simulator).  A later read must not
        # observe "a".
        violations = lin(
            op(1, 1, "put", "k", value="a", inv=0.0, ret=1.0),
            op(1, 2, "put", "k", value="b", inv=1.0, ret=2.0),
            op(2, 1, "get", "k", inv=3.0, ret=4.0, output="a", found=True),
        )
        assert len(violations) == 1

    def test_keys_are_checked_independently(self):
        violations = lin(
            op(1, 1, "put", "good", value="x", inv=0.0, ret=1.0),
            op(2, 1, "get", "good", inv=2.0, ret=3.0, output="x", found=True),
            op(1, 2, "put", "bad", value="y", inv=4.0, ret=5.0),
            op(2, 2, "get", "bad", inv=6.0, ret=7.0, output="ghost", found=True),
        )
        assert len(violations) == 1
        assert "'bad'" in violations[0].message

    def test_delete_makes_key_absent(self):
        assert lin(
            op(1, 1, "put", "k", value="a", inv=0.0, ret=1.0),
            op(1, 2, "delete", "k", inv=2.0, ret=3.0),
            op(2, 1, "get", "k", inv=4.0, ret=5.0, output=None, found=False),
        ) == []


class TestHistoryRecorder:
    def _command(self, client_id=1000, request_id=1, key="k", value="v"):
        return Command(op=OpType.PUT, key=key, value=value,
                       client_id=client_id, request_id=request_id)

    def _reply(self, command, value=None, existed=False):
        return ClientReply(
            command_uid=command.uid,
            request_id=command.request_id,
            client_id=command.client_id,
            success=True,
            result=CommandResult(command_uid=command.uid, success=True,
                                 value=value, existed=existed),
        )

    def test_invoke_is_idempotent_across_retries(self):
        recorder = HistoryRecorder()
        command = self._command()
        recorder.invoke(command, at=1.0)
        recorder.invoke(command, at=2.5)  # client retry re-sends the same command
        history = recorder.history()
        assert len(history) == 1
        assert history.operations()[0].invoked_at == 1.0

    def test_complete_records_result(self):
        recorder = HistoryRecorder()
        get = Command(op=OpType.GET, key="k", client_id=7, request_id=3)
        recorder.invoke(get, at=1.0)
        recorder.complete(self._reply(get, value="seen", existed=True), at=2.0)
        operation = recorder.history().operations()[0]
        assert operation.completed_at == 2.0
        assert operation.output == "seen"
        assert operation.found is True
        assert not operation.pending

    def test_unreplied_operations_stay_pending(self):
        recorder = HistoryRecorder()
        recorder.invoke(self._command(), at=1.0)
        assert recorder.history().pending()[0].pending

    def test_placeholder_value_matches_kvstore(self):
        recorder = HistoryRecorder()
        recorder.invoke(Command(op=OpType.PUT, key="k", payload_size=64,
                                client_id=1, request_id=1), at=0.0)
        assert recorder.history().operations()[0].value == "<64B>"

    def test_fingerprint_ignores_global_command_uids(self):
        def record():
            recorder = HistoryRecorder()
            command = self._command()  # fresh object, fresh uid
            recorder.invoke(command, at=1.0)
            recorder.complete(self._reply(command), at=2.0)
            return recorder.history().fingerprint()

        assert record() == record()


class _FakeCluster:
    """Just enough Cluster surface for the invariant checkers."""

    def __init__(self, replicas):
        self.nodes = {
            node_id: SimpleNamespace(replica=replica)
            for node_id, replica in enumerate(replicas)
        }

    def committed_prefixes(self):
        prefixes = {}
        for node_id, node in self.nodes.items():
            log = getattr(node.replica, "log", None)
            if log is not None:
                prefixes[node_id] = log.committed_prefix_uids()
        return prefixes


def _replica(quorum=None):
    return SimpleNamespace(log=ReplicatedLog(), commit_upto=0, quorum=quorum)


def _put(key="k"):
    return Command(op=OpType.PUT, key=key, value="v")


class TestLogInvariants:
    def test_agreeing_logs_pass(self):
        command = _put()
        replicas = [_replica(), _replica()]
        for replica in replicas:
            replica.log.commit(1, (1, 0), command)
            replica.commit_upto = 1
        cluster = _FakeCluster(replicas)
        assert check_slot_agreement(cluster) == []
        assert check_prefix_agreement(cluster) == []
        assert check_execution_frontier(cluster) == []

    def test_conflicting_slot_is_flagged(self):
        a, b = _replica(), _replica()
        a.log.commit(1, (1, 0), _put())
        b.log.commit(1, (1, 0), _put())  # different command, same slot
        violations = check_slot_agreement(_FakeCluster([a, b]))
        assert len(violations) == 1
        assert violations[0].checker == "slot_agreement"

    def test_diverging_prefix_is_flagged(self):
        shared = _put()
        a, b = _replica(), _replica()
        for replica in (a, b):
            replica.log.commit(1, (1, 0), shared)
        a.log.commit(2, (1, 0), _put())
        b.log.commit(2, (1, 0), _put())
        violations = check_prefix_agreement(_FakeCluster([a, b]))
        assert violations and violations[0].checker == "prefix_agreement"
        assert "slot 2" in violations[0].message

    def test_commit_frontier_beyond_committed_slots_is_flagged(self):
        lying = _replica()
        lying.commit_upto = 3  # nothing actually committed
        violations = check_execution_frontier(_FakeCluster([lying]))
        assert violations and violations[0].checker == "execution_frontier"

    def test_non_intersecting_quorums_are_flagged(self):
        bad = SimpleNamespace(n=2, phase1_size=1, phase2_size=1)
        violations = check_quorum_sanity(_FakeCluster([_replica(bad), _replica(bad)]))
        assert violations and violations[0].checker == "quorum_sanity"

    def test_mis_sized_quorum_is_flagged(self):
        wrong_n = SimpleNamespace(n=5, phase1_size=3, phase2_size=3)
        violations = check_quorum_sanity(_FakeCluster([_replica(wrong_n)]))
        assert violations and "n=5" in violations[0].message


# --------------------------------------------------------------------------
# EPaxos invariants on hand-built replica states.
# --------------------------------------------------------------------------

from repro.checkers.invariants import (  # noqa: E402
    check_epaxos_conflict_ordering,
    check_epaxos_execution_consistency,
    check_epaxos_execution_order,
    check_epaxos_instance_agreement,
)
from repro.epaxos.graph import DependencyGraph  # noqa: E402


def _einstance(instance, command, seq, deps, status="executed"):
    return SimpleNamespace(
        instance=instance, command=command, seq=seq, deps=frozenset(deps), status=status
    )


def _ereplica(instances, executed_order):
    """A fake EPaxos replica: instances dict + graph + executed order."""
    graph = DependencyGraph()
    for instance in instances.values():
        if instance.status in ("committed", "executed"):
            graph.add_committed(instance.instance, instance.seq, frozenset(instance.deps))
    for instance_id in executed_order:
        graph.mark_executed(instance_id)
    return SimpleNamespace(instances=instances, graph=graph, executed_order=list(executed_order))


class TestEPaxosInvariants:
    def test_agreeing_replicas_pass_all_checks(self):
        first, second = _put("a"), _put("a")
        layout = {
            (0, 1): ((), 1, first),
            (1, 1): (((0, 1),), 2, second),
        }
        replicas = []
        for _ in range(2):
            instances = {
                iid: _einstance(iid, cmd, seq, deps)
                for iid, (deps, seq, cmd) in layout.items()
            }
            replicas.append(_ereplica(instances, [(0, 1), (1, 1)]))
        cluster = _FakeCluster(replicas)
        assert check_epaxos_instance_agreement(cluster) == []
        assert check_epaxos_execution_order(cluster) == []
        assert check_epaxos_execution_consistency(cluster) == []
        assert check_epaxos_conflict_ordering(cluster) == []

    def test_seq_disagreement_is_flagged(self):
        command = _put("a")
        a = _ereplica({(0, 1): _einstance((0, 1), command, 1, ())}, [(0, 1)])
        b = _ereplica({(0, 1): _einstance((0, 1), command, 2, ())}, [(0, 1)])
        violations = check_epaxos_instance_agreement(_FakeCluster([a, b]))
        assert violations and violations[0].checker == "epaxos_instance_agreement"

    def test_deps_disagreement_is_flagged(self):
        command = _put("a")
        a = _ereplica({(0, 1): _einstance((0, 1), command, 1, ())}, [])
        b = _ereplica({(0, 1): _einstance((0, 1), command, 1, {(4, 2)})}, [])
        violations = check_epaxos_instance_agreement(_FakeCluster([a, b]))
        assert violations and "deps" in violations[0].message

    def test_execution_before_dependency_is_flagged(self):
        first, second = _put("a"), _put("a")
        instances = {
            (0, 1): _einstance((0, 1), first, 1, ()),
            (1, 1): _einstance((1, 1), second, 2, {(0, 1)}),
        }
        replica = _ereplica(instances, [(1, 1), (0, 1)])  # dependent first!
        violations = check_epaxos_execution_order(_FakeCluster([replica]))
        assert violations and violations[0].checker == "epaxos_execution_order"
        assert "before its dependency" in violations[0].message

    def test_cycle_members_may_execute_in_seq_order(self):
        """Mutual dependencies (one SCC) execute as a batch: no violation."""
        first, second = _put("a"), _put("a")
        instances = {
            (0, 1): _einstance((0, 1), first, 1, {(1, 1)}),
            (1, 1): _einstance((1, 1), second, 2, {(0, 1)}),
        }
        replica = _ereplica(instances, [(0, 1), (1, 1)])
        assert check_epaxos_execution_order(_FakeCluster([replica])) == []

    def test_cycle_executed_out_of_seq_order_is_flagged(self):
        """The cycle tie-break is (seq, id); id-only ordering is a planner
        bug even when every replica does it identically."""
        first, second = _put("a"), _put("a")
        instances = {
            (0, 1): _einstance((0, 1), first, 2, {(1, 1)}),   # higher seq...
            (1, 1): _einstance((1, 1), second, 1, {(0, 1)}),  # ...runs second
        }
        replica = _ereplica(instances, [(0, 1), (1, 1)])  # id order, not seq
        violations = check_epaxos_execution_order(_FakeCluster([replica]))
        assert violations and "out of (seq, id) order" in violations[0].message

    def test_executed_with_unexecuted_dependency_is_flagged(self):
        first, second = _put("a"), _put("a")
        instances = {
            (0, 1): _einstance((0, 1), first, 1, (), status="committed"),
            (1, 1): _einstance((1, 1), second, 2, {(0, 1)}),
        }
        replica = _ereplica(instances, [(1, 1)])
        violations = check_epaxos_execution_order(_FakeCluster([replica]))
        assert violations and "never executed" in violations[0].message

    def test_double_execution_is_flagged(self):
        command = _put("a")
        instances = {(0, 1): _einstance((0, 1), command, 1, ())}
        replica = _ereplica(instances, [(0, 1), (0, 1)])
        violations = check_epaxos_execution_order(_FakeCluster([replica]))
        assert violations and "more than once" in violations[0].message

    def test_cross_replica_order_divergence_is_flagged(self):
        first, second = _put("a"), _put("a")
        instances = {
            (0, 1): _einstance((0, 1), first, 1, ()),
            (1, 1): _einstance((1, 1), second, 1, ()),
        }
        a = _ereplica(dict(instances), [(0, 1), (1, 1)])
        b = _ereplica(dict(instances), [(1, 1), (0, 1)])
        violations = check_epaxos_execution_consistency(_FakeCluster([a, b]))
        assert violations and violations[0].checker == "epaxos_execution_consistency"

    def test_shorter_execution_prefix_is_not_divergence(self):
        """A replica that missed late commits executes a prefix, not a fork."""
        first, second = _put("a"), _put("a")
        instances = {
            (0, 1): _einstance((0, 1), first, 1, ()),
            (1, 1): _einstance((1, 1), second, 2, {(0, 1)}),
        }
        a = _ereplica(dict(instances), [(0, 1), (1, 1)])
        b = _ereplica({(0, 1): instances[(0, 1)]}, [(0, 1)])
        assert check_epaxos_execution_consistency(_FakeCluster([a, b])) == []

    def test_conflicting_instances_without_path_are_flagged(self):
        """Two executed same-key instances with no dependency path: the
        exact state a reply-accounting bug produces."""
        first, second = _put("a"), _put("a")
        instances = {
            (0, 1): _einstance((0, 1), first, 1, ()),
            (1, 1): _einstance((1, 1), second, 1, ()),  # no edge either way
        }
        replica = _ereplica(instances, [(0, 1), (1, 1)])
        violations = check_epaxos_conflict_ordering(_FakeCluster([replica]))
        assert violations and violations[0].checker == "epaxos_conflict_ordering"
        assert "no dependency path" in violations[0].message

    def test_transitive_path_satisfies_conflict_ordering(self):
        a_cmd, b_cmd, c_cmd = _put("a"), _put("a"), _put("a")
        instances = {
            (0, 1): _einstance((0, 1), a_cmd, 1, ()),
            (1, 1): _einstance((1, 1), b_cmd, 2, {(0, 1)}),
            (2, 1): _einstance((2, 1), c_cmd, 3, {(1, 1)}),
        }
        replica = _ereplica(instances, [(0, 1), (1, 1), (2, 1)])
        assert check_epaxos_conflict_ordering(_FakeCluster([replica])) == []

    def test_different_keys_never_need_ordering(self):
        instances = {
            (0, 1): _einstance((0, 1), _put("a"), 1, ()),
            (1, 1): _einstance((1, 1), _put("b"), 1, ()),
        }
        replica = _ereplica(instances, [(0, 1), (1, 1)])
        assert check_epaxos_conflict_ordering(_FakeCluster([replica])) == []

    def test_paxos_cluster_is_skipped_by_epaxos_checks(self):
        cluster = _FakeCluster([_replica(), _replica()])
        assert check_epaxos_instance_agreement(cluster) == []
        assert check_epaxos_execution_order(cluster) == []
        assert check_epaxos_execution_consistency(cluster) == []
        assert check_epaxos_conflict_ordering(cluster) == []
