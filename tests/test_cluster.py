"""Unit tests for the node CPU model, SimNode, topologies, faults and builder."""

from __future__ import annotations

import pytest

from repro.cluster.builder import ClusterBuilder, build_cluster
from repro.cluster.cpu import NodeCPUModel
from repro.cluster.faults import FaultKind, FaultSchedule
from repro.cluster.node import SimNode
from repro.cluster.topologies import lan_topology, paper_wan_regions, wan_topology
from repro.errors import ConfigurationError
from repro.net.latency import WANMatrixLatency
from repro.net.network import SimNetwork
from repro.protocol.base import Replica
from repro.sim.engine import Simulator


class _EchoReplica(Replica):
    """Replica that records messages and echoes each original back once."""

    protocol_name = "echo"

    def __init__(self) -> None:
        super().__init__()
        self.received = []

    def on_message(self, src, message):
        if isinstance(message, tuple) and message and message[0] == "echo":
            self.received.append((src, message[1]))
            return
        self.received.append((src, message))
        self.send(src, ("echo", message))


class TestNodeCPUModel:
    def test_costs_scale_with_size(self):
        cpu = NodeCPUModel(recv_per_message=1e-5, per_byte=1e-8)
        assert cpu.receive_cost(1000) == pytest.approx(2e-5)
        assert cpu.receive_cost(0) == pytest.approx(1e-5)

    def test_client_request_surcharge(self):
        cpu = NodeCPUModel(recv_per_message=1e-5, per_byte=0.0, client_request_extra=5e-5)
        assert cpu.receive_cost(100, is_client_request=True) == pytest.approx(6e-5)

    def test_scaled_model(self):
        cpu = NodeCPUModel().scaled(2.0)
        assert cpu.recv_per_message == pytest.approx(NodeCPUModel().recv_per_message * 2)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeCPUModel(recv_per_message=-1.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeCPUModel().scaled(0.0)


class TestSimNode:
    def _setup(self, cpu=None):
        sim = Simulator(seed=0)
        topology = lan_topology(2)
        network = SimNetwork(sim, topology)
        nodes = {}
        for node_id in (0, 1):
            node = SimNode(node_id, sim, network, cpu=cpu or NodeCPUModel(), all_nodes=[0, 1])
            node.host(_EchoReplica())
            nodes[node_id] = node
        return sim, network, nodes

    def test_message_roundtrip_through_nodes(self):
        sim, network, nodes = self._setup()
        nodes[0].replica.send(1, "ping")
        sim.run()
        assert nodes[1].replica.received == [(0, "ping")]
        assert nodes[0].replica.received == [(1, "ping")]

    def test_cpu_reservation_serializes_work(self):
        cpu = NodeCPUModel(recv_per_message=0.01, send_per_message=0.01, per_byte=0.0)
        sim, network, nodes = self._setup(cpu=cpu)
        for _ in range(5):
            nodes[0].replica.send(1, "x")
        sim.run()
        # 5 sends at 10ms each serialize on node 0's CPU before the last departs.
        assert nodes[0].busy_time_total >= 0.05 - 1e-9
        assert nodes[1].busy_time_total > 0

    def test_crashed_node_ignores_traffic_and_timers(self):
        sim, network, nodes = self._setup()
        nodes[1].crash()
        nodes[0].replica.send(1, "lost")
        sim.run()
        assert nodes[1].replica.received == []
        assert not nodes[1].is_reachable()

    def test_recovered_node_processes_again(self):
        sim, network, nodes = self._setup()
        nodes[1].crash()
        nodes[1].recover()
        nodes[0].replica.send(1, "hello")
        sim.run()
        assert nodes[1].replica.received == [(0, "hello")]

    def test_sluggish_factor_inflates_costs(self):
        cpu = NodeCPUModel(recv_per_message=0.001, send_per_message=0.001, per_byte=0.0)
        sim, network, nodes = self._setup(cpu=cpu)
        nodes[1].set_sluggish(10.0)
        nodes[0].replica.send(1, "x")
        sim.run()
        assert nodes[1].busy_time_total >= 0.01

    def test_sluggish_factor_must_be_positive(self):
        sim, network, nodes = self._setup()
        with pytest.raises(ValueError):
            nodes[0].set_sluggish(0)

    def test_charges_accumulate_busy_time(self):
        sim, network, nodes = self._setup()
        before = nodes[0].busy_time_total
        nodes[0].charge_execution(10)
        nodes[0].charge_graph_work(100)
        nodes[0].charge_overhead(2)
        assert nodes[0].busy_time_total > before


class TestTopologies:
    def test_lan_topology_size(self):
        topology = lan_topology(25)
        assert topology.size == 25
        assert topology.regions == []

    def test_lan_requires_positive_nodes(self):
        with pytest.raises(ConfigurationError):
            lan_topology(0)

    def test_paper_wan_regions_round_robin(self):
        regions = paper_wan_regions(15)
        assert sorted(regions) == ["california", "oregon", "virginia"]
        assert all(len(nodes) == 5 for nodes in regions.values())

    def test_wan_topology_builds_regions_and_matrix(self):
        topology = wan_topology(num_nodes=15)
        assert topology.size == 15
        assert isinstance(topology.latency, WANMatrixLatency)
        assert len(topology.regions) == 3
        assert topology.region_of(0) is not None

    def test_wan_topology_explicit_regions(self):
        topology = wan_topology(region_nodes={"virginia": [0, 1], "oregon": [2]})
        assert topology.nodes_in_region("virginia") == [0, 1]

    def test_wan_topology_requires_input(self):
        with pytest.raises(ConfigurationError):
            wan_topology()


class TestFaultSchedule:
    def test_crash_window_produces_two_events(self):
        schedule = FaultSchedule().crash_window(3, 1.0, 2.0)
        kinds = [event.kind for event in schedule]
        assert kinds == [FaultKind.CRASH, FaultKind.RECOVER]

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().crash_window(3, 2.0, 1.0)

    def test_events_iterate_in_time_order(self):
        schedule = FaultSchedule().recover(1, at=5.0).crash(1, at=1.0)
        times = [event.at for event in schedule]
        assert times == [1.0, 5.0]

    def test_sluggish_with_until_restores(self):
        schedule = FaultSchedule().sluggish(2, at=1.0, factor=4.0, until=2.0)
        events = list(schedule)
        assert events[0].factor == 4.0 and events[1].factor == 1.0

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().crash(0, at=-1.0)


class TestBuilder:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterBuilder().protocol("raft")

    def test_builder_wires_nodes_clients_and_replicas(self):
        cluster = (
            ClusterBuilder()
            .protocol("pigpaxos")
            .nodes(5)
            .relay_groups(2)
            .clients(3)
            .seed(11)
            .build()
        )
        assert len(cluster.nodes) == 5
        assert len(cluster.clients) == 3
        assert cluster.protocol == "pigpaxos"
        replica = cluster.nodes[0].replica
        assert replica.pig_config.num_relay_groups == 2

    def test_epaxos_clients_use_random_targets(self):
        cluster = build_cluster(protocol="epaxos", num_nodes=3, num_clients=2, seed=1)
        assert all(client._target_policy == "random" for client in cluster.clients)

    def test_paxos_clients_target_leader(self):
        cluster = build_cluster(protocol="paxos", num_nodes=3, num_clients=2, seed=1)
        assert all(client._target_policy == "leader" for client in cluster.clients)

    def test_fault_schedule_applied_during_run(self):
        schedule = FaultSchedule().crash(4, at=0.1)
        cluster = build_cluster(protocol="paxos", num_nodes=5, num_clients=1, seed=1,
                                fault_schedule=schedule)
        cluster.run(0.2)
        assert cluster.nodes[4].crashed

    def test_cluster_run_is_repeatable_for_same_seed(self):
        first = build_cluster(protocol="paxos", num_nodes=5, num_clients=5, seed=9)
        first.run(0.3)
        second = build_cluster(protocol="paxos", num_nodes=5, num_clients=5, seed=9)
        second.run(0.3)
        assert first.total_completed_requests() == second.total_completed_requests()


class TestSessionWindowWiring:
    def test_session_window_reaches_both_protocols(self):
        from repro.protocol.config import ProtocolConfig

        config = ProtocolConfig(session_window=4)
        paxos = build_cluster(protocol="paxos", num_nodes=3, num_clients=1, protocol_config=config)
        assert paxos.nodes[0].replica._client_sessions.window == 4
        epaxos = build_cluster(protocol="epaxos", num_nodes=3, num_clients=1, protocol_config=config)
        assert epaxos.nodes[0].replica._session_window == 4

    def test_epaxos_without_config_uses_default_window(self):
        from repro.statemachine.sessions import DEFAULT_SESSION_WINDOW

        cluster = build_cluster(protocol="epaxos", num_nodes=3, num_clients=1)
        assert cluster.nodes[0].replica._session_window == DEFAULT_SESSION_WINDOW

    def test_epaxos_rejects_non_session_config_fields(self):
        from repro.protocol.config import ProtocolConfig

        with pytest.raises(ConfigurationError):
            build_cluster(
                protocol="epaxos", num_nodes=3, num_clients=1,
                protocol_config=ProtocolConfig(heartbeat_interval=0.2),
            )
