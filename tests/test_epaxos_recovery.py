"""Unit tests for EPaxos explicit-prepare recovery and its companions.

Covers, on hand-built replica states (FakeContext, no simulator):

* ballot plumbing -- promises, nacks, and the default-ballot fast path
  staying byte-identical;
* every row of the recovery decision table (adopt commit / finish accept /
  quorum of default PreAccepts / re-run PreAccept / no-op);
* lazy arming -- no recovery event is ever scheduled unless execution has
  been blocked on an uncommitted dependency past the deadline;
* the leader-side round retry (``ProtocolConfig.leader_retry_timeout``);
* the relay overlay's commit-durability fallback
  (``OverlayConfig.commit_fallback_timeout``);
* checker legality of recovered no-ops.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from helpers import FakeContext
from repro.checkers.invariants import (
    check_epaxos_conflict_ordering,
    check_epaxos_execution_consistency,
    check_epaxos_execution_order,
    check_epaxos_instance_agreement,
)
from repro.epaxos.messages import (
    EAccept,
    EAcceptReply,
    ECommit,
    EPreAccept,
    EPreAcceptReply,
    EPrepare,
    EPrepareReply,
    initial_ballot,
)
from repro.epaxos.replica import EPaxosReplica
from repro.overlay.messages import RelayAggregate, RelayRequest
from repro.overlay.relay import RelayFanout
from repro.statemachine.command import Command, NoOp, OpType


def _put(key="k", client=7, req=1):
    return Command(op=OpType.PUT, key=key, value="v", client_id=client, request_id=req)


def _replica(node_id=0, recovery_timeout=None, leader_retry_timeout=None, nodes=(0, 1, 2, 3, 4)):
    replica = EPaxosReplica(
        recovery_timeout=recovery_timeout, leader_retry_timeout=leader_retry_timeout
    )
    ctx = FakeContext(node_id=node_id, all_nodes=nodes)
    replica.bind(ctx)
    return replica, ctx


def _prepare_reply(instance, voter, *, status, command, seq=1, deps=frozenset(),
                   ballot, attr_ballot=None, changed=False, ok=True):
    return EPrepareReply(
        instance=instance, voter=voter, ok=ok, ballot=ballot, status=status,
        seq=seq, deps=frozenset(deps), command=command,
        attr_ballot=attr_ballot if attr_ballot is not None else initial_ballot(instance),
        changed=changed,
    )


def _block_and_trip_deadline(replica, ctx, dep=(4, 1), key="k"):
    """Commit an instance depending on ``dep`` and run past the deadline.

    Returns the recovery ballot the replica should be using for ``dep``.
    """
    command = _put(key)
    replica._on_commit(4, ECommit(instance=(4, 2), command=command, seq=2, deps=frozenset({dep})))
    assert (4, 2) in replica._pending_execution  # blocked on the orphan
    ctx.advance(replica._recovery_timeout + 0.01)
    replica._try_execute()
    return (1, replica.node_id)


class TestBallots:
    def test_round_messages_default_to_origin_ballot(self):
        pre = EPreAccept(instance=(3, 9), command=_put(), seq=1, deps=frozenset())
        assert pre.ballot == (0, 3)
        acc = EAccept(instance=(3, 9), command=_put(), seq=1, deps=frozenset())
        assert acc.ballot == (0, 3)

    def test_preaccept_below_promised_ballot_is_nacked(self):
        replica, ctx = _replica(node_id=1)
        instance = (4, 1)
        promise = replica._handle_prepare(EPrepare(instance=instance, ballot=(3, 2)))
        assert promise.ok and promise.status == "unknown"
        reply = replica._handle_preaccept(
            EPreAccept(instance=instance, command=_put(), seq=1, deps=frozenset())
        )
        assert not reply.ok
        assert reply.ballot == (3, 2)

    def test_accept_below_promised_ballot_is_nacked(self):
        replica, ctx = _replica(node_id=1)
        instance = (4, 1)
        replica._handle_prepare(EPrepare(instance=instance, ballot=(3, 2)))
        reply = replica._handle_accept(
            EAccept(instance=instance, command=_put(), seq=1, deps=frozenset())
        )
        assert not reply.ok and reply.ballot == (3, 2)

    def test_stale_prepare_is_nacked_with_current_ballot(self):
        replica, ctx = _replica(node_id=1)
        instance = (4, 1)
        replica._handle_prepare(EPrepare(instance=instance, ballot=(5, 3)))
        reply = replica._handle_prepare(EPrepare(instance=instance, ballot=(2, 2)))
        assert not reply.ok and reply.ballot == (5, 3)

    def test_conflicting_second_commit_is_refused_first_wins(self):
        """Two different commits for one instance (a broken recovery) must
        not silently converge on the last writer: the first commit is kept
        so the instance-agreement checker can still see the divergence."""
        replica, ctx = _replica(node_id=1)
        original = _put("k", client=1, req=1)
        # A dependency on an uncommitted instance keeps (4, 1) committed but
        # un-executed, the window in which an overwrite could still hide.
        deps = frozenset({(4, 9)})
        replica._on_commit(4, ECommit(instance=(4, 1), command=original, seq=2, deps=deps))
        assert replica.instances[(4, 1)].status == "committed"
        impostor = NoOp()
        replica._on_commit(0, ECommit(instance=(4, 1), command=impostor, seq=1, deps=frozenset()))
        assert replica.instances[(4, 1)].command is original
        assert replica.instances[(4, 1)].deps == deps
        assert replica.ctx.metrics.counter(
            "epaxos.conflicting_commit_overwrites_refused").value == 1
        # An identical re-delivery (same uid) is still idempotent and fine.
        replica._on_commit(4, ECommit(instance=(4, 1), command=original, seq=2, deps=deps))
        assert replica.instances[(4, 1)].command is original

    def test_prepare_reports_preaccepted_state_and_changed_flag(self):
        replica, ctx = _replica(node_id=1)
        # Local conflict so the PreAccept answer is "changed".
        other = _put("k")
        replica._on_commit(2, ECommit(instance=(2, 1), command=other, seq=1, deps=frozenset()))
        instance = (4, 1)
        replica._handle_preaccept(
            EPreAccept(instance=instance, command=_put("k"), seq=1, deps=frozenset())
        )
        reply = replica._handle_prepare(EPrepare(instance=instance, ballot=(1, 0)))
        assert reply.ok and reply.status == "preaccepted"
        assert reply.changed  # the local conflict updated the attributes
        assert (2, 1) in reply.deps
        assert reply.attr_ballot == initial_ballot(instance)


class TestLazyArming:
    def test_no_recovery_when_disabled(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=None)
        replica._on_commit(
            4, ECommit(instance=(4, 2), command=_put(), seq=2, deps=frozenset({(4, 1)}))
        )
        ctx.advance(10.0)
        replica._try_execute()
        assert not ctx.timers
        assert not ctx.sent_of_type(EPrepare)
        assert not replica._recoveries

    def test_blocked_dep_arms_exactly_one_deadline_timer(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        replica._on_commit(
            4, ECommit(instance=(4, 2), command=_put(), seq=2, deps=frozenset({(4, 1)}))
        )
        # Blocked: a stamp plus one deadline timer, but no recovery round yet.
        assert len(ctx.pending_timers()) == 1
        assert ctx.pending_timers()[0].delay == 0.3
        assert not ctx.sent_of_type(EPrepare)
        ctx.advance(0.1)
        replica._try_execute()
        # Re-entering before the deadline arms nothing new.
        assert len(ctx.pending_timers()) == 1
        assert not ctx.sent_of_type(EPrepare)
        assert (4, 1) in replica._first_blocked

    def test_quiescent_cluster_recovers_via_the_deadline_timer(self):
        """No further commits arrive after the blockage: the deadline timer
        alone must open the recovery round (a cluster gone quiet must not
        stay blocked forever)."""
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        replica._on_commit(
            4, ECommit(instance=(4, 2), command=_put(), seq=2, deps=frozenset({(4, 1)}))
        )
        [deadline_timer] = ctx.pending_timers()
        ctx.advance(0.3)
        deadline_timer.fire()
        prepares = ctx.sent_of_type(EPrepare)
        assert {dst for dst, _ in prepares} == {1, 2, 3, 4}
        assert (4, 1) in replica._recoveries

    def test_deadline_timer_is_cancelled_when_dep_commits_in_time(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        replica._on_commit(
            4, ECommit(instance=(4, 2), command=_put(), seq=2, deps=frozenset({(4, 1)}))
        )
        [deadline_timer] = ctx.pending_timers()
        replica._on_commit(4, ECommit(instance=(4, 1), command=_put(), seq=1, deps=frozenset()))
        assert deadline_timer.cancelled
        assert not replica._blocked_timers and not replica._first_blocked

    def test_recovery_starts_after_deadline(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        _block_and_trip_deadline(replica, ctx)
        prepares = ctx.sent_of_type(EPrepare)
        assert {dst for dst, _ in prepares} == {1, 2, 3, 4}
        assert all(msg.ballot == (1, 0) for _, msg in prepares)
        assert (4, 1) in replica._recoveries
        assert ctx.pending_timers()  # recovery retry timer (+ deadline timer)

    def test_commit_of_blocked_dep_clears_stamp_and_recovery(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        _block_and_trip_deadline(replica, ctx)
        timer = replica._recoveries[(4, 1)].timer
        replica._on_commit(4, ECommit(instance=(4, 1), command=_put(), seq=1, deps=frozenset()))
        assert (4, 1) not in replica._recoveries
        assert (4, 1) not in replica._first_blocked
        assert timer.cancelled
        # Both instances now execute.
        assert replica.graph.is_executed((4, 1)) and replica.graph.is_executed((4, 2))


class TestDecisionTable:
    def test_commit_evidence_is_adopted_immediately(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        ballot = _block_and_trip_deadline(replica, ctx)
        command = _put()
        reply = _prepare_reply(
            (4, 1), 1, status="committed", command=command, seq=3,
            deps=frozenset(), ballot=ballot,
        )
        replica._on_prepare_reply(1, reply)
        instance = replica.instances[(4, 1)]
        assert instance.status in ("committed", "executed")
        assert instance.seq == 3 and instance.command is command
        commits = [m for _, m in ctx.sent_of_type(ECommit) if m.instance == (4, 1)]
        assert commits and commits[0].seq == 3
        assert (4, 1) not in replica._recoveries

    def test_accepted_evidence_finishes_phase_two(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        ballot = _block_and_trip_deadline(replica, ctx)
        command = _put()
        # Highest attr_ballot must win among accepted replies.
        replica._on_prepare_reply(1, _prepare_reply(
            (4, 1), 1, status="accepted", command=command, seq=4,
            deps=frozenset({(0, 9)}), ballot=ballot, attr_ballot=(0, 4)))
        replica._on_prepare_reply(2, _prepare_reply(
            (4, 1), 2, status="accepted", command=command, seq=6,
            deps=frozenset({(0, 11)}), ballot=ballot, attr_ballot=(1, 3)))
        accepts = [m for _, m in ctx.sent_of_type(EAccept) if m.instance == (4, 1)]
        assert accepts, "recovery must run phase 2"
        assert accepts[0].ballot == ballot
        assert accepts[0].seq == 6 and accepts[0].deps == frozenset({(0, 11)})
        # A quorum of accept acks commits the recovered decision.
        replica._on_accept_reply(1, EAcceptReply(instance=(4, 1), voter=1, ok=True, ballot=ballot))
        replica._on_accept_reply(2, EAcceptReply(instance=(4, 1), voter=2, ok=True, ballot=ballot))
        assert replica.instances[(4, 1)].status in ("committed", "executed")
        assert replica.graph.is_committed((4, 1))

    def test_quorum_of_unchanged_default_preaccepts_recovers_attributes(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        ballot = _block_and_trip_deadline(replica, ctx)
        command = _put()
        attrs = dict(seq=5, deps=frozenset({(2, 3)}))
        # n=5 -> f=2 -> floor((f+1)/2) = 1 identical unchanged default reply
        # (not from the crashed origin) forces these attributes.
        replica._on_prepare_reply(1, _prepare_reply(
            (4, 1), 1, status="preaccepted", command=command, ballot=ballot,
            changed=False, **attrs))
        replica._on_prepare_reply(2, _prepare_reply(
            (4, 1), 2, status="none", command=None, ballot=ballot))
        accepts = [m for _, m in ctx.sent_of_type(EAccept) if m.instance == (4, 1)]
        assert accepts and accepts[0].seq == 5 and accepts[0].deps == frozenset({(2, 3)})
        assert replica.ctx.metrics.counter(
            "epaxos.recoveries_from_default_preaccepts").value == 1

    def test_changed_preaccepts_rerun_phase_one_slow_path(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        ballot = _block_and_trip_deadline(replica, ctx)
        command = _put()
        replica._on_prepare_reply(1, _prepare_reply(
            (4, 1), 1, status="preaccepted", command=command, seq=2,
            deps=frozenset({(1, 1)}), ballot=ballot, changed=True))
        replica._on_prepare_reply(2, _prepare_reply(
            (4, 1), 2, status="none", command=None, ballot=ballot))
        # Row 4: a fresh PreAccept round at the recovery ballot, no Accept yet.
        pres = [m for _, m in ctx.sent_of_type(EPreAccept) if m.instance == (4, 1)]
        assert pres and pres[-1].ballot == ballot
        assert not [m for _, m in ctx.sent_of_type(EAccept) if m.instance == (4, 1)]
        # Acceptors merge fresh conflicts; a majority of replies moves to Accept.
        replica._on_preaccept_reply(1, EPreAcceptReply(
            instance=(4, 1), voter=1, ok=True, seq=7, deps=frozenset({(1, 1), (3, 2)}),
            changed=True, ballot=ballot))
        replica._on_preaccept_reply(2, EPreAcceptReply(
            instance=(4, 1), voter=2, ok=True, seq=2, deps=frozenset({(1, 1)}),
            changed=False, ballot=ballot))
        accepts = [m for _, m in ctx.sent_of_type(EAccept) if m.instance == (4, 1)]
        assert accepts, "re-run PreAccept must finish through the slow path"
        assert accepts[0].seq >= 7 and {(1, 1), (3, 2)} <= set(accepts[0].deps)

    def test_unknown_instance_is_noop_committed_with_no_edges(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        ballot = _block_and_trip_deadline(replica, ctx)
        for voter in (1, 2):
            replica._on_prepare_reply(voter, _prepare_reply(
                (4, 1), voter, status="none", command=None, ballot=ballot))
        accepts = [m for _, m in ctx.sent_of_type(EAccept) if m.instance == (4, 1)]
        assert accepts and isinstance(accepts[0].command, NoOp)
        assert accepts[0].deps == frozenset()
        replica._on_accept_reply(1, EAcceptReply(instance=(4, 1), voter=1, ok=True, ballot=ballot))
        replica._on_accept_reply(2, EAcceptReply(instance=(4, 1), voter=2, ok=True, ballot=ballot))
        # The no-op commits, unblocking the dependent instance.
        assert replica.graph.is_executed((4, 1))
        assert replica.graph.is_executed((4, 2))
        assert replica.ctx.metrics.counter("epaxos.recovery_noop_commits").value == 1
        # The no-op applied without touching the store's keyspace.
        assert "k" in replica.store  # from the dependent instance only

    def test_edge_free_committed_conflict_disproves_the_fast_path(self):
        """A committed same-key conflict with no edge in either direction
        proves the orphan never fast-committed; row 3 must downgrade to the
        PreAccept re-run so the lost edge is restored."""
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        # Commit conflicting W on the same key, no edge to/from the orphan.
        w_command = _put("k", client=9, req=1)
        replica._on_commit(1, ECommit(instance=(1, 1), command=w_command, seq=1, deps=frozenset()))
        ballot = _block_and_trip_deadline(replica, ctx)
        orphan_cmd = _put("k", client=8, req=1)
        # One unchanged default-ballot reply whose attributes miss W.
        replica._on_prepare_reply(1, _prepare_reply(
            (4, 1), 1, status="preaccepted", command=orphan_cmd, seq=1,
            deps=frozenset(), ballot=ballot, changed=False))
        replica._on_prepare_reply(2, _prepare_reply(
            (4, 1), 2, status="none", command=None, ballot=ballot))
        # Not a direct Accept of the edge-missing attrs: a re-run PreAccept.
        assert replica.ctx.metrics.counter(
            "epaxos.recoveries_fast_path_disproved").value == 1
        pres = [m for _, m in ctx.sent_of_type(EPreAccept) if m.instance == (4, 1)]
        assert pres and pres[-1].ballot == ballot
        assert not [m for _, m in ctx.sent_of_type(EAccept) if m.instance == (4, 1)]

    def test_noop_never_answers_the_original_client(self):
        """If a still-alive leader's instance is recovered as a no-op, the
        client must NOT get a success reply for its lost write."""
        from repro.protocol.messages import ClientReply

        replica, ctx = _replica(node_id=0)
        replica._on_client_request(1007, SimpleNamespace(command=_put("k", client=1007, req=1)))
        instance_id = (0, 1)
        assert replica.instances[instance_id].leader_here
        # A recovery elsewhere commits the instance as a no-op.
        replica._on_commit(2, ECommit(instance=instance_id, command=NoOp(), seq=1, deps=frozenset()))
        assert replica.graph.is_executed(instance_id)
        assert not ctx.sent_of_type(ClientReply)

    def test_recovery_preaccept_preserves_leader_bookkeeping(self):
        """A recovery re-PreAccept reaching the alive original leader keeps
        leader_here/client_id, so the leader still answers its client when
        the recovered (real) command commits."""
        from repro.protocol.messages import ClientReply

        replica, ctx = _replica(node_id=0)
        command = _put("k", client=1007, req=1)
        replica._on_client_request(1007, SimpleNamespace(command=command))
        instance_id = (0, 1)
        recovery_pre = EPreAccept(
            instance=instance_id, command=command, seq=1, deps=frozenset(), ballot=(1, 2)
        )
        reply = replica._handle_preaccept(recovery_pre)
        assert reply.ok
        instance = replica.instances[instance_id]
        assert instance.leader_here and instance.client_id == 1007
        assert instance.ballot == (1, 2)
        # The recovery commits the real command: the client gets its answer.
        replica._on_commit(2, ECommit(instance=instance_id, command=command, seq=1, deps=frozenset()))
        replies = ctx.sent_of_type(ClientReply)
        assert replies and replies[0][0] == 1007

    def test_duplicate_prepare_replies_do_not_fake_a_quorum(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        ballot = _block_and_trip_deadline(replica, ctx)
        reply = _prepare_reply((4, 1), 1, status="none", command=None, ballot=ballot)
        replica._on_prepare_reply(1, reply)
        replica._on_prepare_reply(1, reply)  # retransmission
        # Quorum is 3 (self + 2 distinct voters); one duplicated voter is not enough.
        assert not [m for _, m in ctx.sent_of_type(EAccept) if m.instance == (4, 1)]
        assert replica._recoveries[(4, 1)].phase == "prepare"

    def test_preempted_recovery_retries_with_higher_ballot(self):
        replica, ctx = _replica(node_id=0, recovery_timeout=0.3)
        _block_and_trip_deadline(replica, ctx)
        nack = _prepare_reply((4, 1), 1, status="preaccepted", command=None,
                              ballot=(5, 3), ok=False)
        replica._on_prepare_reply(1, nack)
        assert replica._recoveries[(4, 1)].preempted_by == (5, 3)
        retry_timer = replica._recoveries[(4, 1)].timer
        retry_timer.fire()
        new_recovery = replica._recoveries[(4, 1)]
        assert new_recovery.ballot > (5, 3)
        assert new_recovery.ballot[1] == replica.node_id


class TestLeaderRetry:
    def test_stalled_preaccept_round_is_resent(self):
        replica, ctx = _replica(node_id=0, leader_retry_timeout=0.2)
        replica._on_client_request(1007, SimpleNamespace(command=_put()))
        first = ctx.sent_of_type(EPreAccept)
        assert len(first) == 4
        [timer] = ctx.pending_timers()
        timer.fire()
        assert len(ctx.sent_of_type(EPreAccept)) == 8  # re-broadcast
        assert replica.ctx.metrics.counter("epaxos.leader_round_retries").value == 1

    def test_commit_cancels_the_retry_timer(self):
        replica, ctx = _replica(node_id=0, leader_retry_timeout=0.2)
        replica._on_client_request(1007, SimpleNamespace(command=_put()))
        instance_id = (0, 1)
        for voter in (1, 2):
            replica._on_preaccept_reply(voter, EPreAcceptReply(
                instance=instance_id, voter=voter, ok=True,
                seq=1, deps=frozenset(), changed=False))
        assert replica.instances[instance_id].status in ("committed", "executed")
        assert not ctx.pending_timers()

    def test_no_timer_without_the_knob(self):
        replica, ctx = _replica(node_id=0, leader_retry_timeout=None)
        replica._on_client_request(1007, SimpleNamespace(command=_put()))
        assert not ctx.timers

    def test_retry_resends_accept_in_slow_path(self):
        replica, ctx = _replica(node_id=0, leader_retry_timeout=0.2)
        replica._on_client_request(1007, SimpleNamespace(command=_put()))
        instance_id = (0, 1)
        replica._on_preaccept_reply(1, EPreAcceptReply(
            instance=instance_id, voter=1, ok=True,
            seq=2, deps=frozenset({(1, 1)}), changed=True))
        replica._on_preaccept_reply(2, EPreAcceptReply(
            instance=instance_id, voter=2, ok=True,
            seq=1, deps=frozenset(), changed=False))
        assert replica.instances[instance_id].status == "accepted"
        [timer] = ctx.pending_timers()
        before = len(ctx.sent_of_type(EAccept))
        timer.fire()
        assert len(ctx.sent_of_type(EAccept)) == before + 4


class TestRelayCommitFallback:
    def _relay_replica(self, timeout=0.5):
        overlay = RelayFanout(num_groups=2, commit_fallback_timeout=timeout)
        replica = EPaxosReplica(overlay=overlay)
        ctx = FakeContext(node_id=0, all_nodes=(0, 1, 2, 3, 4))
        replica.bind(ctx)
        return replica, overlay, ctx

    def test_fire_and_forget_requests_demand_acks(self):
        replica, overlay, ctx = self._relay_replica()
        commit = ECommit(instance=(0, 1), command=_put(), seq=1, deps=frozenset())
        overlay.wide_cast(commit, expects_response=False)
        requests = ctx.sent_of_type(RelayRequest)
        assert requests and all(msg.ack for _, msg in requests)
        assert overlay._pending_commits

    def test_without_the_knob_no_acks_are_requested(self):
        overlay = RelayFanout(num_groups=2)
        replica = EPaxosReplica(overlay=overlay)
        ctx = FakeContext(node_id=0, all_nodes=(0, 1, 2, 3, 4))
        replica.bind(ctx)
        commit = ECommit(instance=(0, 1), command=_put(), seq=1, deps=frozenset())
        overlay.wide_cast(commit, expects_response=False)
        assert all(not msg.ack for _, msg in ctx.sent_of_type(RelayRequest))
        assert not ctx.timers

    def test_silent_relay_subtree_is_resent_directly(self):
        replica, overlay, ctx = self._relay_replica()
        commit = ECommit(instance=(0, 1), command=_put(), seq=1, deps=frozenset())
        overlay.wide_cast(commit, expects_response=False)
        requests = ctx.sent_of_type(RelayRequest)
        (agg_id,) = {msg.agg_id for _, msg in requests}
        relays = [dst for dst, _ in requests]
        # One relay acks, the other stays silent (crashed).
        alive, dead = relays[0], relays[1]
        overlay._on_aggregate(alive, RelayAggregate(agg_id=agg_id, responses=(), origin=alive))
        ctx.clear_sent()
        [timer] = ctx.pending_timers()
        timer.fire()
        resent = ctx.sent_of_type(ECommit)
        assert resent, "silent relay's subtree must get the commit directly"
        targets = {dst for dst, _ in resent}
        assert dead in targets
        assert alive not in targets
        assert replica.ctx.metrics.counter("epaxos.commit_fallbacks").value == 1

    def test_all_acks_disarm_the_fallback(self):
        replica, overlay, ctx = self._relay_replica()
        commit = ECommit(instance=(0, 1), command=_put(), seq=1, deps=frozenset())
        overlay.wide_cast(commit, expects_response=False)
        requests = ctx.sent_of_type(RelayRequest)
        (agg_id,) = {msg.agg_id for _, msg in requests}
        for relay, _ in requests:
            overlay._on_aggregate(relay, RelayAggregate(agg_id=agg_id, responses=(), origin=relay))
        assert not overlay._pending_commits
        assert all(t.cancelled for t in ctx.timers)

    def test_relay_acks_fire_and_forget_requests_with_ack_flag(self):
        # The *relay* side: process, forward, then ack the parent.
        replica, overlay, ctx = self._relay_replica()
        commit = ECommit(instance=(3, 1), command=_put(), seq=1, deps=frozenset())
        from repro.overlay.messages import RelaySubtree

        request = RelayRequest(
            inner=commit, children=(RelaySubtree(2),), agg_id=42,
            timeout=0.05, expects_response=False, ack=True,
        )
        overlay._on_relay_request(3, request)
        acks = [(dst, m) for dst, m in ctx.sent_of_type(RelayAggregate)]
        assert acks == [(3, acks[0][1])] and acks[0][1].agg_id == 42
        # The commit was also forwarded to the child and applied locally.
        assert [dst for dst, _ in ctx.sent_of_type(RelayRequest)] == [2]
        assert replica.graph.is_committed((3, 1))


class _FakeCluster:
    def __init__(self, replicas):
        self.nodes = {
            node_id: SimpleNamespace(replica=replica)
            for node_id, replica in enumerate(replicas)
        }


class TestRecoveredNoOpsAreLegal:
    """Recovered no-ops must pass the execution-order and conflict checks."""

    def _noop_layout(self):
        first = _put("a", client=1, req=1)
        second = _put("a", client=2, req=1)
        noop = NoOp()
        # (4, 1) was orphaned and recovered as a no-op preserving its edge
        # to (0, 1); (1, 1) conflicts with (0, 1) and depends on both.
        layout = {
            (0, 1): (frozenset(), 1, first, "executed"),
            (4, 1): (frozenset({(0, 1)}), 2, noop, "executed"),
            (1, 1): (frozenset({(0, 1), (4, 1)}), 3, second, "executed"),
        }
        executed = [(0, 1), (4, 1), (1, 1)]
        return layout, executed

    def _ereplica(self, layout, executed):
        from repro.epaxos.graph import DependencyGraph

        instances = {
            iid: SimpleNamespace(instance=iid, deps=deps, seq=seq, command=cmd, status=status)
            for iid, (deps, seq, cmd, status) in layout.items()
        }
        graph = DependencyGraph()
        for iid, (deps, seq, cmd, status) in layout.items():
            if status in ("committed", "executed"):
                graph.add_committed(iid, seq, deps)
        for iid in executed:
            graph.mark_executed(iid)
        return SimpleNamespace(instances=instances, graph=graph, executed_order=list(executed))

    def test_noop_with_preserved_edges_passes_every_check(self):
        layout, executed = self._noop_layout()
        cluster = _FakeCluster([self._ereplica(layout, executed) for _ in range(2)])
        assert check_epaxos_instance_agreement(cluster) == []
        assert check_epaxos_execution_order(cluster) == []
        assert check_epaxos_execution_consistency(cluster) == []
        assert check_epaxos_conflict_ordering(cluster) == []

    def test_noop_must_still_respect_its_preserved_edges(self):
        layout, executed = self._noop_layout()
        # Mutation: the no-op executes before the dependency its recovery
        # preserved -- the execution-order checker must flag it.
        broken = [(4, 1), (0, 1), (1, 1)]
        cluster = _FakeCluster([self._ereplica(layout, broken)])
        violations = check_epaxos_execution_order(cluster)
        assert violations and violations[0].checker == "epaxos_execution_order"

    def test_noop_disagreeing_with_a_real_commit_is_flagged(self):
        layout, executed = self._noop_layout()
        good = self._ereplica(layout, executed)
        # A replica that committed and executed the *real* command for (4, 1)
        # while recovery no-op'ed it elsewhere: instance agreement must fire.
        real = dict(layout)
        real[(4, 1)] = (frozenset({(0, 1)}), 2, _put("a", client=3, req=1), "executed")
        bad = self._ereplica(real, executed)
        violations = check_epaxos_instance_agreement(_FakeCluster([good, bad]))
        assert violations and violations[0].checker == "epaxos_instance_agreement"


class TestConfigWiring:
    def test_builder_threads_recovery_knobs_to_epaxos(self):
        from repro.cluster.builder import build_cluster
        from repro.protocol.config import ProtocolConfig

        cluster = build_cluster(
            protocol="epaxos", num_nodes=3, num_clients=1,
            protocol_config=ProtocolConfig(recovery_timeout=0.5, leader_retry_timeout=0.4),
        )
        replica = cluster.nodes[0].replica
        assert replica._recovery_timeout == 0.5
        assert replica._leader_retry_timeout == 0.4

    def test_invalid_timeouts_rejected(self):
        from repro.errors import ConfigurationError
        from repro.protocol.config import ProtocolConfig

        with pytest.raises(ConfigurationError):
            ProtocolConfig(recovery_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(leader_retry_timeout=-1.0)

    def test_paxos_rejects_the_epaxos_only_knobs(self):
        """Silently ignoring a timeout knob is worse than rejecting it."""
        from repro.cluster.builder import build_cluster
        from repro.core.config import PigPaxosConfig
        from repro.errors import ConfigurationError
        from repro.protocol.config import ProtocolConfig

        with pytest.raises(ConfigurationError):
            build_cluster(
                protocol="paxos", num_nodes=3, num_clients=1,
                protocol_config=ProtocolConfig(leader_retry_timeout=0.3),
            )
        with pytest.raises(ConfigurationError):
            build_cluster(
                protocol="paxos", num_nodes=3, num_clients=1,
                protocol_config=ProtocolConfig(recovery_timeout=0.3),
            )
        with pytest.raises(ConfigurationError):
            PigPaxosConfig(recovery_timeout=0.3)
        # PigPaxos keeps its own leader retry default untouched.
        assert PigPaxosConfig().leader_retry_timeout == 0.15

    def test_commit_fallback_timeout_rejected_when_non_positive(self):
        from repro.errors import ConfigurationError
        from repro.overlay.config import OverlayConfig

        with pytest.raises(ConfigurationError):
            OverlayConfig(kind="relay", commit_fallback_timeout=0.0)
        config = OverlayConfig(kind="relay", commit_fallback_timeout=0.2)
        assert config.commit_fallback_timeout == 0.2
