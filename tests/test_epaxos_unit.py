"""Unit tests for the EPaxos replica and its dependency graph."""

from __future__ import annotations

import pytest

from helpers import FakeContext

from repro.epaxos.graph import DependencyGraph
from repro.epaxos.messages import (
    EAccept,
    EAcceptReply,
    ECommit,
    EPreAccept,
    EPreAcceptReply,
)
from repro.epaxos.replica import EPaxosReplica
from repro.protocol.messages import ClientReply, ClientRequest
from repro.statemachine.command import Command, OpType


def make_replica(node_id=0, cluster=5):
    ctx = FakeContext(node_id=node_id, all_nodes=list(range(cluster)))
    replica = EPaxosReplica()
    replica.bind(ctx)
    replica.start()
    return replica, ctx


def request(key="k", client_id=1000, request_id=1) -> ClientRequest:
    return ClientRequest(
        command=Command(op=OpType.PUT, key=key, payload_size=8, client_id=client_id, request_id=request_id)
    )


class TestDependencyGraph:
    def test_linear_chain_executes_in_dependency_order(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=1, deps=frozenset())
        graph.add_committed((0, 2), seq=2, deps=frozenset({(0, 1)}))
        order, visited = graph.execution_order((0, 2))
        assert order == [(0, 1), (0, 2)]
        assert visited >= 2

    def test_blocked_on_uncommitted_dependency(self):
        graph = DependencyGraph()
        graph.add_committed((0, 2), seq=2, deps=frozenset({(0, 1)}))
        order, _ = graph.execution_order((0, 2))
        assert order == []

    def test_cycle_resolved_by_seq_then_instance(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=2, deps=frozenset({(1, 1)}))
        graph.add_committed((1, 1), seq=1, deps=frozenset({(0, 1)}))
        order, _ = graph.execution_order((0, 1))
        assert order == [(1, 1), (0, 1)]  # lower seq first within the SCC

    def test_executed_dependencies_are_skipped(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=1, deps=frozenset())
        graph.mark_executed((0, 1))
        graph.add_committed((0, 2), seq=2, deps=frozenset({(0, 1)}))
        order, _ = graph.execution_order((0, 2))
        assert order == [(0, 2)]

    def test_already_executed_root_returns_empty(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=1, deps=frozenset())
        graph.mark_executed((0, 1))
        assert graph.execution_order((0, 1)) == ([], 0)

    def test_diamond_dependencies(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=1, deps=frozenset())
        graph.add_committed((1, 1), seq=2, deps=frozenset({(0, 1)}))
        graph.add_committed((2, 1), seq=2, deps=frozenset({(0, 1)}))
        graph.add_committed((3, 1), seq=3, deps=frozenset({(1, 1), (2, 1)}))
        order, _ = graph.execution_order((3, 1))
        assert order[0] == (0, 1)
        assert order[-1] == (3, 1)
        assert set(order) == {(0, 1), (1, 1), (2, 1), (3, 1)}


class TestCommandLeaderPath:
    def test_preaccept_broadcast_to_all_peers(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request())
        preaccepts = ctx.sent_of_type(EPreAccept)
        assert len(preaccepts) == 4
        assert all(msg.instance == (0, 1) for _, msg in preaccepts)

    def test_fast_path_commit_when_replies_unchanged(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request(client_id=1000, request_id=5))
        original = ctx.sent_of_type(EPreAccept)[0][1]
        ctx.clear_sent()
        # Fast quorum for n=5 is 3 (leader + 2 unchanged replies).
        for voter in (1, 2):
            replica.on_message(voter, EPreAcceptReply(
                instance=original.instance, voter=voter, ok=True,
                seq=original.seq, deps=original.deps, changed=False))
        commits = ctx.sent_of_type(ECommit)
        assert len(commits) == 4  # commit broadcast to everyone
        replies = ctx.sent_of_type(ClientReply)
        assert replies and replies[0][0] == 1000
        assert ctx.metrics.counter("epaxos.fast_path_commits").value == 1

    def test_changed_reply_forces_slow_path(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request())
        original = ctx.sent_of_type(EPreAccept)[0][1]
        ctx.clear_sent()
        extra_dep = frozenset({(3, 9)})
        replica.on_message(1, EPreAcceptReply(
            instance=original.instance, voter=1, ok=True,
            seq=original.seq + 1, deps=original.deps | extra_dep, changed=True))
        replica.on_message(2, EPreAcceptReply(
            instance=original.instance, voter=2, ok=True,
            seq=original.seq, deps=original.deps, changed=False))
        accepts = ctx.sent_of_type(EAccept)
        assert len(accepts) == 4
        assert accepts[0][1].deps >= extra_dep
        assert ctx.sent_of_type(ECommit) == []  # not committed yet
        # Majority of accept replies commits.
        ctx.clear_sent()
        for voter in (1, 2):
            replica.on_message(voter, EAcceptReply(instance=original.instance, voter=voter, ok=True))
        assert ctx.sent_of_type(ECommit)

    def test_sequential_conflicting_commands_get_dependencies(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request(key="same", request_id=1))
        first = ctx.sent_of_type(EPreAccept)[0][1]
        ctx.clear_sent()
        replica.on_message(1001, request(key="same", client_id=1001, request_id=1))
        second = ctx.sent_of_type(EPreAccept)[0][1]
        assert first.instance in second.deps
        assert second.seq > first.seq

    def test_non_conflicting_commands_have_no_deps(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request(key="a"))
        ctx.clear_sent()
        replica.on_message(1001, request(key="b", client_id=1001))
        second = ctx.sent_of_type(EPreAccept)[0][1]
        assert second.deps == frozenset()

    def test_bookkeeping_cost_charged_per_instance(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request())
        assert ctx.overhead_units == 1.0


class TestAcceptorPath:
    def test_preaccept_reply_reports_local_conflicts(self):
        replica, ctx = make_replica(node_id=1)
        # A previously known instance on the same key.
        replica.on_message(2, ECommit(instance=(2, 1),
                                      command=Command(op=OpType.PUT, key="same", payload_size=8),
                                      seq=4, deps=frozenset()))
        ctx.clear_sent()
        replica.on_message(0, EPreAccept(instance=(0, 1),
                                         command=Command(op=OpType.PUT, key="same", payload_size=8),
                                         seq=1, deps=frozenset()))
        reply = ctx.sent_of_type(EPreAcceptReply)[0][1]
        assert reply.changed
        assert (2, 1) in reply.deps
        assert reply.seq >= 5

    def test_unchanged_preaccept_reply_when_no_conflicts(self):
        replica, ctx = make_replica(node_id=1)
        replica.on_message(0, EPreAccept(instance=(0, 1),
                                         command=Command(op=OpType.PUT, key="x", payload_size=8),
                                         seq=1, deps=frozenset()))
        reply = ctx.sent_of_type(EPreAcceptReply)[0][1]
        assert not reply.changed

    def test_accept_acknowledged(self):
        replica, ctx = make_replica(node_id=3)
        replica.on_message(0, EAccept(instance=(0, 1),
                                      command=Command(op=OpType.PUT, key="x", payload_size=8),
                                      seq=1, deps=frozenset()))
        replies = ctx.sent_of_type(EAcceptReply)
        assert replies and replies[0][1].ok

    def test_commit_executes_on_every_replica(self):
        replica, ctx = make_replica(node_id=4)
        command = Command(op=OpType.PUT, key="x", value="42", payload_size=2)
        replica.on_message(0, ECommit(instance=(0, 1), command=command, seq=1, deps=frozenset()))
        assert replica.store.get("x") == "42"
        assert ctx.executed_commands == 1

    def test_execution_waits_for_dependencies(self):
        replica, ctx = make_replica(node_id=4)
        first = Command(op=OpType.PUT, key="x", value="1", payload_size=1)
        second = Command(op=OpType.PUT, key="x", value="2", payload_size=1)
        # Commit the dependent instance before its dependency.
        replica.on_message(0, ECommit(instance=(0, 2), command=second, seq=2, deps=frozenset({(0, 1)})))
        assert replica.store.get("x") is None
        replica.on_message(0, ECommit(instance=(0, 1), command=first, seq=1, deps=frozenset()))
        # Both now execute, dependency first.
        assert replica.store.get("x") == "2"

    def test_single_node_cluster_commits_immediately(self):
        replica, ctx = make_replica(node_id=0, cluster=1)
        replica.on_message(1000, request())
        assert ctx.sent_of_type(ClientReply)
        assert replica.graph.executed_count == 1
